//! Benchmarks for the new analyzer passes: span-carrying recovering
//! parse, interprocedural instantiation of `def` helpers, and the
//! graph-lint verifier. Complements `static_analysis.rs`, which covers
//! the strict inline-only path.

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
use kgpip_codegraph::{
    analyze_with_diagnostics, filter_graph, lint_code_graph, lint_pipeline_graph,
    parse_with_diagnostics,
};
use std::hint::black_box;

fn corpus(n: usize, helper_fraction: f64, malformed_fraction: f64) -> Vec<String> {
    generate_corpus(
        &[DatasetProfile::new("bench_lint_ds", false)],
        &CorpusConfig {
            scripts_per_dataset: n,
            eda_noise: 6,
            unsupported_fraction: 0.1,
            helper_fraction,
            malformed_fraction,
            seed: 7,
        },
    )
    .into_iter()
    .map(|r| r.source)
    .collect()
}

fn bench_codegraph_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegraph_analysis");
    group.sample_size(20);

    // Recovering parse of a helper-wrapped notebook.
    let helper = corpus(1, 1.0, 0.0).pop().unwrap();
    group.bench_function("recovering_parse_helper_notebook", |b| {
        b.iter(|| parse_with_diagnostics(black_box(&helper)))
    });

    // Interprocedural analysis: the helper body is instantiated at the
    // call site, so this measures summary application on top of the walk.
    group.bench_function("analyze_helper_notebook", |b| {
        b.iter(|| analyze_with_diagnostics(black_box(&helper)))
    });

    // Recovery cost on a notebook with an intentional syntax glitch.
    let malformed = corpus(1, 0.0, 1.0).pop().unwrap();
    group.bench_function("analyze_malformed_notebook", |b| {
        b.iter(|| analyze_with_diagnostics(black_box(&malformed)))
    });

    // Lint verifier on raw and filtered graphs.
    let (raw, _) = analyze_with_diagnostics(&helper);
    let filtered = filter_graph(&raw);
    group.bench_function("lint_code_graph", |b| {
        b.iter(|| lint_code_graph(black_box(&raw)))
    });
    group.bench_function("lint_pipeline_graph", |b| {
        b.iter(|| lint_pipeline_graph(black_box(&filtered)))
    });

    // Whole mining path over a mixed 50-notebook corpus: recover,
    // analyze, filter, lint — the lint-corpus CLI inner loop.
    let mixed = corpus(50, 0.3, 0.1);
    group.bench_function("lint_mine_50_mixed_corpus", |b| {
        b.iter(|| {
            let mut kept = 0usize;
            let mut violations = 0usize;
            for src in &mixed {
                let (raw, _diags) = analyze_with_diagnostics(black_box(src));
                violations += lint_code_graph(&raw).len();
                let filtered = filter_graph(&raw);
                violations += lint_pipeline_graph(&filtered).len();
                if filtered.skeleton().is_some() {
                    kept += 1;
                }
            }
            (kept, violations)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codegraph_analysis);
criterion_main!(benches);
