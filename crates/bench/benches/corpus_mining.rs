//! Throughput of the parallel, incrementally-cached corpus-mining front
//! end of `Kgpip::train` — the offline stage that mines the paper's
//! 11.7K scripts before the generator ever runs.
//!
//! Arms:
//!
//! * `mine_corpus_cold_p{1,N}` — full mining (fingerprint, probe an
//!   empty cache, static analysis, assembly) at parallelism 1 vs the
//!   host's worker count.
//! * `mine_corpus_warm` — the same corpus against a pre-populated
//!   `MiningCache`: every script is served by fingerprint lookup, no
//!   static analysis runs. The acceptance bar is warm ≥ 5× cold.
//!
//! After the criterion arms, instrumented single passes emit
//! `BENCH_JSON` summary lines (scripts/sec cold p1 vs pN, warm, and the
//! warm/cold speedup) that `scripts/bench.sh` collects into
//! `BENCH_mining.json`.
//!
//! Run `cargo bench --bench corpus_mining -- --bench` for timed
//! results; the smoke mode (plain `cargo bench`) only checks the
//! harness runs.

// This bench times wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile, ScriptRecord};
use kgpip_codegraph::{mine_script, source_fingerprint, MiningCache};
use rayon::prelude::*;
use std::hint::black_box;
use std::time::Instant;

/// Worker count for the parallel arms.
const WORKERS: usize = 4;

fn corpus(n_datasets: usize, per_dataset: usize) -> Vec<ScriptRecord> {
    let profiles: Vec<DatasetProfile> = (0..n_datasets)
        .map(|i| DatasetProfile::new(format!("bench_ds_{i}"), false))
        .collect();
    generate_corpus(
        &profiles,
        &CorpusConfig {
            scripts_per_dataset: per_dataset,
            eda_noise: 6,
            unsupported_fraction: 0.1,
            helper_fraction: 0.2,
            seed: 1,
            ..CorpusConfig::default()
        },
    )
}

/// Mines a corpus through a cache the way `Kgpip::train` does: probe by
/// fingerprint in order, analyze the misses (in parallel when
/// `workers > 1`), insert in submission order. Returns scripts kept.
fn mine_corpus(scripts: &[ScriptRecord], cache: &MiningCache, workers: usize) -> usize {
    let mut to_mine: Vec<&str> = Vec::new();
    let mut fingerprints: Vec<u64> = Vec::with_capacity(scripts.len());
    let mut kept = 0usize;
    for record in scripts {
        let fp = source_fingerprint(&record.source);
        fingerprints.push(fp);
        if cache.get(fp).is_none() {
            to_mine.push(record.source.as_str());
        }
    }
    let mined: Vec<kgpip_codegraph::MineOutcome> = if workers > 1 && to_mine.len() > 1 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("thread pool construction");
        pool.install(|| to_mine.par_iter().map(|src| mine_script(src)).collect())
    } else {
        to_mine.iter().map(|src| mine_script(src)).collect()
    };
    for (src, outcome) in to_mine.iter().zip(mined) {
        cache.insert(source_fingerprint(src), outcome);
    }
    for fp in fingerprints {
        if matches!(
            cache.get(fp),
            Some(kgpip_codegraph::MineOutcome::Pipeline(_))
        ) {
            kept += 1;
        }
    }
    kept
}

fn bench_corpus_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_mining");
    group.sample_size(10);
    let scripts = corpus(4, 25);

    for workers in [1usize, WORKERS] {
        group.bench_function(format!("mine_corpus_cold_p{workers}"), |b| {
            b.iter_batched(
                MiningCache::default,
                |cache| mine_corpus(black_box(&scripts), &cache, workers),
                BatchSize::SmallInput,
            )
        });
    }

    let warm = MiningCache::default();
    mine_corpus(&scripts, &warm, 1);
    group.bench_function("mine_corpus_warm", |b| {
        b.iter(|| mine_corpus(black_box(&scripts), &warm, 1))
    });
    group.finish();

    // --- Machine-readable summary: scripts/sec cold vs warm ---
    let time_pass = |cache: &MiningCache, workers: usize| -> f64 {
        let started = Instant::now();
        black_box(mine_corpus(&scripts, cache, workers));
        started.elapsed().as_secs_f64()
    };
    let cold_p1 = time_pass(&MiningCache::default(), 1);
    let cold_pn = time_pass(&MiningCache::default(), WORKERS);
    let warm_cache = MiningCache::default();
    mine_corpus(&scripts, &warm_cache, 1);
    let warm_secs = time_pass(&warm_cache, 1);
    let n = scripts.len() as f64;
    for (id, secs) in [
        ("mining_summary_cold_p1".to_string(), cold_p1),
        (format!("mining_summary_cold_p{WORKERS}"), cold_pn),
        ("mining_summary_warm".to_string(), warm_secs),
    ] {
        println!(
            "BENCH_JSON {{\"id\":{id:?},\"scripts\":{},\"scripts_per_sec\":{:.1}}}",
            scripts.len(),
            n / secs.max(1e-9),
        );
    }
    println!(
        "BENCH_JSON {{\"id\":\"mining_summary_warm_speedup\",\"warm_vs_cold_speedup\":{:.1}}}",
        cold_p1 / warm_secs.max(1e-9),
    );
}

criterion_group!(benches, bench_corpus_mining);
criterion_main!(benches);
