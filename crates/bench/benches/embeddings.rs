//! Benchmarks for the dataset-embedding substrate — the costs behind
//! §3.2 similarity search and Figure 10's t-SNE.

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip_benchdata::generate::{synthesize, SynthSpec};
use kgpip_embeddings::tsne::{tsne, TsneConfig};
use kgpip_embeddings::{table_embedding, VectorIndex};
use std::hint::black_box;

fn spec(name: &str, rows: usize) -> SynthSpec {
    SynthSpec {
        name: name.to_string(),
        rows,
        num: 8,
        cat: 2,
        text: 1,
        classes: 2,
        ceiling: 0.9,
        missing: 0.02,
    }
}

fn bench_embeddings(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_embeddings");
    group.sample_size(20);

    let ds = synthesize(&spec("embed_bench", 500), 0);
    group.bench_function("table_embedding_500x11", |b| {
        b.iter(|| table_embedding(black_box(&ds.features)))
    });

    // Similarity search over a 104-dataset index (the paper's training
    // corpus size).
    let mut index = VectorIndex::new();
    for i in 0..104 {
        let d = synthesize(&spec(&format!("idx_{i}"), 120), i as u64);
        index.add(format!("idx_{i}"), table_embedding(&d.features));
    }
    let query = table_embedding(&ds.features);
    group.bench_function("exact_top3_of_104", |b| {
        b.iter(|| index.top_k(black_box(&query), 3))
    });
    let mut ivf = index.clone();
    ivf.train_ivf(8, 2, 0);
    group.bench_function("ivf_top3_of_104", |b| {
        b.iter(|| ivf.top_k_ivf(black_box(&query), 3))
    });

    // Figure 10: t-SNE over 38 dataset embeddings.
    let points: Vec<Vec<f64>> = (0..38)
        .map(|i| {
            let d = synthesize(&spec(&format!("tsne_{i}"), 100), i as u64);
            table_embedding(&d.features)
        })
        .collect();
    group.bench_function("tsne_38_datasets", |b| {
        b.iter(|| {
            tsne(
                black_box(&points),
                &TsneConfig {
                    iterations: 200,
                    ..TsneConfig::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_embeddings);
criterion_main!(benches);
