//! Benchmarks for the dataset-embedding substrate — the costs behind
//! §3.2 similarity search and Figure 10's t-SNE — plus the
//! million-table similarity-tier harness.
//!
//! The `similarity_tiers` pass builds a 100K-vector clustered catalog
//! (`KGPIP_BENCH_EMBED_N` overrides the size, up to 1M) and measures
//! every tier the index can run: exact-scan ground truth, IVF, and the
//! HNSW graph — build time, incremental-insert throughput, queries/sec,
//! recall@10 against the exact scan, and resident bytes per tier. The
//! `pq_tiers` arms measure the product-quantized storage layer under the
//! graph tier: codebook-fit time, online encode throughput, reranked and
//! raw (rerank = 1) recall, QPS, and code-matrix vs `f64`-block bytes.
//! After the criterion arms it emits `BENCH_JSON` summary lines which
//! `scripts/bench.sh` folds into `BENCH_embeddings.json`; the acceptance
//! bars live in the `tier_hnsw` line (`recall_at_10 ≥ 0.95`,
//! `speedup_vs_exact ≥ 10`) and the `tier_hnsw_pq` line (reranked
//! `recall_at_10 ≥ 0.95`, `pq_bytes` ≤ 1/8 of `vector_bytes`,
//! `qps_vs_hnsw ≥ 0.8`).
//!
//! Run `cargo bench --bench embeddings -- --bench` for the full-size
//! pass; smoke mode (plain `cargo test`) shrinks the catalog so the
//! harness stays cheap while still exercising every tier.

// This bench times wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip_benchdata::generate::{synthesize, SynthSpec};
use kgpip_benchdata::{recall_at_k, synthetic_embeddings};
use kgpip_embeddings::tsne::{tsne, TsneConfig};
use kgpip_embeddings::{table_embedding, HnswConfig, PqConfig, VectorIndex};
use std::hint::black_box;
use std::time::Instant;

fn spec(name: &str, rows: usize) -> SynthSpec {
    SynthSpec {
        name: name.to_string(),
        rows,
        num: 8,
        cat: 2,
        text: 1,
        classes: 2,
        ceiling: 0.9,
        missing: 0.02,
    }
}

fn bench_embeddings(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_embeddings");
    group.sample_size(20);

    let ds = synthesize(&spec("embed_bench", 500), 0);
    group.bench_function("table_embedding_500x11", |b| {
        b.iter(|| table_embedding(black_box(&ds.features)))
    });

    // Similarity search over a 104-dataset index (the paper's training
    // corpus size).
    let mut index = VectorIndex::new();
    for i in 0..104 {
        let d = synthesize(&spec(&format!("idx_{i}"), 120), i as u64);
        index.add(format!("idx_{i}"), table_embedding(&d.features));
    }
    let query = table_embedding(&ds.features);
    group.bench_function("exact_top3_of_104", |b| {
        b.iter(|| index.top_k(black_box(&query), 3))
    });
    let mut ivf = index.clone();
    ivf.train_ivf(8, 2, 0);
    group.bench_function("ivf_top3_of_104", |b| {
        b.iter(|| ivf.top_k_ivf(black_box(&query), 3))
    });

    // Figure 10: t-SNE over 38 dataset embeddings.
    let points: Vec<Vec<f64>> = (0..38)
        .map(|i| {
            let d = synthesize(&spec(&format!("tsne_{i}"), 100), i as u64);
            table_embedding(&d.features)
        })
        .collect();
    group.bench_function("tsne_38_datasets", |b| {
        b.iter(|| {
            tsne(
                black_box(&points),
                &TsneConfig {
                    iterations: 200,
                    ..TsneConfig::default()
                },
            )
        })
    });
    group.finish();
}

/// Whether this process was invoked by `cargo bench` (which passes
/// `--bench`) rather than `cargo test` smoke mode.
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Held-out probes scored against exact ground truth per tier.
const TIER_QUERIES: usize = 50;
/// Vectors registered one-by-one for the insert-throughput measurement.
const TIER_INSERTS: usize = 500;
const TIER_K: usize = 10;

struct TierNumbers {
    build_secs: f64,
    qps: f64,
    recall: f64,
    resident_bytes: usize,
}

/// Times `queries/sec` and mean recall@K of `index.search` against the
/// exact ground truth.
fn measure_tier(
    index: &VectorIndex,
    probes: &[Vec<f64>],
    truth: &[Vec<(String, f64)>],
    build_secs: f64,
) -> TierNumbers {
    let started = Instant::now();
    let results: Vec<Vec<(String, f64)>> = probes
        .iter()
        .map(|q| index.search(black_box(q), TIER_K))
        .collect();
    let secs = started.elapsed().as_secs_f64();
    let recall = results
        .iter()
        .zip(truth)
        .map(|(approx, exact)| recall_at_k(exact, approx, TIER_K))
        .sum::<f64>()
        / probes.len().max(1) as f64;
    TierNumbers {
        build_secs,
        qps: probes.len() as f64 / secs.max(1e-9),
        recall,
        resident_bytes: index.stats().resident_bytes(),
    }
}

fn bench_similarity_tiers(c: &mut Criterion) {
    // Full-size catalog only under `cargo bench -- --bench`; the smoke
    // pass (run by `cargo test`) keeps every tier exercised but cheap.
    let n: usize = if bench_mode() {
        std::env::var("KGPIP_BENCH_EMBED_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000)
    } else {
        1_000
    };
    let dim = 32;
    let clusters = 64;
    let all = synthetic_embeddings(n + TIER_QUERIES + TIER_INSERTS, dim, clusters, 0);
    let store = &all[..n];
    let probes = &all[n..n + TIER_QUERIES];
    let tail = &all[n + TIER_QUERIES..];

    let mut exact = VectorIndex::new();
    for (i, v) in store.iter().enumerate() {
        exact.add(format!("t{i}"), v.clone());
    }

    // Exact scan: ground truth for every other tier, and the QPS floor
    // the speedup column is measured against.
    let started = Instant::now();
    let truth: Vec<Vec<(String, f64)>> = probes.iter().map(|q| exact.top_k(q, TIER_K)).collect();
    let exact_qps = probes.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);

    // IVF mid-band tier, at the shape auto_tune picks (√n lists).
    let lists = ((n as f64).sqrt() as usize).max(1);
    let mut ivf = exact.clone();
    let started = Instant::now();
    ivf.train_ivf(lists, (lists / 4).max(1), 0);
    let ivf_numbers = measure_tier(&ivf, probes, &truth, started.elapsed().as_secs_f64());

    // HNSW tier: build from scratch...
    let mut hnsw = exact.clone();
    let started = Instant::now();
    hnsw.build_hnsw(HnswConfig::default());
    let hnsw_numbers = measure_tier(&hnsw, probes, &truth, started.elapsed().as_secs_f64());

    // Product-quantized storage layer under the graph tier: the same
    // graph, compact codes, an exact re-rank. At 32 dims the m = 16
    // geometry (2-dim subspaces) holds reranked recall@10 at 1.0 on the
    // clustered catalog where m = 8 plateaus near 0.82 — still 16×
    // smaller than the f64 block. Fit once at the production rerank,
    // once at rerank = 1 to show the window's contribution.
    let pq_config = PqConfig {
        m: 16,
        rerank: 4,
        seed: 0,
    };
    let mut pq = hnsw.clone();
    let started = Instant::now();
    pq.quantize(pq_config)
        .expect("uniform-dim catalog quantizes");
    let pq_numbers = measure_tier(&pq, probes, &truth, started.elapsed().as_secs_f64());
    let pq_bytes = pq.stats().pq_bytes;
    let vector_bytes = pq.stats().vector_bytes;
    let mut pq_raw = hnsw.clone();
    pq_raw
        .quantize(PqConfig {
            rerank: 1,
            ..pq_config
        })
        .expect("uniform-dim catalog quantizes");
    let pq_raw_numbers = measure_tier(&pq_raw, probes, &truth, 0.0);

    // ...then extend them incrementally (register never retrains; on the
    // quantized index each insert also encodes against the frozen
    // codebooks).
    let started = Instant::now();
    for (i, v) in tail.iter().enumerate() {
        hnsw.register(format!("r{i}"), v.clone());
    }
    let inserts_per_sec = tail.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    let started = Instant::now();
    for (i, v) in tail.iter().enumerate() {
        pq.register(format!("r{i}"), v.clone());
    }
    let encodes_per_sec = tail.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);

    // Criterion arms: per-query latency on the built indexes.
    let mut group = c.benchmark_group("similarity_tiers");
    group.sample_size(10);
    let query = &probes[0];
    group.bench_function(format!("exact_top10_of_{n}"), |b| {
        b.iter(|| exact.top_k(black_box(query), TIER_K))
    });
    group.bench_function(format!("ivf_top10_of_{n}"), |b| {
        b.iter(|| ivf.search(black_box(query), TIER_K))
    });
    group.bench_function(format!("hnsw_top10_of_{n}"), |b| {
        b.iter(|| hnsw.search(black_box(query), TIER_K))
    });
    group.finish();
    let mut group = c.benchmark_group("pq_tiers");
    group.sample_size(10);
    group.bench_function(format!("hnsw_pq_top10_of_{n}"), |b| {
        b.iter(|| pq.search(black_box(query), TIER_K))
    });
    group.finish();

    // Machine-readable summary, one line per tier.
    println!(
        "BENCH_JSON {{\"id\":\"tier_exact\",\"n\":{n},\"dim\":{dim},\"build_secs\":0.0,\
         \"qps\":{exact_qps:.1},\"recall_at_10\":1.0,\"speedup_vs_exact\":1.0,\
         \"resident_bytes\":{}}}",
        exact.stats().resident_bytes()
    );
    for (id, numbers) in [("tier_ivf", &ivf_numbers), ("tier_hnsw", &hnsw_numbers)] {
        println!(
            "BENCH_JSON {{\"id\":{id:?},\"n\":{n},\"dim\":{dim},\"build_secs\":{:.2},\
             \"qps\":{:.1},\"recall_at_10\":{:.4},\"speedup_vs_exact\":{:.1},\
             \"resident_bytes\":{}}}",
            numbers.build_secs,
            numbers.qps,
            numbers.recall,
            numbers.qps / exact_qps.max(1e-9),
            numbers.resident_bytes,
        );
    }
    println!(
        "BENCH_JSON {{\"id\":\"tier_hnsw_pq\",\"n\":{n},\"dim\":{dim},\"m\":{},\"rerank\":{},\
         \"build_secs\":{:.2},\"qps\":{:.1},\"recall_at_10\":{:.4},\
         \"raw_recall_at_10\":{:.4},\"speedup_vs_exact\":{:.1},\"qps_vs_hnsw\":{:.2},\
         \"resident_bytes\":{},\"pq_bytes\":{pq_bytes},\"vector_bytes\":{vector_bytes},\
         \"bytes_per_vector\":{:.2}}}",
        pq_config.m,
        pq_config.rerank,
        pq_numbers.build_secs,
        pq_numbers.qps,
        pq_numbers.recall,
        pq_raw_numbers.recall,
        pq_numbers.qps / exact_qps.max(1e-9),
        pq_numbers.qps / hnsw_numbers.qps.max(1e-9),
        pq_numbers.resident_bytes,
        pq_bytes as f64 / n.max(1) as f64,
    );
    println!(
        "BENCH_JSON {{\"id\":\"hnsw_incremental_insert\",\"n\":{n},\"dim\":{dim},\
         \"inserts\":{},\"inserts_per_sec\":{inserts_per_sec:.1}}}",
        tail.len()
    );
    println!(
        "BENCH_JSON {{\"id\":\"pq_incremental_encode\",\"n\":{n},\"dim\":{dim},\
         \"inserts\":{},\"inserts_per_sec\":{encodes_per_sec:.1}}}",
        tail.len()
    );
}

criterion_group!(benches, bench_embeddings, bench_similarity_tiers);
criterion_main!(benches);
