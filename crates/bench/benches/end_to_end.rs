//! End-to-end benchmarks: KGpip training (offline) and full runs
//! (online) — the units of work behind Figures 5–7 and Tables 2/5.

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip_bench::runner::{build_model, run_on_dataset, ExperimentConfig, SystemKind};
use kgpip_benchdata::benchmark;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_end_to_end");
    group.sample_size(10);
    let cfg = ExperimentConfig {
        budget_secs: 0.2,
        ..ExperimentConfig::quick()
    };

    group.bench_function("kgpip_offline_training", |b| {
        b.iter(|| build_model(black_box(&cfg)))
    });

    let model = build_model(&cfg);
    let entry = benchmark().iter().find(|e| e.name == "phoneme").unwrap();
    for system in [
        SystemKind::Flaml,
        SystemKind::KgpipFlaml,
        SystemKind::AutoSklearn,
        SystemKind::KgpipAutoSklearn,
    ] {
        group.bench_function(format!("run_{}_on_phoneme", system.name()), |b| {
            b.iter(|| run_on_dataset(system, Some(&model), black_box(entry), &cfg, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
