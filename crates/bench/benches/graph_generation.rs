//! Benchmarks for the graph generator — training cost (Table 3's
//! headline: filtered graphs train ~99% faster than raw code graphs) and
//! the near-instant prediction claim of §3.6.

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip_bench::experiments::ablation::encode_raw_graphs;
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
use kgpip_codegraph::{analyze, filter_graph, OpVocab};
use kgpip_graphgen::model::TypedGraph;
use kgpip_graphgen::{GeneratorConfig, GraphGenerator, TrainExample};
use std::hint::black_box;

fn training_examples(n: usize) -> (Vec<TrainExample>, Vec<TrainExample>) {
    let scripts = generate_corpus(
        &[DatasetProfile::new("gen_bench", false)],
        &CorpusConfig {
            scripts_per_dataset: n,
            eda_noise: 4,
            unsupported_fraction: 0.0,
            seed: 2,
            ..CorpusConfig::default()
        },
    );
    let vocab = OpVocab::new();
    let raw_graphs: Vec<_> = scripts
        .iter()
        .map(|s| analyze(&s.source).unwrap())
        .collect();
    let filtered: Vec<TrainExample> = raw_graphs
        .iter()
        .filter_map(|g| {
            let f = filter_graph(g);
            f.skeleton()?;
            Some(TrainExample {
                dataset_embedding: vec![0.1; 48],
                graph: TypedGraph::encode(&f.with_dataset_node(), &vocab),
            })
        })
        .collect();
    let (_, raw_typed) = encode_raw_graphs(&raw_graphs);
    let raw: Vec<TrainExample> = raw_typed
        .into_iter()
        .map(|graph| TrainExample {
            dataset_embedding: vec![0.1; 48],
            graph,
        })
        .collect();
    (filtered, raw)
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_generator");
    group.sample_size(10);
    let (filtered, raw) = training_examples(10);

    let cfg = GeneratorConfig {
        hidden: 16,
        prop_rounds: 1,
        epochs: 1,
        ..GeneratorConfig::default()
    };
    group.bench_function("train_epoch_filtered_10_graphs", |b| {
        b.iter(|| {
            let mut g = GraphGenerator::new(cfg.clone());
            g.train(black_box(&filtered))
        })
    });

    // The raw side is the expensive one — this is the Table-3 gap.
    let raw_vocab_size = raw
        .iter()
        .flat_map(|e| e.graph.types.iter())
        .max()
        .map(|m| m + 1)
        .unwrap_or(1);
    let raw_cfg = GeneratorConfig {
        vocab_size: raw_vocab_size,
        ..cfg.clone()
    };
    let raw_small: Vec<TrainExample> = raw.into_iter().take(2).collect();
    group.bench_function("train_epoch_raw_2_graphs", |b| {
        b.iter(|| {
            let mut g = GraphGenerator::new(raw_cfg.clone());
            g.train(black_box(&raw_small))
        })
    });

    // §3.6: "KGpip can do that almost instantaneously" — top-3 prediction.
    let mut trained = GraphGenerator::new(GeneratorConfig {
        hidden: 16,
        prop_rounds: 1,
        epochs: 5,
        ..GeneratorConfig::default()
    });
    trained.train(&filtered);
    let vocab = OpVocab::new();
    let prefix = TypedGraph::conditioning_prefix(&vocab);
    group.bench_function("generate_top3_pipelines", |b| {
        b.iter(|| trained.generate_top_k(black_box(&vec![0.1; 48]), &prefix, 3, 1.2, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
