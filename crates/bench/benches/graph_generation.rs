//! Benchmarks for the graph generator — training cost (Table 3's
//! headline: filtered graphs train ~99% faster than raw code graphs) and
//! the near-instant prediction claim of §3.6.

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip_bench::experiments::ablation::encode_raw_graphs;
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
use kgpip_codegraph::{analyze, filter_graph, OpVocab};
use kgpip_graphgen::model::TypedGraph;
use kgpip_graphgen::{GeneratorConfig, GraphGenerator, TrainExample};
use std::hint::black_box;

fn training_examples(n: usize) -> (Vec<TrainExample>, Vec<TrainExample>) {
    let scripts = generate_corpus(
        &[DatasetProfile::new("gen_bench", false)],
        &CorpusConfig {
            scripts_per_dataset: n,
            eda_noise: 4,
            unsupported_fraction: 0.0,
            seed: 2,
            ..CorpusConfig::default()
        },
    );
    let vocab = OpVocab::new();
    let raw_graphs: Vec<_> = scripts
        .iter()
        .map(|s| analyze(&s.source).unwrap())
        .collect();
    let filtered: Vec<TrainExample> = raw_graphs
        .iter()
        .filter_map(|g| {
            let f = filter_graph(g);
            f.skeleton()?;
            Some(TrainExample {
                dataset_embedding: vec![0.1; 48],
                graph: TypedGraph::encode(&f.with_dataset_node(), &vocab),
            })
        })
        .collect();
    let (_, raw_typed) = encode_raw_graphs(&raw_graphs);
    let raw: Vec<TrainExample> = raw_typed
        .into_iter()
        .map(|graph| TrainExample {
            dataset_embedding: vec![0.1; 48],
            graph,
        })
        .collect();
    (filtered, raw)
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_generator");
    group.sample_size(10);
    let (filtered, raw) = training_examples(10);

    let cfg = GeneratorConfig {
        hidden: 16,
        prop_rounds: 1,
        epochs: 1,
        ..GeneratorConfig::default()
    };
    group.bench_function("train_epoch_filtered_10_graphs", |b| {
        b.iter(|| {
            let mut g = GraphGenerator::new(cfg.clone());
            g.train(black_box(&filtered))
        })
    });

    // The raw side is the expensive one — this is the Table-3 gap.
    let raw_vocab_size = raw
        .iter()
        .flat_map(|e| e.graph.types.iter())
        .max()
        .map(|m| m + 1)
        .unwrap_or(1);
    let raw_cfg = GeneratorConfig {
        vocab_size: raw_vocab_size,
        ..cfg.clone()
    };
    let raw_small: Vec<TrainExample> = raw.into_iter().take(2).collect();
    group.bench_function("train_epoch_raw_2_graphs", |b| {
        b.iter(|| {
            let mut g = GraphGenerator::new(raw_cfg.clone());
            g.train(black_box(&raw_small))
        })
    });

    // §3.6: "KGpip can do that almost instantaneously" — top-3 prediction.
    let mut trained = GraphGenerator::new(GeneratorConfig {
        hidden: 16,
        prop_rounds: 1,
        epochs: 5,
        ..GeneratorConfig::default()
    });
    trained.train(&filtered);
    let vocab = OpVocab::new();
    let prefix = TypedGraph::conditioning_prefix(&vocab);
    group.bench_function("generate_top3_pipelines", |b| {
        b.iter(|| trained.generate_top_k(black_box(&vec![0.1; 48]), &prefix, 3, 1.2, 7))
    });
    group.finish();
}

/// Kernel-level benchmarks on matmul shapes drawn from the generator's
/// real layers: message-MLP forward (n×2h · 2h×h) and the two matmul
/// gradient products, fused (`matmul_at`/`matmul_bt`) vs the
/// transpose-then-multiply formulation they replaced.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnn_kernels");
    group.sample_size(40);
    let h = 32usize; // default hidden width
    let n = 12usize; // max_nodes rows
    let fill = |rows: usize, cols: usize, salt: usize| {
        kgpip_nn::Tensor::from_vec(
            (0..rows * cols)
                .map(|i| ((i + salt) as f32 * 0.37).sin())
                .collect(),
            rows,
            cols,
        )
        .unwrap()
    };

    // Forward of the message MLP's first layer: n×2h · 2h×h.
    let x = fill(n, 2 * h, 0);
    let w = fill(2 * h, h, 1);
    group.bench_function("matmul_msg_fwd_12x64_64x32", |b| {
        b.iter(|| black_box(&x).matmul(black_box(&w)).unwrap())
    });

    // Backward dW = xᵀ · g (fused vs transpose copy).
    let g = fill(n, h, 2);
    group.bench_function("grad_dw_fused_at", |b| {
        b.iter(|| black_box(&x).matmul_at(black_box(&g)).unwrap())
    });
    group.bench_function("grad_dw_transpose_copy", |b| {
        b.iter(|| black_box(&x).transpose().matmul(black_box(&g)).unwrap())
    });

    // Backward dX = g · wᵀ (fused vs transpose copy).
    group.bench_function("grad_dx_fused_bt", |b| {
        b.iter(|| black_box(&g).matmul_bt(black_box(&w)).unwrap())
    });
    group.bench_function("grad_dx_transpose_copy", |b| {
        b.iter(|| black_box(&g).matmul(&black_box(&w).transpose()).unwrap())
    });

    // A larger square product where cache blocking matters.
    let a = fill(96, 96, 3);
    let bm = fill(96, 96, 4);
    group.bench_function("matmul_square_96", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&bm)).unwrap())
    });
    group.finish();
}

/// Sequential vs parallel training and sampling. On multi-core hosts the
/// parallel rows should drop below the sequential ones; on single-core
/// CI they document the (small) coordination overhead instead. Results
/// are bit-for-bit identical either way — see
/// `crates/graphgen/tests/determinism.rs`.
fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_vs_sequential");
    group.sample_size(10);
    let (filtered, _) = training_examples(10);
    for workers in [1usize, 2] {
        let cfg = GeneratorConfig {
            hidden: 16,
            prop_rounds: 1,
            epochs: 1,
            parallelism: workers,
            ..GeneratorConfig::default()
        };
        group.bench_function(format!("train_epoch_10_graphs_p{workers}"), |b| {
            b.iter(|| {
                let mut g = GraphGenerator::new(cfg.clone());
                g.train(black_box(&filtered))
            })
        });
    }
    let vocab = OpVocab::new();
    let prefix = TypedGraph::conditioning_prefix(&vocab);
    for workers in [1usize, 2] {
        let mut trained = GraphGenerator::new(GeneratorConfig {
            hidden: 16,
            prop_rounds: 1,
            epochs: 5,
            parallelism: workers,
            ..GeneratorConfig::default()
        });
        trained.train(&filtered);
        group.bench_function(format!("generate_top3_p{workers}"), |b| {
            b.iter(|| trained.generate_top_k(black_box(&vec![0.1; 48]), &prefix, 3, 1.2, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_kernels, bench_parallelism);
criterion_main!(benches);
