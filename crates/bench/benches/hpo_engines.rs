//! Benchmarks for the HPO engines — trial throughput underpins every
//! budgeted comparison (Figure 5, Table 2, Figure 7).

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip_benchdata::generate::{synthesize, SynthSpec};
use kgpip_hpo::space::{self, Skeleton};
use kgpip_hpo::trial::Evaluator;
use kgpip_hpo::{Al, AutoSklearn, Flaml, Optimizer, TimeBudget};
use kgpip_learners::EstimatorKind;
use std::hint::black_box;

fn dataset(rows: usize) -> kgpip_tabular::Dataset {
    synthesize(
        &SynthSpec {
            name: "hpo_bench".to_string(),
            rows,
            num: 8,
            cat: 1,
            text: 0,
            classes: 2,
            ceiling: 0.9,
            missing: 0.0,
        },
        0,
    )
}

fn bench_hpo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_hpo_engines");
    group.sample_size(10);
    let ds = dataset(400);
    let budget = TimeBudget::seconds(3600.0);
    let evaluator = Evaluator::new(&ds, 0, &budget).unwrap();

    // Single-trial costs for the cheap-first ordering FLAML relies on.
    for kind in [
        EstimatorKind::GaussianNb,
        EstimatorKind::DecisionTree,
        EstimatorKind::Lgbm,
        EstimatorKind::XgBoost,
        EstimatorKind::RandomForest,
    ] {
        group.bench_function(format!("trial_{}", kind.name()), |b| {
            b.iter(|| {
                evaluator.evaluate(
                    &Skeleton::bare(kind),
                    black_box(space::low_cost_config(kind)),
                )
            })
        });
    }

    // Fixed-budget engine runs (the Figure-5 unit of work).
    group.bench_function("flaml_cold_200ms_budget", |b| {
        b.iter(|| {
            let mut engine = Flaml::new(0);
            engine
                .optimize(black_box(&ds), &TimeBudget::seconds(0.2))
                .unwrap()
        })
    });
    group.bench_function("autosklearn_cold_200ms_budget", |b| {
        b.iter(|| {
            let mut engine = AutoSklearn::new(0);
            engine
                .optimize(black_box(&ds), &TimeBudget::seconds(0.2))
                .unwrap()
        })
    });
    group.bench_function("al_replay", |b| {
        b.iter(|| {
            let mut engine = Al::new(0);
            engine.optimize(black_box(&ds), &TimeBudget::seconds(1.0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hpo);
criterion_main!(benches);
