//! Throughput of the parallel trial-evaluation engine: completed trials
//! per second for sequential vs parallel evaluation at an equal trial
//! budget. The redesign's acceptance bar is ≥ 2× trials/sec at
//! parallelism ≥ 4 over the sequential path.
//!
//! Two arm families:
//!
//! * `flaml_skeleton_*` — single-skeleton search (the `(T−t)/K` unit of
//!   work KGpip parallelizes). Every trial fits the same learner, so the
//!   work per trial is homogeneous and the ratio measures evaluation
//!   throughput alone. These are the acceptance arms.
//! * `flaml_cold_*` — full cold-start search. The parallel scheduler
//!   intentionally explores several learner families per round, so the
//!   per-trial work mix differs from the sequential arm; these arms
//!   document overhead parity at parallelism 1, not speedup.
//!
//! Run `cargo bench --bench hpo_parallel -- --bench` for timed results;
//! the smoke mode (plain `cargo bench`) only checks the harness runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kgpip_benchdata::generate::{synthesize, SynthSpec};
use kgpip_hpo::space::Skeleton;
use kgpip_hpo::{Flaml, Optimizer, TimeBudget};
use kgpip_learners::EstimatorKind;
use std::hint::black_box;

/// Trials allowed per engine run — high enough that scheduling overhead
/// amortizes, low enough that a sample finishes quickly.
const TRIALS: usize = 24;

fn dataset(rows: usize) -> kgpip_tabular::Dataset {
    synthesize(
        &SynthSpec {
            name: "hpo_parallel_bench".to_string(),
            rows,
            num: 8,
            cat: 1,
            text: 0,
            classes: 2,
            ceiling: 0.9,
            missing: 0.0,
        },
        0,
    )
}

fn budget() -> TimeBudget {
    // Generous wall clock: the trial cap is the binding constraint, so
    // all arms complete identical trial counts and the comparison is
    // throughput only.
    TimeBudget::seconds(3600.0).with_trial_cap(TRIALS)
}

fn bench_parallel_hpo(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpo_parallel");
    group.sample_size(10);
    let ds = dataset(400);

    // --- Acceptance arms: fixed-skeleton search, homogeneous trials ---
    let skeleton = Skeleton::bare(EstimatorKind::Lgbm);
    for parallelism in [1usize, 2, 4, 8] {
        group.bench_function(format!("flaml_skeleton_p{parallelism}_24_trials"), |b| {
            b.iter_batched(
                || Flaml::new(0).with_parallelism(parallelism),
                |mut engine| {
                    engine
                        .optimize_skeleton(black_box(&ds), &skeleton, &budget())
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }

    // --- Overhead-parity arms: historical sequential loop vs the
    // engine at parallelism 1 (the determinism tests prove the trial
    // histories are identical; this shows the gate adds no cost). ---
    group.bench_function("flaml_cold_sequential_24_trials", |b| {
        b.iter_batched(
            || Flaml::new(0),
            |mut engine| {
                engine
                    .optimize_sequential(black_box(&ds), &budget())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("flaml_cold_engine_p1_24_trials", |b| {
        b.iter_batched(
            || Flaml::new(0),
            |mut engine| engine.optimize(black_box(&ds), &budget()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_hpo);
criterion_main!(benches);
