//! Throughput of the parallel trial-evaluation engine: completed trials
//! per second for sequential vs parallel evaluation at an equal trial
//! budget. The redesign's acceptance bar is ≥ 2× trials/sec at
//! parallelism ≥ 4 over the sequential path.
//!
//! Two arm families:
//!
//! * `flaml_skeleton_*` — single-skeleton search (the `(T−t)/K` unit of
//!   work KGpip parallelizes). Every trial fits the same learner, so the
//!   work per trial is homogeneous and the ratio measures evaluation
//!   throughput alone. These are the acceptance arms.
//! * `flaml_cold_*` — full cold-start search. The parallel scheduler
//!   intentionally explores several learner families per round, so the
//!   per-trial work mix differs from the sequential arm; these arms
//!   document overhead parity at parallelism 1, not speedup.
//! * `*_nocache` — the same search with trial caching disabled (the
//!   literal pre-cache raw-frame path). The cached/nocache ratio is the
//!   trial hot-path speedup; the cache-equivalence suite proves the two
//!   arms compute bit-identical results.
//! * `flaml_chain_*` — fixed skeleton with a transformer chain, so every
//!   trial re-fits the same scaler prefix: the arm that exercises the
//!   transformer-prefix cache (bare skeletons bypass it).
//!
//! After the criterion arms, the harness runs one instrumented search per
//! configuration and emits `BENCH_JSON` summary lines with trials/sec and
//! the transform-cache hit rate — `scripts/bench.sh` collects these into
//! `BENCH_hpo.json`.
//!
//! Run `cargo bench --bench hpo_parallel -- --bench` for timed results;
//! the smoke mode (plain `cargo bench`) only checks the harness runs.

// This bench times wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kgpip_benchdata::generate::{synthesize, SynthSpec};
use kgpip_hpo::space::Skeleton;
use kgpip_hpo::{Flaml, Optimizer, TimeBudget};
use kgpip_learners::{EstimatorKind, TransformerKind};
use std::hint::black_box;
use std::time::Instant;

/// Trials allowed per engine run — high enough that scheduling overhead
/// amortizes, low enough that a sample finishes quickly.
const TRIALS: usize = 24;

fn dataset(rows: usize) -> kgpip_tabular::Dataset {
    synthesize(
        &SynthSpec {
            name: "hpo_parallel_bench".to_string(),
            rows,
            num: 8,
            cat: 1,
            text: 0,
            classes: 2,
            ceiling: 0.9,
            missing: 0.0,
        },
        0,
    )
}

fn budget() -> TimeBudget {
    // Generous wall clock: the trial cap is the binding constraint, so
    // all arms complete identical trial counts and the comparison is
    // throughput only.
    TimeBudget::seconds(3600.0).with_trial_cap(TRIALS)
}

fn bench_parallel_hpo(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpo_parallel");
    group.sample_size(10);
    let ds = dataset(400);

    // --- Acceptance arms: fixed-skeleton search, homogeneous trials ---
    let skeleton = Skeleton::bare(EstimatorKind::Lgbm);
    for parallelism in [1usize, 2, 4, 8] {
        group.bench_function(format!("flaml_skeleton_p{parallelism}_24_trials"), |b| {
            b.iter_batched(
                || Flaml::new(0).with_parallelism(parallelism),
                |mut engine| {
                    engine
                        .optimize_skeleton(black_box(&ds), &skeleton, &budget())
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }

    // --- Cached vs uncached: the trial hot-path speedup itself ---
    group.bench_function("flaml_skeleton_p1_24_trials_nocache", |b| {
        b.iter_batched(
            || Flaml::new(0).with_trial_cache(false),
            |mut engine| {
                engine
                    .optimize_skeleton(black_box(&ds), &skeleton, &budget())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    let chain = Skeleton {
        transformers: vec![TransformerKind::StandardScaler],
        estimator: EstimatorKind::Lgbm,
    };
    for cache in [true, false] {
        let id = if cache {
            "flaml_chain_p1_24_trials"
        } else {
            "flaml_chain_p1_24_trials_nocache"
        };
        group.bench_function(id, |b| {
            b.iter_batched(
                || Flaml::new(0).with_trial_cache(cache),
                |mut engine| {
                    engine
                        .optimize_skeleton(black_box(&ds), &chain, &budget())
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }

    // --- Overhead-parity arms: historical sequential loop vs the
    // engine at parallelism 1 (the determinism tests prove the trial
    // histories are identical; this shows the gate adds no cost). ---
    group.bench_function("flaml_cold_sequential_24_trials", |b| {
        b.iter_batched(
            || Flaml::new(0),
            |mut engine| {
                engine
                    .optimize_sequential(black_box(&ds), &budget())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("flaml_cold_engine_p1_24_trials", |b| {
        b.iter_batched(
            || Flaml::new(0),
            |mut engine| engine.optimize(black_box(&ds), &budget()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    // --- Machine-readable summary: trials/sec + cache hit rate ---
    // One instrumented search per configuration, reported in the same
    // `BENCH_JSON` stream the criterion arms use so `scripts/bench.sh`
    // folds everything into one BENCH_hpo.json.
    let configs: [(&str, &Skeleton, bool); 4] = [
        ("hpo_summary_skeleton_cached", &skeleton, true),
        ("hpo_summary_skeleton_nocache", &skeleton, false),
        ("hpo_summary_chain_cached", &chain, true),
        ("hpo_summary_chain_nocache", &chain, false),
    ];
    for (id, sk, cache) in configs {
        // One warm-up search, then best-of-3: a single 24-trial search
        // finishes in milliseconds, so a one-shot timing is dominated by
        // scheduler jitter — the best of three repeats is the stable
        // estimate of the hot path (the searches are deterministic, so
        // every repeat runs identical trials).
        let mut result = Flaml::new(0)
            .with_trial_cache(cache)
            .optimize_skeleton(&ds, sk, &budget())
            .unwrap();
        let mut best_secs = f64::INFINITY;
        for _ in 0..3 {
            let mut engine = Flaml::new(0).with_trial_cache(cache);
            let started = Instant::now();
            result = engine.optimize_skeleton(&ds, sk, &budget()).unwrap();
            let secs = started.elapsed().as_secs_f64();
            if secs < best_secs {
                best_secs = secs;
            }
        }
        let trials_per_sec = result.trials as f64 / best_secs.max(1e-9);
        // Bare-skeleton searches never consult the transform cache (no
        // transformer chain to memoize) — their hit rate is `null`, not
        // 0%. `encoded_trials` shows the caching that did happen there.
        let hit_rate = result
            .report
            .cache_hit_rate()
            .map_or("null".to_string(), |r| format!("{r:.4}"));
        println!(
            "BENCH_JSON {{\"id\":{id:?},\"trials\":{},\"trials_per_sec\":{trials_per_sec:.1},\
             \"encoded_trials\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{hit_rate}}}",
            result.trials,
            result.report.encoded_trials,
            result.report.cache_hits,
            result.report.cache_misses,
        );
    }
}

criterion_group!(benches, bench_parallel_hpo);
criterion_main!(benches);
