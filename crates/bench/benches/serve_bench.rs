//! Throughput and latency of `kgpip-serve`, the concurrent batched
//! prediction service over an immutable [`TrainedModel`] artifact.
//!
//! Arms:
//!
//! * `direct_predict` — `TrainedModel::predict_table` with no server in
//!   the loop: the floor any serving overhead is measured against.
//! * `serve_roundtrip_w1_b1` — one worker, batch 1, cache off: the full
//!   submit → queue → worker → reply round trip for a single request.
//! * `serve_wave_w2_b8` — a wave of simultaneous requests against two
//!   workers with batching on: the coalesced path.
//!
//! After the criterion arms, instrumented passes emit `BENCH_JSON`
//! summary lines (QPS, p50/p99 latency, cache hit rate) per server
//! configuration — `scripts/bench.sh` collects these into
//! `BENCH_serve.json`. The serve-identity suite proves every
//! configuration returns bit-identical answers; these numbers are
//! therefore pure cost, never quality.
//!
//! Run `cargo bench --bench serve_bench -- --bench` for timed results;
//! the smoke mode (plain `cargo bench`) only checks the harness runs.

// This bench times wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip::TrainedModel;
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
use kgpip_graphgen::GeneratorConfig;
use kgpip_hpo::{Flaml, Optimizer};
use kgpip_serve::{ServeConfig, ServeHandle, ServeRequest};
use kgpip_tabular::{Column, DataFrame, Task};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Distinct query tables per pass; repeats beyond this count are cache
/// hits when caching is enabled.
const DISTINCT_TABLES: usize = 8;
/// Sequential round trips measured for the latency percentiles.
const LATENCY_REQUESTS: usize = 24;
/// Wave size for the throughput measurement.
const WAVE_REQUESTS: usize = 32;

fn table_like(offset: f64, n: usize) -> DataFrame {
    DataFrame::from_columns(vec![
        (
            "f0".to_string(),
            Column::from_f64((0..n).map(|i| offset + (i % 10) as f64).collect::<Vec<_>>()),
        ),
        (
            "f1".to_string(),
            Column::from_f64((0..n).map(|i| offset + (i % 7) as f64).collect::<Vec<_>>()),
        ),
    ])
    .unwrap()
}

fn trained_artifact() -> TrainedModel {
    let profiles = vec![
        DatasetProfile::new("alpha", false),
        DatasetProfile::new("beta", false),
    ];
    let scripts = generate_corpus(
        &profiles,
        &CorpusConfig {
            scripts_per_dataset: 6,
            unsupported_fraction: 0.0,
            seed: 0,
            ..CorpusConfig::default()
        },
    );
    let tables = vec![
        ("alpha".to_string(), table_like(0.0, 30)),
        ("beta".to_string(), table_like(500.0, 30)),
    ];
    let config = kgpip::KgpipConfig::default().with_generator(GeneratorConfig {
        hidden: 10,
        prop_rounds: 1,
        epochs: 3,
        seed: 0,
        ..GeneratorConfig::default()
    });
    kgpip::Kgpip::train(&scripts, &tables, config)
        .unwrap()
        .into_artifact()
}

fn query_tables() -> Vec<DataFrame> {
    (0..DISTINCT_TABLES)
        .map(|i| table_like(i as f64 * 37.0, 20 + i))
        .collect()
}

fn request_for(table: &DataFrame) -> ServeRequest {
    ServeRequest {
        table: table.clone(),
        task: Task::Binary,
        k: 3,
        seed: 5,
    }
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn bench_serve(c: &mut Criterion) {
    let model = trained_artifact();
    let caps = Flaml::new(0).capabilities();
    let tables = query_tables();

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // --- Baseline: the prediction itself, no server in the loop ---
    let mut cursor = 0usize;
    group.bench_function("direct_predict", |b| {
        b.iter(|| {
            let t = &tables[cursor % tables.len()];
            cursor += 1;
            model
                .predict_table(black_box(t), Task::Binary, 3, &caps, 5)
                .unwrap()
        })
    });

    // --- Full round trip, one request at a time, cache off ---
    {
        let server = ServeHandle::start(
            model.share(),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_cache_capacity(0),
        );
        let mut i = 0usize;
        group.bench_function("serve_roundtrip_w1_b1", |b| {
            b.iter(|| {
                let t = &tables[i % tables.len()];
                i += 1;
                server.predict(request_for(black_box(t))).unwrap()
            })
        });
        server.shutdown();
    }

    // --- Coalesced wave: simultaneous submits, batching on ---
    {
        let server = ServeHandle::start(
            model.share(),
            ServeConfig::default()
                .with_workers(2)
                .with_max_batch(8)
                .with_cache_capacity(0),
        );
        group.bench_function("serve_wave_w2_b8", |b| {
            b.iter(|| {
                let pending: Vec<_> = tables
                    .iter()
                    .map(|t| server.submit(request_for(black_box(t))))
                    .collect();
                pending
                    .into_iter()
                    .map(|p| p.wait().unwrap())
                    .collect::<Vec<_>>()
            })
        });
        server.shutdown();
    }
    group.finish();

    // --- Machine-readable summary: QPS, p50/p99 latency, cache hits ---
    // One instrumented pass per configuration: a sequential phase for
    // honest per-request latency percentiles, then a wave phase for
    // coalesced throughput. Repeats past the distinct-table count are
    // cache hits when caching is on, so the cached configuration's hit
    // rate and QPS show the cache working.
    let configs: [(&str, usize, usize, usize); 3] = [
        ("serve_summary_w1_b1_nocache", 1, 1, 0),
        ("serve_summary_w2_b8_nocache", 2, 8, 0),
        ("serve_summary_w2_b8_cached", 2, 8, 256),
    ];
    for (id, workers, max_batch, cache_capacity) in configs {
        let server = ServeHandle::start(
            model.share(),
            ServeConfig::default()
                .with_workers(workers)
                .with_max_batch(max_batch)
                .with_cache_capacity(cache_capacity),
        );

        // Latency phase: strict round trips, one in flight at a time.
        let mut latencies: Vec<Duration> = Vec::with_capacity(LATENCY_REQUESTS);
        for i in 0..LATENCY_REQUESTS {
            let t = &tables[i % tables.len()];
            let started = Instant::now();
            black_box(server.predict(request_for(t)).unwrap());
            latencies.push(started.elapsed());
        }
        latencies.sort();

        // Throughput phase: the whole wave in flight at once.
        let started = Instant::now();
        let pending: Vec<_> = (0..WAVE_REQUESTS)
            .map(|i| server.submit(request_for(&tables[i % tables.len()])))
            .collect();
        for p in pending {
            black_box(p.wait().unwrap());
        }
        let wave_secs = started.elapsed().as_secs_f64();

        let stats = server.shutdown();
        let probes = stats.cache.hits + stats.cache.misses;
        let hit_rate = if probes == 0 {
            0.0
        } else {
            stats.cache.hits as f64 / probes as f64
        };
        println!(
            "BENCH_JSON {{\"id\":{id:?},\"workers\":{workers},\"max_batch\":{max_batch},\
             \"requests\":{},\"qps\":{:.1},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\
             \"batches\":{},\"cache_hit_rate\":{hit_rate:.4}}}",
            stats.served,
            WAVE_REQUESTS as f64 / wave_secs.max(1e-9),
            percentile_ms(&latencies, 50.0),
            percentile_ms(&latencies, 99.0),
            stats.batches,
        );
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
