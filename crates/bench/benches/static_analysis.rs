//! Benchmarks for the static-analysis substrate — the costs behind
//! Table 3's raw-vs-filtered comparison and §3.3's scalability claim
//! ("GraphGen4Code can scale static analysis to millions of programs").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
use kgpip_codegraph::{analyze, filter_graph};
use std::hint::black_box;

fn scripts(n: usize, noise: usize) -> Vec<String> {
    generate_corpus(
        &[DatasetProfile::new("bench_ds", false)],
        &CorpusConfig {
            scripts_per_dataset: n,
            eda_noise: noise,
            unsupported_fraction: 0.0,
            seed: 1,
            ..CorpusConfig::default()
        },
    )
    .into_iter()
    .map(|r| r.source)
    .collect()
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_static_analysis");
    group.sample_size(20);

    let small = scripts(1, 4).pop().unwrap();
    group.bench_function("analyze_one_notebook", |b| {
        b.iter(|| analyze(black_box(&small)).unwrap())
    });

    let noisy = scripts(1, 16).pop().unwrap();
    group.bench_function("analyze_eda_heavy_notebook", |b| {
        b.iter(|| analyze(black_box(&noisy)).unwrap())
    });

    let graph = analyze(&noisy).unwrap();
    group.bench_function("filter_code_graph", |b| {
        b.iter(|| filter_graph(black_box(&graph)))
    });

    // Corpus-scale throughput: 50 notebooks through the whole mining path.
    let corpus: Vec<String> = scripts(50, 6);
    group.bench_function("mine_50_notebook_corpus", |b| {
        b.iter_batched(
            || corpus.clone(),
            |corpus| {
                let mut kept = 0usize;
                for src in &corpus {
                    let g = analyze(src).unwrap();
                    if filter_graph(&g).skeleton().is_some() {
                        kept += 1;
                    }
                }
                kept
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
