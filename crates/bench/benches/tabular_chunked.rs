//! Throughput of the out-of-core chunked tabular engine against the
//! in-memory baselines it must not regress:
//!
//! * `ingest_*` — RFC-4180 CSV ingest: `read_frame` (cold, whole-file)
//!   vs the streaming chunked reader at worker counts 1/2/4 and in
//!   bounded-memory mode. The identity suites prove every arm parses to
//!   the same frame; these arms measure cost only. On a multi-core host
//!   the acceptance bar is ≥ 1.5× rows/sec at p ≥ 2 over `read_frame`;
//!   on a 1-CPU host (where `effective_parallelism` clamps every arm to
//!   one worker) the bar is parity with ≤ 2 resident chunks per worker.
//! * `gbt_fit_*` — histogram GBT fits: dense `fit` vs `fit_chunked`
//!   (sample-fit bin edges, per-chunk binning, no dense matrix).
//! * `embed_*` — table embeddings: in-memory `table_embedding` vs the
//!   sampled chunk-streaming `table_embedding_chunked`.
//!
//! After the criterion arms, the harness emits `BENCH_JSON` summary
//! lines (rows/sec plus the ingest residency report) that
//! `scripts/bench.sh` folds into `BENCH_tabular.json`.

// This bench times wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use kgpip_embeddings::{table_embedding, table_embedding_chunked};
use kgpip_learners::estimators::gbt::{GbtConfig, GradientBoosting};
use kgpip_learners::{ChunkedMatrix, Estimator, EstimatorKind, Matrix};
use kgpip_tabular::{csv::read_frame, read_chunked_with_report, ChunkedReadOptions, Task};
use std::hint::black_box;
use std::time::Instant;

/// Data rows in the synthetic CSV document.
const CSV_ROWS: usize = 40_000;

/// Rows per chunk for the streaming arms.
const CHUNK_ROWS: usize = 4096;

/// Row-sample bound for the sampled embedding / GBT edge arms.
const SAMPLE_BOUND: usize = 8192;

/// A deterministic mixed-type CSV document: numeric, categorical, and
/// text columns, sporadic missing cells, and quoted cells with embedded
/// commas so the quote path is exercised.
fn csv_text(rows: usize) -> String {
    let cities = ["paris", "lyon", "nice", "lille", "brest"];
    let mut text = String::with_capacity(rows * 48);
    text.push_str("id,value,score,city,flag,note\n");
    for i in 0..rows {
        let value = ((i * 37 % 1000) as f64) / 10.0;
        let score = ((i * 17 % 89) as f64) / 89.0;
        let city = cities[i % cities.len()];
        let flag = i % 3;
        if i % 97 == 0 {
            // Missing value and a quoted note with a comma.
            text.push_str(&format!("{i},,{score:.4},{city},{flag},\"alpha, beta\"\n"));
        } else {
            text.push_str(&format!(
                "{i},{value:.3},{score:.4},{city},{flag},plain note {}\n",
                i % 11
            ));
        }
    }
    text
}

/// The GBT fixture: a dense design matrix plus a smooth target.
fn gbt_fixture(rows: usize) -> (Matrix, Vec<f64>) {
    let features = 8;
    let grid: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            (0..features)
                .map(|f| (((i * (2 * f + 3) + f * f) % 97) as f64) / 97.0)
                .collect()
        })
        .collect();
    let x = Matrix::from_rows(&grid).expect("rectangular fixture");
    let y: Vec<f64> = (0..rows)
        .map(|r| {
            let row = x.row(r);
            10.0 * (std::f64::consts::PI * row[0] * row[1]).sin() + 5.0 * row[2]
        })
        .collect();
    (x, y)
}

fn gbt_config() -> GbtConfig {
    GbtConfig {
        n_estimators: 10,
        learning_rate: 0.2,
        max_depth: 16,
        subsample: 1.0,
        lambda: 1.0,
        gamma: 0.0,
        min_child_weight: 1.0,
        second_order: true,
        histogram: true,
        max_bins: 32,
        max_leaves: 31,
        seed: 7,
        kind: EstimatorKind::Lgbm,
    }
}

fn opts(parallelism: usize, bounded: bool) -> ChunkedReadOptions {
    ChunkedReadOptions {
        chunk_rows: CHUNK_ROWS,
        parallelism,
        bounded_memory: bounded,
    }
}

fn bench_tabular_chunked(c: &mut Criterion) {
    let text = csv_text(CSV_ROWS);
    let mut group = c.benchmark_group("tabular_chunked");
    group.sample_size(10);

    group.bench_function("ingest_read_frame", |b| {
        b.iter(|| read_frame(black_box(&text)).unwrap())
    });
    for parallelism in [1usize, 2, 4] {
        group.bench_function(format!("ingest_chunked_p{parallelism}"), |b| {
            b.iter(|| {
                read_chunked_with_report(black_box(&text), &opts(parallelism, false)).unwrap()
            })
        });
    }
    group.bench_function("ingest_chunked_p4_bounded", |b| {
        b.iter(|| read_chunked_with_report(black_box(&text), &opts(4, true)).unwrap())
    });

    let (x, y) = gbt_fixture(20_000);
    let cm = ChunkedMatrix::from_matrix(&x, CHUNK_ROWS);
    group.bench_function("gbt_fit_dense", |b| {
        b.iter(|| {
            let mut m = GradientBoosting::new(gbt_config());
            m.fit(black_box(&x), black_box(&y), Task::Regression)
                .unwrap();
            m
        })
    });
    group.bench_function("gbt_fit_chunked", |b| {
        b.iter(|| {
            let mut m = GradientBoosting::new(gbt_config());
            m.fit_chunked(
                black_box(&cm),
                black_box(&y),
                Task::Regression,
                SAMPLE_BOUND,
            )
            .unwrap();
            m
        })
    });

    let frame = read_frame(&text).unwrap();
    let (chunked_frame, _) = read_chunked_with_report(&text, &opts(1, false)).unwrap();
    group.bench_function("embed_in_memory", |b| {
        b.iter(|| table_embedding(black_box(&frame)))
    });
    group.bench_function("embed_chunked_sampled", |b| {
        b.iter(|| table_embedding_chunked(black_box(&chunked_frame), SAMPLE_BOUND, 0))
    });
    group.finish();

    // --- Machine-readable summary: rows/sec per arm + residency ---
    let timed = |f: &dyn Fn()| -> f64 {
        // One warm-up then a best-of-3 timed window, matching the
        // summary style of the other suites (criterion has the full
        // distributions; these lines are the tracked scalars).
        f();
        (0..3)
            .map(|_| {
                let started = Instant::now();
                f();
                started.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let read_frame_secs = timed(&|| {
        read_frame(&text).unwrap();
    });
    println!(
        "BENCH_JSON {{\"id\":\"tabular_ingest_read_frame\",\"rows\":{CSV_ROWS},\
         \"rows_per_sec\":{:.0}}}",
        CSV_ROWS as f64 / read_frame_secs.max(1e-9)
    );
    for parallelism in [1usize, 2, 4] {
        for bounded in [false, true] {
            let secs = timed(&|| {
                read_chunked_with_report(&text, &opts(parallelism, bounded)).unwrap();
            });
            let (_, report) = read_chunked_with_report(&text, &opts(parallelism, bounded)).unwrap();
            let suffix = if bounded { "_bounded" } else { "" };
            println!(
                "BENCH_JSON {{\"id\":\"tabular_ingest_chunked_p{parallelism}{suffix}\",\
                 \"rows\":{CSV_ROWS},\"rows_per_sec\":{:.0},\"workers\":{},\
                 \"chunks\":{},\"peak_resident_chunks\":{},\
                 \"speedup_vs_read_frame\":{:.3}}}",
                CSV_ROWS as f64 / secs.max(1e-9),
                report.workers,
                report.chunks,
                report.peak_resident_chunks,
                read_frame_secs / secs.max(1e-9),
            );
        }
    }
    let dense_secs = timed(&|| {
        let mut m = GradientBoosting::new(gbt_config());
        m.fit(&x, &y, Task::Regression).unwrap();
    });
    let chunked_secs = timed(&|| {
        let mut m = GradientBoosting::new(gbt_config());
        m.fit_chunked(&cm, &y, Task::Regression, SAMPLE_BOUND)
            .unwrap();
    });
    println!(
        "BENCH_JSON {{\"id\":\"tabular_gbt_fit_dense\",\"rows\":{},\"rows_per_sec\":{:.0}}}",
        x.rows(),
        x.rows() as f64 / dense_secs.max(1e-9)
    );
    println!(
        "BENCH_JSON {{\"id\":\"tabular_gbt_fit_chunked\",\"rows\":{},\"rows_per_sec\":{:.0},\
         \"speedup_vs_dense\":{:.3}}}",
        x.rows(),
        x.rows() as f64 / chunked_secs.max(1e-9),
        dense_secs / chunked_secs.max(1e-9),
    );
    let embed_dense_secs = timed(&|| {
        table_embedding(&frame);
    });
    let embed_chunked_secs = timed(&|| {
        table_embedding_chunked(&chunked_frame, SAMPLE_BOUND, 0);
    });
    println!(
        "BENCH_JSON {{\"id\":\"tabular_embed_in_memory\",\"rows\":{CSV_ROWS},\
         \"rows_per_sec\":{:.0}}}",
        CSV_ROWS as f64 / embed_dense_secs.max(1e-9)
    );
    println!(
        "BENCH_JSON {{\"id\":\"tabular_embed_chunked_sampled\",\"rows\":{CSV_ROWS},\
         \"rows_per_sec\":{:.0},\"sample_bound\":{SAMPLE_BOUND},\"speedup_vs_in_memory\":{:.3}}}",
        CSV_ROWS as f64 / embed_chunked_secs.max(1e-9),
        embed_dense_secs / embed_chunked_secs.max(1e-9),
    );
}

criterion_group!(benches, bench_tabular_chunked);
criterion_main!(benches);
