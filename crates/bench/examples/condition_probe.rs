//! Does the trained generator condition on embeddings at all? Predict with
//! each TRAINING dataset's own embedding and report the top estimators —
//! if these do not vary by domain, the generator has collapsed to the
//! corpus-global mode and the §3.5 conditioning is broken. Run with
//! `cargo run --release -p kgpip-bench --example condition_probe`.
use kgpip_bench::runner::{build_model, ExperimentConfig};
use kgpip_benchdata::generate::{domain_of, shape_of};
use kgpip_hpo::{Flaml, Optimizer};
use kgpip_tabular::Task;

fn main() {
    let cfg = ExperimentConfig::default();
    let model = build_model(&cfg);
    println!("training losses: {:?}", &model.stats().epoch_losses);
    let caps = Flaml::new(0).capabilities();
    let names: Vec<String> = model.graph4ml().datasets().to_vec();
    for name in names {
        let emb = model.embedding_of(&name).unwrap().to_vec();
        let sk = model
            .predict_with_embedding(&emb, Task::Binary, 3, &caps, 9)
            .expect("k > 0");
        let tops: Vec<&str> = sk.iter().map(|(s, _)| s.estimator.name()).collect();
        println!(
            "{name:14} dom {} {:?} -> {:?}",
            domain_of(&name),
            shape_of(domain_of(&name)),
            tops
        );
    }
}
