//! Shape-learnability probe: noiseless datasets of each shape must be
//! nearly perfectly learnable by their intended winning family at the
//! default scale, or difficulty calibration is meaningless.
use kgpip_benchdata::generate::{domain_of, shape_of, synthesize, SynthSpec, NUM_DOMAINS};
use kgpip_learners::pipeline::{Pipeline, PipelineSpec};
use kgpip_learners::EstimatorKind;
use kgpip_tabular::train_test_split;

fn main() {
    // One representative name per shape.
    let mut names: Vec<String> = vec![];
    for want in ["Boost", "Linear", "Neighbor"] {
        for i in 0..200 {
            let cand = format!("shape_probe_{i}");
            if format!("{:?}", shape_of(domain_of(&cand))) == want {
                names.push(cand);
                break;
            }
        }
    }
    let _ = NUM_DOMAINS;
    for name in names {
        let shape = shape_of(domain_of(&name));
        let spec = SynthSpec {
            name: name.clone(),
            rows: 600,
            num: 12,
            cat: 0,
            text: 0,
            classes: 2,
            ceiling: 0.995,
            missing: 0.0,
        };
        let ds = synthesize(&spec, 5);
        let (tr, te) = train_test_split(&ds, 0.3, 0).unwrap();
        print!("{name} {shape:?}: ");
        for kind in [
            EstimatorKind::XgBoost,
            EstimatorKind::LogisticRegression,
            EstimatorKind::Knn,
            EstimatorKind::RandomForest,
        ] {
            let s = Pipeline::from_spec(PipelineSpec::bare(kind))
                .unwrap()
                .fit_score(&tr, &te)
                .unwrap_or(f64::NAN);
            print!("{}={s:.2} ", kind.name());
        }
        // Scaled k-NN: the transformer choice the corpus pairs with knn.
        let scaled_knn = PipelineSpec {
            transformers: vec![(
                kgpip_learners::TransformerKind::StandardScaler,
                Default::default(),
            )],
            estimator: EstimatorKind::Knn,
            params: Default::default(),
        };
        let s = Pipeline::from_spec(scaled_knn)
            .unwrap()
            .fit_score(&tr, &te)
            .unwrap_or(f64::NAN);
        println!("scaler+knn={s:.2}");
    }
}
