//! Diagnostic probe: for a handful of benchmark datasets, prints how each
//! learner family scores at default hyperparameters, plus how many trials
//! the cold FLAML-style engine completes per second — the two quantities
//! that determine whether an experiment runs in the paper's trial-starved
//! regime (see `kgpip_hpo::budget`).
//!
//! ```sh
//! cargo run --release -p kgpip-bench --example probe
//! ```

use kgpip_benchdata::{benchmark, generate_dataset, ScaleConfig};
use kgpip_hpo::{Flaml, Optimizer, TimeBudget};
use kgpip_learners::pipeline::{Pipeline, PipelineSpec};
use kgpip_learners::EstimatorKind;
use kgpip_tabular::train_test_split;

fn main() {
    let scale = ScaleConfig::default();
    for name in [
        "phoneme",
        "higgs",
        "car",
        "houses",
        "pol",
        "spooky-author-identification",
        "bng_echomonths",
        "housing-prices",
    ] {
        let entry = benchmark().iter().find(|e| e.name == name).unwrap();
        let ds = generate_dataset(entry, &scale, entry.id as u64 * 1000);
        let (train, test) = train_test_split(&ds, 0.3, entry.id as u64 * 1000).unwrap();
        print!("{name:30} task={:?} ", entry.task);
        let mut scores = vec![];
        for kind in EstimatorKind::ALL {
            if !kind.supports(ds.task) {
                continue;
            }
            let s = Pipeline::from_spec(PipelineSpec::bare(kind))
                .unwrap()
                .fit_score(&train, &test)
                .unwrap_or(f64::NAN);
            scores.push((kind.name(), s));
        }
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> = scores
            .iter()
            .take(3)
            .map(|(n, s)| format!("{n}:{s:.2}"))
            .collect();
        let bot: Vec<String> = scores
            .iter()
            .rev()
            .take(2)
            .map(|(n, s)| format!("{n}:{s:.2}"))
            .collect();
        let mut f = Flaml::new(0);
        let r = f.optimize(&train, &TimeBudget::seconds(1.0)).unwrap();
        println!(
            "trials_1s={} best={} | top {:?} bottom {:?}",
            r.trials,
            r.spec.estimator.name(),
            top,
            bot
        );
    }
}
