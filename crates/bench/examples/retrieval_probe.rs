//! Diagnostic: for every benchmark dataset, does the nearest-neighbour
//! training table share the dataset's content domain? And does the top-1
//! predicted estimator match the domain's winning family?
//!
//! These two rates decompose KGpip's end-to-end advantage into its two
//! mechanisms (content-based retrieval, §3.2; conditional generation,
//! §3.5). Run with `cargo run --release -p kgpip-bench --example
//! retrieval_probe`; only mismatching datasets are listed.
use kgpip_bench::runner::{build_model, ExperimentConfig};
use kgpip_benchdata::generate::{domain_of, shape_of, DataShape};
use kgpip_benchdata::{benchmark, generate_dataset};
use kgpip_hpo::{Flaml, Optimizer};

fn main() {
    let cfg = ExperimentConfig::default();
    let model = build_model(&cfg);
    let caps = Flaml::new(0).capabilities();
    let mut domain_hits = 0;
    let mut family_hits = 0;
    let mut n = 0;
    for entry in benchmark() {
        let ds = generate_dataset(
            entry,
            &cfg.scale,
            cfg.seed.wrapping_add(entry.id as u64 * 1000),
        );
        let (name, sim) = model.nearest_dataset(&ds).unwrap();
        let want = domain_of(entry.name);
        let got = domain_of(&name);
        let (skeletons, _) = model
            .predict_skeletons(&ds, 3, &caps, cfg.seed)
            .expect("trained catalog is non-empty and k > 0");
        let shape = shape_of(want);
        let fam: &[&str] = match shape {
            DataShape::Boost => &["xgboost", "gradient_boost", "lgbm", "random_forest"],
            DataShape::Linear => &[
                "logistic_regression",
                "ridge",
                "lasso",
                "linear_svm",
                "linear_regression",
            ],
            DataShape::Neighbor => &["knn", "random_forest", "extra_trees"],
        };
        let top = skeletons
            .first()
            .map(|(s, _)| s.estimator.name())
            .unwrap_or("-");
        let fam_ok = fam.contains(&top);
        if got == want {
            domain_hits += 1;
        }
        if fam_ok {
            family_hits += 1;
        }
        n += 1;
        if got != want || !fam_ok {
            println!(
                "{:38} dom {want}->{got} sim {sim:.2} shape {shape:?} top1 {top} {}",
                entry.name,
                if fam_ok { "famOK" } else { "famMISS" }
            );
        }
    }
    println!("\ndomain retrieval: {domain_hits}/{n}; family match: {family_hits}/{n}");
}
