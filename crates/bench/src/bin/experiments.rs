//! CLI regenerating every table and figure of the KGpip paper.
//!
//! ```text
//! experiments <target> [--budget-secs S] [--runs N] [--limit L] [--seed X] [--full]
//!
//! targets: table1 table2 table3 table4 table5 fig5 fig6 fig7 fig8 fig9
//!          fig10 mrr diversity prop-rounds conditioning all
//! ```
//!
//! `fig5`/`table5`/`table2`/`fig8`/`mrr` share one sweep of the four main
//! systems; `--limit` restricts the number of benchmark datasets (default
//! 12 for quick runs; `--full` uses all 77 as in the paper).

use kgpip_bench::experiments::{self, ablation, analysis};
use kgpip_bench::runner::ExperimentConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().cloned().unwrap_or_else(|| "all".to_string());
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let full = args.iter().any(|a| a == "--full");

    let mut cfg = ExperimentConfig::default();
    if let Some(b) = flag("--budget-secs").and_then(|v| v.parse().ok()) {
        cfg.budget_secs = b;
    }
    if let Some(r) = flag("--runs").and_then(|v| v.parse().ok()) {
        cfg.runs = r;
    }
    if let Some(t) = flag("--trials").and_then(|v| v.parse().ok()) {
        cfg.trials_per_system = t;
    }
    if let Some(s) = flag("--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = s;
    }
    let limit = if full {
        None
    } else {
        Some(
            flag("--limit")
                .and_then(|v| v.parse().ok())
                .unwrap_or(12usize),
        )
    };

    eprintln!(
        "# config: budget {:.1}s + {} trials /dataset/system, runs {}, datasets {}, seed {}",
        cfg.budget_secs,
        cfg.trials_per_system,
        cfg.runs,
        limit
            .map(|l| l.to_string())
            .unwrap_or_else(|| "77 (full)".into()),
        cfg.seed
    );

    let needs_sweep = matches!(
        target.as_str(),
        "table2" | "table5" | "fig5" | "fig8" | "mrr" | "all"
    );
    let sweep = if needs_sweep {
        eprintln!("# running main four-system sweep...");
        Some(experiments::run_main_sweep(&cfg, limit))
    } else {
        None
    };

    let mut emitted = false;
    let mut emit = |name: &str, report: String| {
        println!("==== {name} ====\n{report}");
        emitted = true;
    };
    let want = |name: &str| target == name || target == "all";

    if want("table1") {
        emit("table1", experiments::table1());
    }
    if want("table4") {
        emit("table4", experiments::table4());
    }
    if let Some(sweep) = &sweep {
        if want("fig5") || want("table5") {
            emit("fig5 / table5", experiments::table5(sweep));
        }
        if want("table2") {
            emit("table2", experiments::table2(sweep));
        }
        if want("fig8") {
            emit("fig8", analysis::fig8(sweep));
        }
        if want("mrr") {
            emit("mrr (4.5.2)", analysis::mrr_report(sweep));
        }
    }
    if want("fig6") {
        emit("fig6", experiments::fig6(&cfg, limit));
    }
    if want("table3") {
        emit("table3", ablation::table3(&cfg));
    }
    if want("fig7") {
        emit(
            "fig7",
            analysis::fig7(&cfg, Some(limit.unwrap_or(8).min(8))),
        );
    }
    if want("fig9") {
        emit("fig9", ablation::fig9(&cfg, 3));
    }
    if want("fig10") {
        emit("fig10", analysis::fig10(cfg.seed));
    }
    if want("diversity") {
        emit(
            "diversity (4.5.3)",
            analysis::diversity(&cfg, Some(limit.unwrap_or(6).min(6))),
        );
    }
    if want("prop-rounds") {
        emit(
            "ablation: prop rounds",
            ablation::prop_rounds_ablation(&cfg),
        );
    }
    if want("conditioning") {
        emit(
            "ablation: conditioning",
            ablation::conditioning_ablation(&cfg, 8),
        );
    }
    if !emitted {
        eprintln!(
            "unknown target `{target}`; valid: table1 table2 table3 table4 table5 \
             fig5 fig6 fig7 fig8 fig9 fig10 mrr diversity prop-rounds conditioning all"
        );
        std::process::exit(2);
    }
}
