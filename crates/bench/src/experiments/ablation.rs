//! Ablations: Table 3 (raw code graphs vs filtered graphs), Figure 9
//! (training-corpus op counts), and the DESIGN.md extras (propagation
//! rounds, content-vs-zero conditioning).

use crate::runner::{build_model, ExperimentConfig};
use crate::stats;
use kgpip::{Kgpip, KgpipConfig};
use kgpip_benchdata::generate::{domain_of, shape_of, DataShape};
use kgpip_benchdata::training::shape_weights;
use kgpip_benchdata::{benchmark, generate_dataset};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile, ScriptRecord};
use kgpip_codegraph::filter::op_of_label;
use kgpip_codegraph::{analyze, filter_graph, CodeGraph, EdgeKind, NodeKind, PipelineGraph};
use kgpip_graphgen::model::TypedGraph;
use kgpip_graphgen::{GeneratorConfig, GraphGenerator, TrainExample};
use kgpip_hpo::{AutoSklearn, Optimizer, TimeBudget};
use kgpip_tabular::{train_test_split, Column, DataFrame, Task};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The paper's five "trivial" datasets for the Table-3 ablation: "the
/// datasets where the F1 score of all the reported systems ... is above
/// 0.9 ... 1 binary and 4 multi-class".
pub const TRIVIAL_DATASETS: [&str; 5] = ["kr-vs-kp", "nomao", "cnae-9", "mfeat-factors", "segment"];

/// Encodes raw (unfiltered) code graphs into typed graphs over a
/// label-derived vocabulary: call labels keep their API path, noise nodes
/// collapse to their kind. Index 0 is a synthetic dataset anchor. Only
/// forward (`from < to`) non-transitive edges are kept for generator
/// training; the transitive-closure edges still count toward the reported
/// raw-graph statistics.
pub fn encode_raw_graphs(graphs: &[CodeGraph]) -> (Vec<String>, Vec<TypedGraph>) {
    let mut vocab: Vec<String> = vec!["<dataset>".to_string()];
    let mut lookup: HashMap<String, usize> = HashMap::new();
    lookup.insert(vocab[0].clone(), 0);
    let mut intern = |label: String, vocab: &mut Vec<String>| -> usize {
        if let Some(&id) = lookup.get(&label) {
            return id;
        }
        vocab.push(label.clone());
        lookup.insert(label, vocab.len() - 1);
        vocab.len() - 1
    };
    let typed = graphs
        .iter()
        .map(|g| {
            let mut types = vec![0usize];
            for node in &g.nodes {
                let label = match node.kind {
                    NodeKind::Call => node.label.to_string(),
                    NodeKind::Constant => "<const>".to_string(),
                    NodeKind::Location => "<loc>".to_string(),
                    NodeKind::Parameter => "<param>".to_string(),
                    NodeKind::Documentation => "<doc>".to_string(),
                    NodeKind::Dataset => "<dataset>".to_string(),
                };
                types.push(intern(label, &mut vocab));
            }
            let mut edges: Vec<(usize, usize)> = g
                .edges
                .iter()
                .filter(|e| e.kind != EdgeKind::TransitiveDataFlow && e.from < e.to)
                .map(|e| (e.from + 1, e.to + 1))
                .collect();
            if types.len() > 1 {
                edges.push((0, 1));
            }
            edges.sort_unstable();
            edges.dedup();
            TypedGraph { types, edges }
        })
        .collect();
    (vocab, typed)
}

/// Attempts to decode a raw-vocabulary generated graph into a pipeline
/// skeleton: label ids map back through [`op_of_label`]; a graph is valid
/// iff a recognized estimator op appears.
pub fn decode_raw_graph(graph: &TypedGraph, vocab: &[String], task: Task) -> Option<PipelineGraph> {
    let ops: Vec<_> = graph
        .types
        .iter()
        .filter_map(|&t| op_of_label(vocab.get(t)?))
        .collect();
    if ops.is_empty() {
        return None;
    }
    let pg = PipelineGraph {
        edges: (0..ops.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect(),
        ops,
    };
    // Valid only if it decodes to a task-compatible skeleton.
    kgpip::decode_skeleton(&pg, task).map(|_| pg)
}

/// Table 3: a model trained on raw code graphs vs one trained on filtered
/// graphs — node/edge counts, training time, and F1 on the five trivial
/// datasets.
pub fn table3(cfg: &ExperimentConfig) -> String {
    // 82 pipelines for one classification dataset, as in the paper.
    let profile = DatasetProfile::new("ablation_corpus", false);
    let scripts: Vec<ScriptRecord> = generate_corpus(
        &[profile],
        &CorpusConfig {
            scripts_per_dataset: 82,
            eda_noise: 5,
            unsupported_fraction: 0.0,
            seed: cfg.seed,
            ..CorpusConfig::default()
        },
    );
    let raw_graphs: Vec<CodeGraph> = scripts
        .iter()
        .map(|s| analyze(&s.source).expect("generated scripts parse"))
        .collect();
    let filtered: Vec<_> = raw_graphs.iter().map(filter_graph).collect();

    let raw_nodes: usize = raw_graphs.iter().map(CodeGraph::num_nodes).sum();
    let raw_edges: usize = raw_graphs.iter().map(CodeGraph::num_edges).sum();
    let filt_nodes: usize = filtered.iter().map(PipelineGraph::num_nodes).sum();
    let filt_edges: usize = filtered.iter().map(PipelineGraph::num_edges).sum();

    // --- train the filtered model (full KGpip path) ---
    let table = DataFrame::from_columns(vec![(
        "x".to_string(),
        Column::from_f64((0..100).map(|i| i as f64).collect::<Vec<_>>()),
    )])
    .expect("single column");
    let gen_cfg = GeneratorConfig {
        hidden: 16,
        prop_rounds: 1,
        epochs: cfg.generator_epochs.min(3),
        seed: cfg.seed,
        ..GeneratorConfig::default()
    };
    let filtered_start = std::time::Instant::now();
    let model = Kgpip::train(
        &scripts,
        &[("ablation_corpus".to_string(), table)],
        KgpipConfig::default()
            .with_k(3)
            .with_seed(cfg.seed)
            .with_generator(gen_cfg.clone()),
    )
    .expect("corpus yields valid pipelines");
    let filtered_secs = filtered_start.elapsed().as_secs_f64();

    // --- train the raw model on unfiltered graphs, same epochs ---
    let (raw_vocab, raw_typed) = encode_raw_graphs(&raw_graphs);
    let raw_examples: Vec<TrainExample> = raw_typed
        .iter()
        .map(|g| TrainExample {
            dataset_embedding: vec![0.0; 48],
            graph: g.clone(),
        })
        .collect();
    let mut raw_generator = GraphGenerator::new(GeneratorConfig {
        vocab_size: raw_vocab.len(),
        max_nodes: 40,
        ..gen_cfg
    });
    let raw_start = std::time::Instant::now();
    raw_generator.train(&raw_examples);
    let raw_secs = raw_start.elapsed().as_secs_f64();

    // --- evaluate both on the trivial datasets ---
    let mut out = String::from("Table 3. Raw code graphs vs filtered graphs.\n");
    let _ = writeln!(
        out,
        "{:18} {:>12} {:>14}",
        "Aspect", "Code Graph", "Filtered Graph"
    );
    let mut filtered_f1 = Vec::new();
    let raw_prefix = TypedGraph {
        types: vec![0],
        edges: vec![],
    };
    for name in TRIVIAL_DATASETS {
        let entry = benchmark()
            .iter()
            .find(|e| e.name == name)
            .expect("known name");
        let ds = generate_dataset(entry, &cfg.scale, cfg.seed.wrapping_add(entry.id as u64));
        let (train, test) = train_test_split(&ds, 0.3, cfg.seed).expect("enough rows");
        // Raw model: K=3 generations; valid pipelines only.
        let raw_pipelines: Vec<PipelineGraph> = (0..3)
            .filter_map(|i| {
                let g =
                    raw_generator.generate_top_k(&vec![0.0; 48], &raw_prefix, 1, 1.2, cfg.seed + i);
                g.first()
                    .and_then(|c| decode_raw_graph(&c.graph, &raw_vocab, ds.task))
            })
            .collect();
        let raw_f1 = if raw_pipelines.is_empty() {
            0.0 // no valid pipeline — the paper's observed outcome
        } else {
            // If the raw model ever produces valid pipelines, score *its
            // own* best skeleton honestly through the same backend.
            raw_pipelines
                .iter()
                .filter_map(|pg| {
                    let skeleton = kgpip::decode_skeleton(pg, ds.task)?;
                    let mut backend = AutoSklearn::new(cfg.seed);
                    let result = backend
                        .optimize_skeleton(
                            &train,
                            &skeleton,
                            &TimeBudget::seconds(cfg.budget_secs)
                                .with_trial_cap(cfg.trials_per_system / 3),
                        )
                        .ok()?;
                    result.refit_score(&train, &test).ok()
                })
                .fold(0.0f64, f64::max)
        };
        // Filtered model through the full KGpip + AutoSklearn path.
        let mut backend = AutoSklearn::new(cfg.seed);
        let f1 = model
            .run(&train, &mut backend, TimeBudget::seconds(cfg.budget_secs))
            .ok()
            .and_then(|r| r.best().refit_score(&train, &test).ok())
            .unwrap_or(0.0)
            .max(0.0);
        filtered_f1.push(f1);
        let _ = writeln!(out, "{name:18} {raw_f1:>12.2} {f1:>14.2}");
    }
    let _ = writeln!(
        out,
        "{:18} {:>12.2} {:>14.2}",
        "Avg. F1",
        0.0,
        stats::mean(&filtered_f1)
    );
    let _ = writeln!(out, "{:18} {raw_nodes:>12} {filt_nodes:>14}", "No. Nodes");
    let _ = writeln!(out, "{:18} {raw_edges:>12} {filt_edges:>14}", "No. Edges");
    let _ = writeln!(
        out,
        "{:18} {raw_secs:>11.1}s {filtered_secs:>13.1}s",
        "Training Time"
    );
    let node_red = 100.0 * (1.0 - filt_nodes as f64 / raw_nodes.max(1) as f64);
    let edge_red = 100.0 * (1.0 - filt_edges as f64 / raw_edges.max(1) as f64);
    let _ = writeln!(
        out,
        "\nReduction: {node_red:.1}% nodes, {edge_red:.1}% edges (paper: >= 96.6%); \
         training speedup {:.0}x (paper: 175 min -> 2 min, ~99%).",
        raw_secs / filtered_secs.max(1e-9)
    );
    out
}

/// Figure 9: learners and transformers occurring at least `threshold`
/// times in the training pipelines.
pub fn fig9(cfg: &ExperimentConfig, threshold: usize) -> String {
    let model = build_model(cfg);
    let counts = model.graph4ml().op_counts();
    let mut pairs: Vec<(String, usize)> = counts
        .into_iter()
        .filter(|(op, c)| (op.is_estimator() || op.is_transformer()) && *c >= threshold)
        .map(|(op, c)| (op.name().to_string(), c))
        .collect();
    pairs.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    let mut out = format!(
        "Figure 9. Learners/transformers with >= {threshold} occurrences in the training pipelines.\n"
    );
    for (name, count) in &pairs {
        let _ = writeln!(out, "  {name:22} {count}");
    }
    if let Some((top, _)) = pairs.first() {
        let _ = writeln!(
            out,
            "Shape check: most frequent = {top} (paper: xgboost / gradient boosting dominate)."
        );
    }
    out
}

/// DESIGN.md ablation: generator propagation rounds 0/1/2 — training loss
/// and valid-skeleton rate.
pub fn prop_rounds_ablation(cfg: &ExperimentConfig) -> String {
    let profiles = vec![
        DatasetProfile::new("prop_a", false),
        DatasetProfile::new("prop_b", true),
    ];
    let scripts = generate_corpus(
        &profiles,
        &CorpusConfig {
            scripts_per_dataset: 15,
            unsupported_fraction: 0.0,
            seed: cfg.seed,
            ..CorpusConfig::default()
        },
    );
    let vocab = kgpip_codegraph::OpVocab::new();
    let examples: Vec<TrainExample> = scripts
        .iter()
        .filter_map(|s| {
            let g = filter_graph(&analyze(&s.source).ok()?);
            g.skeleton()?;
            Some(TrainExample {
                dataset_embedding: vec![0.1; 48],
                graph: TypedGraph::encode(&g.with_dataset_node(), &vocab),
            })
        })
        .collect();
    let mut out = String::from("Ablation: graph-propagation rounds (DESIGN.md).\n");
    out.push_str("  rounds | final loss | valid-skeleton rate of 20 samples\n");
    for rounds in [0usize, 1, 2] {
        let mut generator = GraphGenerator::new(GeneratorConfig {
            hidden: 16,
            prop_rounds: rounds,
            epochs: cfg.generator_epochs.max(4),
            seed: cfg.seed,
            ..GeneratorConfig::default()
        });
        let losses = generator.train(&examples);
        let prefix = TypedGraph::conditioning_prefix(&vocab);
        let valid = (0..20)
            .filter(|i| {
                let g = generator.generate_top_k(&vec![0.1; 48], &prefix, 1, 1.0, cfg.seed + i);
                g.first()
                    .and_then(|c| kgpip::decode_skeleton(&c.graph.decode(&vocab), Task::Binary))
                    .is_some()
            })
            .count();
        let _ = writeln!(
            out,
            "  {rounds}      | {:10.3} | {valid}/20",
            losses.last().copied().unwrap_or(f32::NAN)
        );
    }
    out
}

/// DESIGN.md ablation: conditioning on the neighbour's *content* embedding
/// vs a zero embedding. Measures how often the top-1 predicted estimator
/// belongs to the dataset's true winning family.
pub fn conditioning_ablation(cfg: &ExperimentConfig, limit: usize) -> String {
    let model = build_model(cfg);
    let caps = AutoSklearn::new(0).capabilities();
    let entries: Vec<_> = benchmark().iter().take(limit.max(4)).collect();
    let preferred = |name: &str| -> Vec<&'static str> {
        match shape_of(domain_of(name)) {
            DataShape::Boost => vec!["xgboost", "gradient_boost", "lgbm"],
            DataShape::Linear => vec![
                "logistic_regression",
                "ridge",
                "linear_svm",
                "lasso",
                "linear_regression",
            ],
            DataShape::Neighbor => vec!["knn", "random_forest", "extra_trees"],
        }
    };
    let mut content_hits = 0usize;
    let mut zero_hits = 0usize;
    for entry in &entries {
        let ds = generate_dataset(entry, &cfg.scale, cfg.seed.wrapping_add(entry.id as u64));
        let (content, _) = model
            .predict_skeletons(&ds, 3, &caps, cfg.seed)
            .expect("trained catalog is non-empty and k > 0");
        let zero = model
            .predict_with_embedding(&vec![0.0; 48], ds.task, 3, &caps, cfg.seed)
            .expect("k > 0");
        let prefs = preferred(entry.name);
        if content
            .first()
            .is_some_and(|(s, _)| prefs.contains(&s.estimator.name()))
        {
            content_hits += 1;
        }
        if zero
            .first()
            .is_some_and(|(s, _)| prefs.contains(&s.estimator.name()))
        {
            zero_hits += 1;
        }
    }
    let n = entries.len();
    format!(
        "Ablation: dataset-node conditioning (DESIGN.md).\n\
         | top-1 estimator in the dataset's winning family |\n\
         |   content embedding: {content_hits}/{n}  |  zero embedding: {zero_hits}/{n} |\n\
         Shape check: content conditioning should match or beat zero conditioning.\n"
    )
}

/// Exposes the shape-weight table for the report footer (sanity info).
pub fn shape_weight_summary() -> String {
    let mut out = String::from("Domain-shape learner priors (corpus construction):\n");
    for shape in [DataShape::Boost, DataShape::Linear, DataShape::Neighbor] {
        let w = shape_weights(shape, false);
        let top = kgpip_codegraph::vocab::ESTIMATOR_NAMES
            .iter()
            .zip(&w)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(n, _)| *n)
            .unwrap_or("-");
        let _ = writeln!(out, "  {shape:?}: dominant learner {top}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_encoding_builds_consistent_vocab() {
        let scripts = generate_corpus(
            &[DatasetProfile::new("enc_test", false)],
            &CorpusConfig {
                scripts_per_dataset: 3,
                unsupported_fraction: 0.0,
                ..CorpusConfig::default()
            },
        );
        let graphs: Vec<CodeGraph> = scripts
            .iter()
            .map(|s| analyze(&s.source).unwrap())
            .collect();
        let (vocab, typed) = encode_raw_graphs(&graphs);
        assert_eq!(vocab[0], "<dataset>");
        for (g, t) in graphs.iter().zip(&typed) {
            assert_eq!(t.types.len(), g.num_nodes() + 1);
            for &ty in &t.types {
                assert!(ty < vocab.len());
            }
            for &(f, to) in &t.edges {
                assert!(f < to, "edges must be forward");
            }
        }
        // Shared vocabulary across graphs: read_csv label interned once.
        let read_count = vocab.iter().filter(|l| *l == "pandas.read_csv").count();
        assert_eq!(read_count, 1);
    }

    #[test]
    fn decode_raw_graph_requires_estimator() {
        let vocab = vec![
            "<dataset>".to_string(),
            "pandas.read_csv".to_string(),
            "xgboost.XGBClassifier".to_string(),
            "<loc>".to_string(),
        ];
        let valid = TypedGraph {
            types: vec![0, 1, 2],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(decode_raw_graph(&valid, &vocab, Task::Binary).is_some());
        let invalid = TypedGraph {
            types: vec![0, 1, 3],
            edges: vec![(0, 1)],
        };
        assert!(decode_raw_graph(&invalid, &vocab, Task::Binary).is_none());
    }

    #[test]
    fn shape_weight_summary_names_dominants() {
        let s = shape_weight_summary();
        assert!(s.contains("xgboost"));
        assert!(s.contains("knn"));
    }
}
