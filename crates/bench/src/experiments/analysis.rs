//! Prediction-quality analyses: Figure 7 (K sweep), Figure 8 (learner
//! positions), Figure 10 (embedding t-SNE), the §4.5.2 MRR, and the
//! §4.5.3 diversity study.

use super::{select_entries, Sweep};
use crate::runner::{build_model, evaluate, ExperimentConfig, SystemKind};
use crate::stats;
use kgpip::Kgpip;
use kgpip_benchdata::generate::{domain_of, synthesize, SynthSpec, NUM_DOMAINS};
use kgpip_benchdata::{generate_dataset, CatalogEntry};
use kgpip_embeddings::table_embedding;
use kgpip_embeddings::tsne::{tsne, TsneConfig};
use kgpip_hpo::{AutoSklearn, Flaml, Optimizer, TimeBudget};
use kgpip_learners::EstimatorKind;
use kgpip_tabular::train_test_split;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Runs one KGpip variant with an explicit K on one dataset; returns the
/// test score.
fn run_kgpip_k(
    model: &Kgpip,
    entry: &CatalogEntry,
    cfg: &ExperimentConfig,
    k: usize,
    flaml_backend: bool,
    run_idx: usize,
) -> Option<f64> {
    let data_seed = cfg.seed.wrapping_add(entry.id as u64 * 1000);
    let run_seed = cfg
        .seed
        .wrapping_add(run_idx as u64 * 7919 + entry.id as u64);
    let ds = generate_dataset(entry, &cfg.scale, data_seed);
    let (train, test) = train_test_split(&ds, 0.3, data_seed).ok()?;
    let budget = TimeBudget::seconds(cfg.budget_secs).with_trial_cap(cfg.trials_per_system);
    let run = if flaml_backend {
        let mut backend = Flaml::new(run_seed);
        model.run_k(&train, &mut backend, budget, k).ok()?
    } else {
        let mut backend = AutoSklearn::new(run_seed);
        model.run_k(&train, &mut backend, budget, k).ok()?
    };
    run.best()
        .refit_score(&train, &test)
        .ok()
        .map(|s| s.max(0.0))
}

/// Figure 7: performance of both KGpip variants as K varies over
/// {3, 5, 7}, with paired t-tests against the cold baselines.
pub fn fig7(cfg: &ExperimentConfig, limit: Option<usize>) -> String {
    let entries = select_entries(limit);
    let model = build_model(cfg);
    // Cold baselines once.
    let baselines = evaluate(cfg, &[SystemKind::Flaml, SystemKind::AutoSklearn], &entries);
    let flaml_scores = baselines[0].scores_or_zero();
    let ask_scores = baselines[1].scores_or_zero();

    let mut out = String::from("Figure 7. KGpip performance vs number of predicted graphs K.\n");
    let _ = writeln!(
        out,
        "Baselines: FLAML mean {:.3}, AutoSklearn mean {:.3}",
        stats::mean(&flaml_scores),
        stats::mean(&ask_scores)
    );
    for k in [3usize, 5, 7] {
        for (label, flaml_backend, base) in [
            ("KGpipFLAML", true, &flaml_scores),
            ("KGpipAutoSklearn", false, &ask_scores),
        ] {
            let scores: Vec<f64> = entries
                .par_iter()
                .map(|e| run_kgpip_k(&model, e, cfg, k, flaml_backend, 0).unwrap_or(0.0))
                .collect();
            let (_, p) = stats::paired_t_test(&scores, base);
            let _ = writeln!(
                out,
                "  K = {k}: {label:17} mean {:.3} (baseline {:.3}), paired-t p = {p:.4}",
                stats::mean(&scores),
                stats::mean(base)
            );
        }
    }
    out.push_str(
        "Paper reference: t-test vs FLAML = 0.06 (K=3), 0.03 (K=5), 0.01 (K=7); \
         vs Auto-Sklearn similar-or-better but insignificant.\n",
    );
    out
}

/// Figure 8: learners selected at the first position, at all positions,
/// and in the winning (top) pipeline — from the main sweep's KGpip runs.
pub fn fig8(sweep: &Sweep) -> String {
    let mut first: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut all: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut top: BTreeMap<&'static str, usize> = BTreeMap::new();
    for sys in &sweep.systems {
        if !sys.system.needs_model() {
            continue;
        }
        for d in &sys.datasets {
            for run in &d.runs {
                let Some(kg) = &run.kgpip else { continue };
                if let Some(first_est) = kg.estimators.first() {
                    *first.entry(first_est.name()).or_insert(0) += 1;
                }
                for e in &kg.estimators {
                    *all.entry(e.name()).or_insert(0) += 1;
                }
                *top.entry(kg.top_estimator.name()).or_insert(0) += 1;
            }
        }
    }
    let fmt = |title: &str, map: &BTreeMap<&'static str, usize>| {
        let mut pairs: Vec<(&&str, &usize)> = map.iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(a.1));
        let mut s = format!("  {title}:\n");
        for (name, count) in pairs {
            let _ = writeln!(s, "    {name:20} {count}");
        }
        s
    };
    let mut out = String::from("Figure 8. Learners selected by KGpip.\n");
    out.push_str(&fmt("First position", &first));
    out.push_str(&fmt("All positions", &all));
    out.push_str(&fmt("Top (winning) pipeline", &top));
    // Shape check: boosting families dominate the first position.
    let boost_first: usize = ["xgboost", "gradient_boost", "lgbm"]
        .iter()
        .map(|n| first.get(n).copied().unwrap_or(0))
        .sum();
    let total_first: usize = first.values().sum();
    let _ = writeln!(
        out,
        "Shape check: boosting first-position share {:.0}% (paper: \"dominated by xgboost and gradient_boost\").",
        100.0 * boost_first as f64 / total_first.max(1) as f64
    );
    out
}

/// §4.5.2: mean reciprocal rank of the winning pipeline in the generator's
/// ranked list (paper: 0.71).
pub fn mrr_report(sweep: &Sweep) -> String {
    let mut ranks = Vec::new();
    for sys in &sweep.systems {
        if !sys.system.needs_model() {
            continue;
        }
        for d in &sys.datasets {
            for run in &d.runs {
                if let Some(kg) = &run.kgpip {
                    ranks.push(kg.best_rank);
                }
            }
        }
    }
    let value = stats::mrr(&ranks);
    format!(
        "MRR of the best pipeline's rank across {} KGpip runs: {value:.3} (paper: 0.71)\n",
        ranks.len()
    )
}

/// §4.5.3: diversity of predicted pipelines across runs on the *same*
/// dataset (paper: cross-run correlations 0.60–0.64, i.e. diverse but not
/// random).
pub fn diversity(cfg: &ExperimentConfig, limit: Option<usize>) -> String {
    let entries = select_entries(limit.or(Some(6)));
    let model = build_model(cfg);
    let caps = Flaml::new(0).capabilities();
    let mut correlations = Vec::new();
    for entry in &entries {
        let data_seed = cfg.seed.wrapping_add(entry.id as u64 * 1000);
        let ds = generate_dataset(entry, &cfg.scale, data_seed);
        // Three prediction runs with different sampling seeds.
        let lists: Vec<Vec<f64>> = (0..3)
            .map(|run| {
                let (sk, _) = model
                    .predict_skeletons(&ds, 5, &caps, cfg.seed + 100 + run)
                    .expect("trained catalog is non-empty and k > 0");
                sk.iter()
                    .map(|(s, _)| {
                        EstimatorKind::ALL
                            .iter()
                            .position(|k| *k == s.estimator)
                            .unwrap() as f64
                    })
                    .collect()
            })
            .collect();
        for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let n = lists[i].len().min(lists[j].len());
            if n >= 3 {
                correlations.push(stats::spearman(&lists[i][..n], &lists[j][..n]));
            }
        }
    }
    let mut out = String::from("§4.5.3 Diversity in predicted pipelines across runs.\n");
    if correlations.is_empty() {
        out.push_str("  (not enough predictions for correlations)\n");
        return out;
    }
    let lo = correlations.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = correlations
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(
        out,
        "  {} cross-run correlations, mean {:.2}, range {:.2}..{:.2} (paper: 0.60–0.64)",
        correlations.len(),
        stats::mean(&correlations),
        lo,
        hi
    );
    out.push_str(
        "  Shape check: correlations are neither ~1 (deterministic) nor ~0 (random) — \
         the generator explores while staying dataset-aware.\n",
    );
    out
}

/// Figure 10: t-SNE of dataset embeddings for 38 domain-tagged tables;
/// same-domain tables must cluster.
pub fn fig10(seed: u64) -> String {
    // 38 Kaggle-style datasets spread over the domains.
    let mut specs = Vec::new();
    let mut domains = Vec::new();
    let mut i = 0usize;
    while specs.len() < 38 {
        let name = format!("kaggle_{i}");
        let domain = domain_of(&name);
        specs.push(SynthSpec {
            name,
            rows: 150,
            num: 4 + domain % 3,
            cat: usize::from(domain.is_multiple_of(2)),
            text: usize::from(domain % 4 == 3),
            classes: 2,
            ceiling: 0.9,
            missing: 0.0,
        });
        domains.push(domain);
        i += 1;
    }
    let embeddings: Vec<Vec<f64>> = specs
        .iter()
        .enumerate()
        .map(|(j, spec)| {
            let ds = synthesize(spec, seed.wrapping_add(j as u64));
            table_embedding(&ds.features)
        })
        .collect();
    let layout = tsne(&embeddings, &TsneConfig::default());

    let mut out = String::from(
        "Figure 10. t-SNE of dataset embeddings (38 synthetic Kaggle-domain tables).\n",
    );
    out.push_str("  name         domain   x        y\n");
    for ((spec, &domain), (x, y)) in specs.iter().zip(&domains).zip(&layout) {
        let _ = writeln!(out, "  {:12} {:6}   {x:8.2} {y:8.2}", spec.name, domain);
    }
    // Quantify clustering: within- vs between-domain distance ratio.
    let dist = |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
    let mut within = Vec::new();
    let mut between = Vec::new();
    for a in 0..layout.len() {
        for b in a + 1..layout.len() {
            if domains[a] == domains[b] {
                within.push(dist(layout[a], layout[b]));
            } else {
                between.push(dist(layout[a], layout[b]));
            }
        }
    }
    let ratio = stats::mean(&between) / stats::mean(&within).max(1e-9);
    let _ = writeln!(
        out,
        "  Cluster separation (mean between-domain / within-domain distance): {ratio:.2} \
         (> 1 means same-domain tables cluster, as in the paper's figure). {NUM_DOMAINS} domains."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_clusters_by_domain() {
        let report = fig10(0);
        // Parse the separation ratio back out of the report.
        let line = report
            .lines()
            .find(|l| l.contains("Cluster separation"))
            .unwrap();
        let ratio: f64 = line
            .split("distance): ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(ratio > 1.2, "domains should separate, ratio = {ratio}");
    }

    #[test]
    fn diversity_runs_on_quick_config() {
        let cfg = ExperimentConfig::quick();
        let report = diversity(&cfg, Some(2));
        assert!(report.contains("Diversity"));
    }
}
