//! The per-table / per-figure experiment implementations.

pub mod ablation;
pub mod analysis;

use crate::runner::{evaluate, ExperimentConfig, SystemKind, SystemResults};
use crate::stats;
use kgpip_benchdata::{benchmark, table1_counts, CatalogEntry, Source, TaskKind};
use std::fmt::Write as _;

/// The shared main sweep: the four Figure-5 systems over a benchmark
/// subset. Tables 2/5 and Figures 5/8 plus the MRR and diversity analyses
/// all read from this.
pub struct Sweep {
    /// Results per system, in [`SystemKind::MAIN`] order.
    pub systems: Vec<SystemResults>,
    /// The catalog entries the sweep ran on.
    pub entries: Vec<&'static CatalogEntry>,
}

/// Selects a benchmark subset: every dataset when `limit` is `None`,
/// otherwise an even spread of `limit` datasets covering all three tasks.
pub fn select_entries(limit: Option<usize>) -> Vec<&'static CatalogEntry> {
    let all: Vec<&CatalogEntry> = benchmark().iter().collect();
    let Some(limit) = limit else { return all };
    if limit >= all.len() {
        return all;
    }
    // Round-robin over tasks for an even mix.
    let mut by_task: Vec<Vec<&CatalogEntry>> = vec![Vec::new(); 3];
    for e in all {
        let slot = match e.task {
            TaskKind::Binary => 0,
            TaskKind::MultiClass => 1,
            TaskKind::Regression => 2,
        };
        by_task[slot].push(e);
    }
    let mut out = Vec::with_capacity(limit);
    let mut i = 0;
    while out.len() < limit {
        let bucket = &by_task[i % 3];
        let idx = i / 3;
        if idx < bucket.len() {
            out.push(bucket[idx]);
        }
        i += 1;
        if i > 300 {
            break;
        }
    }
    out
}

/// Runs the main four-system sweep.
pub fn run_main_sweep(cfg: &ExperimentConfig, limit: Option<usize>) -> Sweep {
    let entries = select_entries(limit);
    let systems = evaluate(cfg, &SystemKind::MAIN, &entries);
    Sweep { systems, entries }
}

// ---------------------------------------------------------------------------
// Table 1 / Table 4 — catalog reproductions
// ---------------------------------------------------------------------------

/// Table 1: benchmark composition by task and source.
pub fn table1() -> String {
    let counts = table1_counts();
    let get = |t: TaskKind, s: Source| {
        counts
            .iter()
            .find(|((ct, cs), _)| *ct == t && *cs == s)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    let mut out = String::from("Table 1. Benchmark statistics (datasets per task and source)\n");
    out.push_str("Task         | AutoML | PMLB | OpenML | Kaggle | Total\n");
    let mut col_totals = [0usize; 4];
    for (label, task) in [
        ("Binary     ", TaskKind::Binary),
        ("Multi-class", TaskKind::MultiClass),
        ("Regression ", TaskKind::Regression),
    ] {
        let row = [
            get(task, Source::AutoMl),
            get(task, Source::Pmlb),
            get(task, Source::OpenMl),
            get(task, Source::Kaggle),
        ];
        for (t, r) in col_totals.iter_mut().zip(row) {
            *t += r;
        }
        let total: usize = row.iter().sum();
        let _ = writeln!(
            out,
            "{label}  | {:6} | {:4} | {:6} | {:6} | {total:5}",
            row[0], row[1], row[2], row[3]
        );
    }
    let _ = writeln!(
        out,
        "Total        | {:6} | {:4} | {:6} | {:6} | {:5}",
        col_totals[0],
        col_totals[1],
        col_totals[2],
        col_totals[3],
        col_totals.iter().sum::<usize>()
    );
    out
}

/// Table 4: the full dataset inventory.
pub fn table4() -> String {
    let mut out = String::from(
        "Table 4. Dataset statistics (as synthesized; original schema from the paper)\n",
    );
    out.push_str("id  name                                     rows      cols   num   cat  text  classes  source  papers\n");
    for e in benchmark() {
        let papers = match (e.used_by_flaml, e.used_by_al) {
            (true, true) => "FLAML, AL",
            (true, false) => "FLAML",
            (false, true) => "AL",
            (false, false) => "-",
        };
        let _ = writeln!(
            out,
            "{:3} {:40} {:9} {:6} {:5} {:5} {:5} {:8} {:7} {}",
            e.id,
            e.name,
            e.rows,
            e.cols,
            e.num,
            e.cat,
            e.text,
            e.classes,
            e.source.to_string(),
            papers
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 5 / Table 5 — per-dataset scores of the four systems
// ---------------------------------------------------------------------------

/// Figure 5 / Table 5: per-dataset measured scores for the four systems,
/// next to the paper's reference numbers.
pub fn table5(sweep: &Sweep) -> String {
    let mut out = String::from(
        "Table 5 / Figure 5 series. Measured (this reproduction) vs paper reference.\n",
    );
    out.push_str(
        "dataset                                  task         FLAML  KG+FL   ASK  KG+ASK |  paper: FLAML KG+FL  ASK KG+ASK\n",
    );
    for (i, entry) in sweep.entries.iter().enumerate() {
        let measured: Vec<String> = sweep
            .systems
            .iter()
            .map(|sys| {
                sys.datasets[i]
                    .mean_score()
                    .map(|s| format!("{s:5.2}"))
                    .unwrap_or_else(|| " fail".to_string())
            })
            .collect();
        let _ = writeln!(
            out,
            "{:40} {:12} {} {} {} {} |        {:5.2} {:5.2} {:5.2} {:5.2}",
            entry.name,
            entry.task.to_string(),
            measured[0],
            measured[1],
            measured[2],
            measured[3],
            entry.paper.flaml,
            entry.paper.kgpip_flaml,
            entry.paper.autosklearn,
            entry.paper.kgpip_autosklearn,
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Table 2 — task-level averages + paired t-tests
// ---------------------------------------------------------------------------

/// Table 2: mean (sd) per task for the four systems plus the two paired
/// t-tests (paper: KGpipFLAML vs FLAML p = 0.0129; KGpipAutoSklearn vs
/// Auto-Sklearn p = 0.0002).
pub fn table2(sweep: &Sweep) -> String {
    let mut out = String::from("Table 2. Average performance: mean (sd) per task.\n");
    out.push_str("System            | Binary        | Multi-class   | Regression    | t-test p (KGpip vs base)\n");
    let flaml = &sweep.systems[0];
    let kg_flaml = &sweep.systems[1];
    let ask = &sweep.systems[2];
    let kg_ask = &sweep.systems[3];
    let (_, p_flaml) = stats::paired_t_test(&kg_flaml.scores_or_zero(), &flaml.scores_or_zero());
    let (_, p_ask) = stats::paired_t_test(&kg_ask.scores_or_zero(), &ask.scores_or_zero());
    for (sys, p) in [
        (flaml, None),
        (kg_flaml, Some(p_flaml)),
        (ask, None),
        (kg_ask, Some(p_ask)),
    ] {
        let cell = |task| {
            let (m, s) = sys.task_summary(task);
            format!("{m:.2} ({s:.2})")
        };
        let _ = writeln!(
            out,
            "{:17} | {:13} | {:13} | {:13} | {}",
            sys.system.name(),
            cell(TaskKind::Binary),
            cell(TaskKind::MultiClass),
            cell(TaskKind::Regression),
            p.map(|p| format!("{p:.4}")).unwrap_or_else(|| "-".into()),
        );
    }
    let kg_f_mean = stats::mean(&kg_flaml.scores_or_zero());
    let f_mean = stats::mean(&flaml.scores_or_zero());
    let kg_a_mean = stats::mean(&kg_ask.scores_or_zero());
    let a_mean = stats::mean(&ask.scores_or_zero());
    let _ = writeln!(
        out,
        "\nOverall means: FLAML {f_mean:.3} -> KGpipFLAML {kg_f_mean:.3} (Δ {:+.3}); \
         AutoSklearn {a_mean:.3} -> KGpipAutoSklearn {kg_a_mean:.3} (Δ {:+.3})",
        kg_f_mean - f_mean,
        kg_a_mean - a_mean
    );
    let _ = writeln!(
        out,
        "Paper reference: KGpip vs FLAML p = 0.0129; KGpip vs Auto-Sklearn p = 0.0002 (both < 0.05)."
    );
    out
}

// ---------------------------------------------------------------------------
// Figure 6 — comparison including AL on the AL-working subset
// ---------------------------------------------------------------------------

/// Figure 6: all five systems on the AL-evaluation datasets; AL fails on
/// part of them, and the report is restricted to where it worked —
/// exactly the paper's protocol.
pub fn fig6(cfg: &ExperimentConfig, limit: Option<usize>) -> String {
    let mut entries: Vec<&CatalogEntry> = benchmark().iter().filter(|e| e.used_by_al).collect();
    if let Some(limit) = limit {
        entries.truncate(limit);
    }
    let systems = [
        SystemKind::Flaml,
        SystemKind::KgpipFlaml,
        SystemKind::AutoSklearn,
        SystemKind::KgpipAutoSklearn,
        SystemKind::Al,
    ];
    let results = evaluate(cfg, &systems, &entries);
    let al = &results[4];
    let worked: Vec<usize> = (0..entries.len())
        .filter(|&i| al.datasets[i].mean_score().is_some())
        .collect();
    let mut out = String::from("Figure 6. Systems on the AL benchmark subset.\n");
    let _ = writeln!(
        out,
        "AL attempted {} datasets, worked on {} ({} hard failures — paper: \"it failed on many of the datasets\").",
        entries.len(),
        worked.len(),
        entries.len() - worked.len()
    );
    out.push_str("\nMean score on the datasets where AL worked:\n");
    for sys in &results {
        let scores: Vec<f64> = worked
            .iter()
            .map(|&i| sys.datasets[i].mean_score().unwrap_or(0.0))
            .collect();
        let _ = writeln!(
            out,
            "  {:17} {:.3}",
            sys.system.name(),
            stats::mean(&scores)
        );
    }
    // The paper's headline: AL is the weakest; KGpip variants lead.
    let al_mean = stats::mean(
        &worked
            .iter()
            .map(|&i| al.datasets[i].mean_score().unwrap_or(0.0))
            .collect::<Vec<_>>(),
    );
    let kg_mean = stats::mean(
        &worked
            .iter()
            .map(|&i| results[1].datasets[i].mean_score().unwrap_or(0.0))
            .collect::<Vec<_>>(),
    );
    let _ = writeln!(
        out,
        "\nShape check: KGpipFLAML ({kg_mean:.3}) vs AL ({al_mean:.3}) — paper reports 0.79 vs 0.36."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_report_matches_paper_totals() {
        let t = table1();
        assert!(t.contains("39"), "AutoML total present:\n{t}");
        assert!(
            t.ends_with("77\n") || t.contains("    77"),
            "grand total 77:\n{t}"
        );
    }

    #[test]
    fn table4_lists_all_datasets() {
        let t = table4();
        assert_eq!(t.lines().count(), 2 + 77);
        assert!(t.contains("titanic"));
        assert!(t.contains("FLAML, AL"));
    }

    #[test]
    fn select_entries_mixes_tasks() {
        let sel = select_entries(Some(6));
        assert_eq!(sel.len(), 6);
        let tasks: std::collections::HashSet<_> =
            sel.iter().map(|e| format!("{:?}", e.task)).collect();
        assert_eq!(tasks.len(), 3, "all three tasks in a small selection");
        assert_eq!(select_entries(None).len(), 77);
    }

    #[test]
    fn small_sweep_produces_reports() {
        let cfg = ExperimentConfig::quick();
        let sweep = run_main_sweep(&cfg, Some(3));
        let t5 = table5(&sweep);
        assert_eq!(t5.lines().count(), 2 + 3);
        let t2 = table2(&sweep);
        assert!(t2.contains("KGpipFLAML"));
        assert!(t2.contains("t-test"));
    }
}
