//! Experiment harness regenerating every table and figure of the KGpip
//! paper, plus the ablations called out in DESIGN.md.
//!
//! Each experiment is a function returning a printable report, so the
//! `experiments` binary, the Criterion benches, and integration tests all
//! share one implementation. Absolute numbers are not expected to match
//! the paper (the substrate is synthetic, budgets are scaled down); the
//! *shape* — who wins, by roughly what factor, where crossovers fall — is
//! what each report asserts and records (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The harness measures wall-clock cost by design; xlint scopes this
// crate to the seeding/guard rules for the same reason.
#![allow(clippy::disallowed_methods)]

pub mod experiments;
pub mod runner;
pub mod stats;

pub use runner::{build_model, evaluate, ExperimentConfig, SystemKind, SystemResults};
