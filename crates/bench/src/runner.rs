//! Shared experiment machinery: model building, per-dataset system runs,
//! and benchmark sweeps.

use kgpip::{Kgpip, KgpipConfig};
use kgpip_benchdata::{generate_dataset, training_setup, CatalogEntry, ScaleConfig, TaskKind};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig};
use kgpip_graphgen::GeneratorConfig;
use kgpip_hpo::{Al, AutoSklearn, Flaml, Optimizer, TimeBudget};
use kgpip_learners::EstimatorKind;
use kgpip_tabular::train_test_split;
use rayon::prelude::*;

/// Knobs shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// End-to-end budget per dataset per system, in seconds (the paper
    /// uses 1 h / 30 min; scaled down per DESIGN.md).
    pub budget_secs: f64,
    /// Trial cap per dataset per system. On the authors' testbed a 1-hour
    /// budget buys tens-to-hundreds of trials; our cheap synthetic trials
    /// would otherwise saturate every system (see `kgpip_hpo::budget`).
    pub trials_per_system: usize,
    /// Runs to average (the paper reports averages over 3 runs).
    pub runs: usize,
    /// Number of predicted pipeline graphs K (Figure 7 sweeps 3/5/7).
    pub top_k: usize,
    /// Dataset synthesis scaling.
    pub scale: ScaleConfig,
    /// Training datasets per content domain.
    pub per_domain: usize,
    /// Mined scripts per training dataset.
    pub scripts_per_dataset: usize,
    /// Graph-generator training epochs.
    pub generator_epochs: usize,
    /// Worker threads for KGpip's skeleton searches and trial evaluation
    /// (1 = the sequential engines of the original evaluation).
    pub parallelism: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            budget_secs: 5.0,
            trials_per_system: 40,
            runs: 1,
            top_k: 3,
            scale: ScaleConfig::default(),
            per_domain: 3,
            scripts_per_dataset: 12,
            generator_epochs: 20,
            parallelism: 1,
            seed: 0,
        }
    }
}

impl ExperimentConfig {
    /// A very small configuration for smoke tests.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            // Generous wall clock so debug builds and loaded CI machines
            // never hit it; the trial cap is what keeps smoke tests fast.
            budget_secs: 10.0,
            trials_per_system: 15,
            scale: ScaleConfig {
                max_rows: 150,
                max_cols: 8,
            },
            per_domain: 1,
            scripts_per_dataset: 6,
            generator_epochs: 3,
            ..ExperimentConfig::default()
        }
    }
}

/// Builds and trains the KGpip model for the configured corpus.
pub fn build_model(cfg: &ExperimentConfig) -> Kgpip {
    let setup = training_setup(cfg.per_domain, &cfg.scale, cfg.seed);
    let scripts = generate_corpus(
        &setup.profiles,
        &CorpusConfig {
            scripts_per_dataset: cfg.scripts_per_dataset,
            unsupported_fraction: 0.25,
            seed: cfg.seed,
            ..CorpusConfig::default()
        },
    );
    Kgpip::train(
        &scripts,
        &setup.tables,
        KgpipConfig::default()
            .with_k(cfg.top_k)
            .with_seed(cfg.seed)
            .with_parallelism(cfg.parallelism)
            .with_generator(GeneratorConfig {
                epochs: cfg.generator_epochs,
                hidden: 24,
                prop_rounds: 2,
                seed: cfg.seed,
                ..GeneratorConfig::default()
            }),
    )
    .expect("synthetic corpus always yields valid pipelines")
}

/// The five systems under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Standalone FLAML-style engine (cold start).
    Flaml,
    /// KGpip driving the FLAML-style engine.
    KgpipFlaml,
    /// Standalone Auto-Sklearn-style engine.
    AutoSklearn,
    /// KGpip driving the Auto-Sklearn-style engine.
    KgpipAutoSklearn,
    /// The AL replay baseline.
    Al,
}

impl SystemKind {
    /// The four systems of Figure 5 / Tables 2 and 5.
    pub const MAIN: [SystemKind; 4] = [
        SystemKind::Flaml,
        SystemKind::KgpipFlaml,
        SystemKind::AutoSklearn,
        SystemKind::KgpipAutoSklearn,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Flaml => "FLAML",
            SystemKind::KgpipFlaml => "KGpipFLAML",
            SystemKind::AutoSklearn => "AutoSklearn",
            SystemKind::KgpipAutoSklearn => "KGpipAutoSklearn",
            SystemKind::Al => "AL",
        }
    }

    /// Whether this system needs a trained KGpip model.
    pub fn needs_model(&self) -> bool {
        matches!(self, SystemKind::KgpipFlaml | SystemKind::KgpipAutoSklearn)
    }
}

/// Details of a KGpip run kept for the ablation analyses.
#[derive(Debug, Clone)]
pub struct KgpipRunSummary {
    /// 1-based rank of the winning skeleton in generation order (§4.5.2).
    pub best_rank: usize,
    /// Estimators of the predicted skeletons in generation order (Fig. 8,
    /// §4.5.3).
    pub estimators: Vec<EstimatorKind>,
    /// The winning skeleton's estimator.
    pub top_estimator: EstimatorKind,
    /// Nearest-neighbour training dataset used for conditioning.
    pub neighbour: String,
    /// Generation + validation time `t` in seconds.
    pub generation_secs: f64,
}

/// The outcome of one system run on one dataset.
#[derive(Debug, Clone)]
pub struct DatasetRun {
    /// Catalog dataset name.
    pub dataset: String,
    /// Task kind.
    pub task: TaskKind,
    /// Test-set score (macro-F1 / R², clamped at 0 as in the paper's
    /// radar plot); `None` when the system failed outright (AL).
    pub score: Option<f64>,
    /// KGpip-specific details.
    pub kgpip: Option<KgpipRunSummary>,
}

/// Runs one system on one catalog dataset for one seeded run.
pub fn run_on_dataset(
    system: SystemKind,
    model: Option<&Kgpip>,
    entry: &CatalogEntry,
    cfg: &ExperimentConfig,
    run_idx: usize,
) -> DatasetRun {
    let data_seed = cfg.seed.wrapping_add(entry.id as u64 * 1000);
    let run_seed = cfg
        .seed
        .wrapping_add(run_idx as u64 * 7919 + entry.id as u64);
    let ds = generate_dataset(entry, &cfg.scale, data_seed);
    let (train, test) =
        train_test_split(&ds, 0.3, data_seed).expect("generated datasets have >= 60 rows");
    let budget = TimeBudget::seconds(cfg.budget_secs).with_trial_cap(cfg.trials_per_system);

    let mut kgpip_summary = None;
    let score = match system {
        SystemKind::Flaml => {
            let mut engine = Flaml::new(run_seed);
            engine
                .optimize(&train, &budget)
                .ok()
                .and_then(|r| r.refit_score(&train, &test).ok())
        }
        SystemKind::AutoSklearn => {
            let mut engine = AutoSklearn::new(run_seed);
            engine
                .optimize(&train, &budget)
                .ok()
                .and_then(|r| r.refit_score(&train, &test).ok())
        }
        SystemKind::Al => {
            let mut engine = Al::new(run_seed);
            engine
                .optimize(&train, &budget)
                .ok()
                .and_then(|r| r.refit_score(&train, &test).ok())
        }
        SystemKind::KgpipFlaml | SystemKind::KgpipAutoSklearn => {
            let model = model.expect("KGpip systems require a trained model");
            let outcome = if system == SystemKind::KgpipFlaml {
                let mut engine = Flaml::new(run_seed);
                model.run(&train, &mut engine, budget)
            } else {
                let mut engine = AutoSklearn::new(run_seed);
                model.run(&train, &mut engine, budget)
            };
            outcome.ok().and_then(|run| {
                kgpip_summary = Some(KgpipRunSummary {
                    best_rank: run.best_index + 1,
                    estimators: run.predicted_estimators(),
                    top_estimator: run.results[run.best_index].skeleton.estimator,
                    neighbour: run.neighbour.clone(),
                    generation_secs: run.generation_time.as_secs_f64(),
                });
                run.best().refit_score(&train, &test).ok()
            })
        }
    };
    DatasetRun {
        dataset: entry.name.to_string(),
        task: entry.task,
        // Negative R² clamps to 0, as in the paper's plots/averages.
        score: score.map(|s| s.max(0.0)),
        kgpip: kgpip_summary,
    }
}

/// Per-dataset aggregation over runs.
#[derive(Debug, Clone)]
pub struct DatasetResult {
    /// Dataset name.
    pub dataset: String,
    /// Task kind.
    pub task: TaskKind,
    /// One entry per run.
    pub runs: Vec<DatasetRun>,
}

impl DatasetResult {
    /// Mean score over successful runs (`None` when all runs failed).
    pub fn mean_score(&self) -> Option<f64> {
        let scores: Vec<f64> = self.runs.iter().filter_map(|r| r.score).collect();
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f64>() / scores.len() as f64)
        }
    }
}

/// All results of one system over a benchmark subset.
#[derive(Debug, Clone)]
pub struct SystemResults {
    /// Which system.
    pub system: SystemKind,
    /// Per-dataset aggregates, in catalog order.
    pub datasets: Vec<DatasetResult>,
}

impl SystemResults {
    /// Mean scores per dataset (failed datasets become 0.0, matching the
    /// paper's treatment of AL failures in its averages over the AL
    /// subset).
    pub fn scores_or_zero(&self) -> Vec<f64> {
        self.datasets
            .iter()
            .map(|d| d.mean_score().unwrap_or(0.0))
            .collect()
    }

    /// Mean (and population sd) of scores over datasets of one task.
    pub fn task_summary(&self, task: TaskKind) -> (f64, f64) {
        let scores: Vec<f64> = self
            .datasets
            .iter()
            .filter(|d| d.task == task)
            .map(|d| d.mean_score().unwrap_or(0.0))
            .collect();
        (crate::stats::mean(&scores), crate::stats::std_dev(&scores))
    }
}

/// Runs a set of systems over a benchmark subset, parallelized over
/// datasets. The KGpip model is trained once and shared.
pub fn evaluate(
    cfg: &ExperimentConfig,
    systems: &[SystemKind],
    entries: &[&CatalogEntry],
) -> Vec<SystemResults> {
    let model = if systems.iter().any(SystemKind::needs_model) {
        Some(build_model(cfg))
    } else {
        None
    };
    systems
        .iter()
        .map(|&system| {
            let datasets: Vec<DatasetResult> = entries
                .par_iter()
                .map(|entry| {
                    let runs: Vec<DatasetRun> = (0..cfg.runs)
                        .map(|r| run_on_dataset(system, model.as_ref(), entry, cfg, r))
                        .collect();
                    DatasetResult {
                        dataset: entry.name.to_string(),
                        task: entry.task,
                        runs,
                    }
                })
                .collect();
            SystemResults { system, datasets }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_benchdata::benchmark;

    #[test]
    fn quick_run_of_all_main_systems_on_one_dataset() {
        let cfg = ExperimentConfig::quick();
        let entry = &benchmark()[9]; // breast_cancer_wisconsin: small, clean
        let model = build_model(&cfg);
        for system in SystemKind::MAIN {
            let run = run_on_dataset(system, Some(&model), entry, &cfg, 0);
            let score = run.score.expect("main systems always produce a score");
            assert!(
                score > 0.5,
                "{}: score {score} on an easy dataset",
                system.name()
            );
            assert_eq!(run.kgpip.is_some(), system.needs_model());
        }
    }

    #[test]
    fn al_can_fail_cleanly() {
        let cfg = ExperimentConfig::quick();
        // A text dataset AL must refuse.
        let entry = benchmark()
            .iter()
            .find(|e| e.name == "spooky-author-identification")
            .unwrap();
        let run = run_on_dataset(SystemKind::Al, None, entry, &cfg, 0);
        assert_eq!(run.score, None);
    }

    #[test]
    fn evaluate_produces_full_grid() {
        let cfg = ExperimentConfig::quick();
        let entries: Vec<&CatalogEntry> = benchmark().iter().take(2).collect();
        let results = evaluate(&cfg, &[SystemKind::Flaml], &entries);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].datasets.len(), 2);
        assert_eq!(results[0].scores_or_zero().len(), 2);
    }
}
