//! Statistics for the evaluation: paired t-tests (Table 2, Figure 7),
//! mean reciprocal rank (§4.5.2), and rank correlations (§4.5.3).

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Two-tailed paired t-test. Returns `(t statistic, p value)`; the paper
/// reports the p-values (Table 2: 0.0129 and 0.0002 for KGpip vs FLAML and
/// vs Auto-Sklearn).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "paired test needs equal lengths");
    let n = a.len();
    if n < 2 {
        return (0.0, 1.0);
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let d_mean = mean(&diffs);
    let d_var = diffs.iter().map(|d| (d - d_mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    if d_var <= 1e-300 {
        return if d_mean.abs() < 1e-12 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY * d_mean.signum(), 0.0)
        };
    }
    let t = d_mean / (d_var / n as f64).sqrt();
    let df = (n - 1) as f64;
    let p = 2.0 * student_t_sf(t.abs(), df);
    (t, p.clamp(0.0, 1.0))
}

/// Survival function of Student's t distribution: `P(T > t)` for t ≥ 0,
/// via the regularized incomplete beta function.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    0.5 * incomplete_beta(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes `betai`).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos log-gamma.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Mean reciprocal rank from 1-based ranks.
pub fn mrr(ranks: &[usize]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().map(|&r| 1.0 / r.max(1) as f64).sum::<f64>() / ranks.len() as f64
}

/// Pearson correlation of two equal-length sequences.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    if va <= 1e-300 || vb <= 1e-300 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman rank correlation (Pearson over ranks, mean ranks for ties).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    pearson(&ranks_of(a), &ranks_of(b))
}

fn ranks_of(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn t_sf_matches_reference_values() {
        // t = 2.0, df = 10: one-sided p ≈ 0.03669.
        assert!((student_t_sf(2.0, 10.0) - 0.03669).abs() < 1e-4);
        // t = 1.0, df = 1 (Cauchy): P(T > 1) = 0.25.
        assert!((student_t_sf(1.0, 1.0) - 0.25).abs() < 1e-6);
        // t = 0: exactly 0.5.
        assert!((student_t_sf(0.0, 5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paired_t_detects_consistent_improvement() {
        let a: Vec<f64> = (0..20).map(|i| 0.8 + (i % 5) as f64 * 0.01).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.05).collect();
        let (t, p) = paired_t_test(&a, &b);
        assert!(t > 10.0);
        assert!(p < 0.001, "p = {p}");
        // Identical samples: p = 1.
        let (t0, p0) = paired_t_test(&a, &a);
        assert_eq!(t0, 0.0);
        assert_eq!(p0, 1.0);
    }

    #[test]
    fn paired_t_is_insignificant_for_noise() {
        let a: Vec<f64> = (0..30)
            .map(|i| 0.5 + ((i * 7919) % 100) as f64 * 0.001)
            .collect();
        let b: Vec<f64> = (0..30)
            .map(|i| 0.5 + ((i * 104729) % 100) as f64 * 0.001)
            .collect();
        let (_, p) = paired_t_test(&a, &b);
        assert!(p > 0.05, "p = {p}");
    }

    #[test]
    fn mrr_values() {
        assert!((mrr(&[1, 1, 1]) - 1.0).abs() < 1e-12);
        assert!((mrr(&[1, 2]) - 0.75).abs() < 1e-12);
        assert_eq!(mrr(&[]), 0.0);
    }

    #[test]
    fn correlations() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let up = vec![2.0, 4.0, 6.0, 8.0];
        let down = vec![8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down) + 1.0).abs() < 1e-12);
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-12);
        // Monotone nonlinear: Spearman 1, Pearson < 1.
        let exp: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        assert!((spearman(&a, &exp) - 1.0).abs() < 1e-12);
        assert!(pearson(&a, &exp) < 1.0);
        // Constant input: correlation 0 by convention.
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = vec![1.0, 1.0, 2.0, 3.0];
        let b = vec![1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_bounds() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x.
        assert!((incomplete_beta(1.0, 1.0, 0.3) - 0.3).abs() < 1e-10);
    }
}
