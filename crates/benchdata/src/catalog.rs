//! The benchmark inventory: Table 4 (dataset statistics) merged with
//! Table 5 (per-system reference scores).
//!
//! Reference scores were transcribed from the paper text; they calibrate
//! synthetic-dataset difficulty and are printed as the "paper" columns in
//! EXPERIMENTS.md. A handful of cells were ambiguous in the source
//! rendering; those use the closest defensible reading.

/// Origin portal of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Open AutoML Benchmark (Gijsbers et al. 2019).
    AutoMl,
    /// Penn Machine Learning Benchmark.
    Pmlb,
    /// OpenML.
    OpenMl,
    /// Kaggle.
    Kaggle,
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::AutoMl => write!(f, "AutoML"),
            Source::Pmlb => write!(f, "PMLB"),
            Source::OpenMl => write!(f, "OpenML"),
            Source::Kaggle => write!(f, "Kaggle"),
        }
    }
}

/// Task kind per Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Binary classification.
    Binary,
    /// Multi-class classification.
    MultiClass,
    /// Regression.
    Regression,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Binary => write!(f, "binary"),
            TaskKind::MultiClass => write!(f, "multi-class"),
            TaskKind::Regression => write!(f, "regression"),
        }
    }
}

/// Table-5 reference scores for the four systems (F1 or R²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperScores {
    /// Standalone FLAML.
    pub flaml: f64,
    /// KGpip + FLAML.
    pub kgpip_flaml: f64,
    /// Standalone Auto-Sklearn.
    pub autosklearn: f64,
    /// KGpip + Auto-Sklearn.
    pub kgpip_autosklearn: f64,
}

impl PaperScores {
    /// The best of the four reference scores — the achievable ceiling used
    /// for difficulty calibration.
    pub fn best(&self) -> f64 {
        self.flaml
            .max(self.kgpip_flaml)
            .max(self.autosklearn)
            .max(self.kgpip_autosklearn)
    }
}

/// One Table-4 row plus its Table-5 scores.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// Row number in Table 4.
    pub id: u32,
    /// Dataset name.
    pub name: &'static str,
    /// Row count.
    pub rows: u32,
    /// Column count (features).
    pub cols: u32,
    /// Numerical columns.
    pub num: u32,
    /// Categorical columns.
    pub cat: u32,
    /// Textual columns.
    pub text: u32,
    /// Classes (0 for regression).
    pub classes: u32,
    /// Size in MB as reported.
    pub size_mb: f32,
    /// Origin portal.
    pub source: Source,
    /// Used in FLAML's evaluation (Table 4 "Paper" column).
    pub used_by_flaml: bool,
    /// Used in AL's evaluation.
    pub used_by_al: bool,
    /// Task kind.
    pub task: TaskKind,
    /// Reference scores from Table 5.
    pub paper: PaperScores,
}

macro_rules! entry {
    ($id:expr, $name:expr, $rows:expr, $cols:expr, $num:expr, $cat:expr, $text:expr,
     $classes:expr, $size:expr, $source:ident, $flaml:expr, $al:expr, $task:ident,
     $s1:expr, $s2:expr, $s3:expr, $s4:expr) => {
        CatalogEntry {
            id: $id,
            name: $name,
            rows: $rows,
            cols: $cols,
            num: $num,
            cat: $cat,
            text: $text,
            classes: $classes,
            size_mb: $size,
            source: Source::$source,
            used_by_flaml: $flaml,
            used_by_al: $al,
            task: TaskKind::$task,
            paper: PaperScores {
                flaml: $s1,
                kgpip_flaml: $s2,
                autosklearn: $s3,
                kgpip_autosklearn: $s4,
            },
        }
    };
}

/// The full 77-dataset benchmark (Tables 4 and 5).
pub fn benchmark() -> &'static [CatalogEntry] {
    static CATALOG: [CatalogEntry; 77] = [
        entry!(
            1, "pc4", 1458, 37, 37, 0, 0, 2, 0.2, OpenMl, false, true, Binary, 0.76, 0.74, 0.74,
            0.83
        ),
        entry!(
            2,
            "MagicTelescope",
            19020,
            11,
            11,
            0,
            0,
            2,
            1.5,
            OpenMl,
            false,
            true,
            Binary,
            0.00,
            1.00,
            1.00,
            1.00
        ),
        entry!(
            3,
            "OVA_Breast",
            1545,
            10936,
            10936,
            0,
            0,
            2,
            103.3,
            OpenMl,
            false,
            true,
            Binary,
            0.93,
            0.96,
            0.97,
            0.96
        ),
        entry!(
            4, "kropt", 28056, 6, 3, 3, 0, 18, 0.5, OpenMl, false, true, MultiClass, 0.90, 0.90,
            0.85, 0.87
        ),
        entry!(
            5, "sick", 3772, 29, 7, 22, 0, 2, 0.3, OpenMl, false, true, Binary, 0.62, 0.93, 0.89,
            0.87
        ),
        entry!(
            6, "splice", 3190, 61, 0, 61, 0, 3, 0.4, OpenMl, false, true, MultiClass, 0.95, 0.95,
            0.96, 0.97
        ),
        entry!(
            7,
            "mnist_784",
            70000,
            784,
            784,
            0,
            0,
            10,
            122.0,
            OpenMl,
            false,
            true,
            MultiClass,
            0.98,
            0.98,
            0.98,
            0.95
        ),
        entry!(
            8, "quake", 2178, 3, 3, 0, 0, 2, 0.0, OpenMl, false, true, Binary, 0.51, 0.53, 0.49,
            0.54
        ),
        entry!(
            9,
            "fri_c1_1000_25",
            1000,
            25,
            25,
            0,
            0,
            2,
            0.2,
            OpenMl,
            false,
            true,
            Binary,
            0.88,
            0.92,
            0.60,
            0.93
        ),
        entry!(
            10,
            "breast_cancer_wisconsin",
            569,
            30,
            30,
            0,
            0,
            2,
            0.1,
            Pmlb,
            false,
            true,
            Binary,
            0.98,
            0.99,
            0.99,
            0.99
        ),
        entry!(
            11,
            "car_evaluation",
            1728,
            21,
            21,
            0,
            0,
            4,
            0.1,
            Pmlb,
            false,
            true,
            MultiClass,
            0.99,
            1.00,
            0.66,
            1.00
        ),
        entry!(
            12,
            "detecting-insults-in-social-commentary",
            3947,
            2,
            0,
            1,
            1,
            2,
            0.8,
            Kaggle,
            false,
            true,
            Binary,
            0.58,
            0.76,
            0.43,
            0.82
        ),
        entry!(
            13, "glass", 205, 9, 9, 0, 0, 5, 0.0, Pmlb, false, true, MultiClass, 0.58, 0.46, 0.60,
            0.67
        ),
        entry!(
            14,
            "Hill_Valley_with_noise",
            1212,
            100,
            100,
            0,
            0,
            2,
            0.8,
            Pmlb,
            false,
            true,
            Binary,
            0.38,
            0.40,
            1.00,
            1.00
        ),
        entry!(
            15,
            "Hill_Valley_without_noise",
            1212,
            100,
            100,
            0,
            0,
            2,
            1.5,
            Pmlb,
            false,
            true,
            Binary,
            0.73,
            0.73,
            1.00,
            1.00
        ),
        entry!(
            16,
            "ionosphere",
            351,
            34,
            34,
            0,
            0,
            2,
            0.1,
            Pmlb,
            false,
            true,
            Binary,
            0.94,
            0.93,
            0.94,
            0.94
        ),
        entry!(
            17,
            "sentiment-analysis-on-movie-reviews",
            156060,
            3,
            2,
            0,
            1,
            5,
            8.1,
            Kaggle,
            false,
            true,
            MultiClass,
            0.45,
            0.49,
            0.43,
            0.43
        ),
        entry!(
            18, "spambase", 4601, 57, 57, 0, 0, 2, 1.1, Pmlb, false, true, Binary, 0.96, 0.96,
            0.97, 0.97
        ),
        entry!(
            19,
            "spooky-author-identification",
            19579,
            2,
            0,
            1,
            1,
            3,
            3.1,
            Kaggle,
            false,
            true,
            MultiClass,
            0.00,
            0.72,
            0.19,
            0.72
        ),
        entry!(
            20, "titanic", 891, 11, 6, 4, 1, 2, 0.1, Kaggle, false, true, Binary, 0.80, 0.80, 0.55,
            0.84
        ),
        entry!(
            21,
            "wine_quality_red",
            1599,
            11,
            11,
            0,
            0,
            6,
            0.1,
            Pmlb,
            false,
            true,
            MultiClass,
            0.33,
            0.35,
            0.30,
            0.34
        ),
        entry!(
            22,
            "wine_quality_white",
            4898,
            11,
            11,
            0,
            0,
            7,
            0.3,
            Pmlb,
            false,
            true,
            MultiClass,
            0.40,
            0.40,
            0.36,
            0.41
        ),
        entry!(
            23,
            "housing-prices",
            1460,
            80,
            37,
            43,
            0,
            0,
            0.4,
            Kaggle,
            false,
            true,
            Regression,
            0.87,
            0.89,
            0.86,
            0.89
        ),
        entry!(
            24,
            "mercedes-benz-greener-manufacturing",
            4209,
            377,
            369,
            8,
            0,
            0,
            3.1,
            Kaggle,
            false,
            true,
            Regression,
            0.59,
            0.65,
            0.59,
            0.65
        ),
        entry!(
            25, "adult", 48842, 14, 6, 8, 0, 2, 5.7, AutoMl, true, true, Binary, 0.81, 0.81, 0.54,
            0.82
        ),
        entry!(
            26, "airlines", 539383, 7, 4, 3, 0, 2, 18.3, AutoMl, true, false, Binary, 0.66, 0.66,
            0.66, 0.66
        ),
        entry!(
            27, "albert", 425240, 78, 78, 0, 0, 2, 155.4, AutoMl, true, false, Binary, 0.66, 0.69,
            0.33, 0.69
        ),
        entry!(
            28,
            "Amazon_employee_access",
            32769,
            9,
            9,
            0,
            0,
            2,
            1.9,
            AutoMl,
            true,
            false,
            Binary,
            0.74,
            0.74,
            0.73,
            0.76
        ),
        entry!(
            29,
            "APSFailure",
            76000,
            170,
            170,
            0,
            0,
            2,
            74.8,
            AutoMl,
            true,
            false,
            Binary,
            0.72,
            0.92,
            0.88,
            0.92
        ),
        entry!(
            30,
            "Australian",
            690,
            14,
            14,
            0,
            0,
            2,
            0.0,
            AutoMl,
            true,
            false,
            Binary,
            0.86,
            0.87,
            0.85,
            0.85
        ),
        entry!(
            31,
            "bank-marketing",
            45211,
            16,
            7,
            9,
            0,
            2,
            3.5,
            AutoMl,
            true,
            false,
            Binary,
            0.76,
            0.75,
            0.78,
            0.79
        ),
        entry!(
            32,
            "blood-transfusion-service-center",
            748,
            4,
            4,
            0,
            0,
            2,
            0.0,
            AutoMl,
            true,
            false,
            Binary,
            0.64,
            0.67,
            0.64,
            0.65
        ),
        entry!(
            33,
            "christine",
            5418,
            1636,
            1636,
            0,
            0,
            2,
            31.4,
            AutoMl,
            true,
            false,
            Binary,
            0.73,
            0.74,
            0.75,
            0.74
        ),
        entry!(
            34, "credit-g", 1000, 20, 7, 13, 0, 2, 0.1, AutoMl, true, false, Binary, 0.72, 0.70,
            0.74, 0.78
        ),
        entry!(
            35,
            "guillermo",
            20000,
            4296,
            4296,
            0,
            0,
            2,
            424.5,
            AutoMl,
            true,
            false,
            Binary,
            0.82,
            0.82,
            0.83,
            0.71
        ),
        entry!(
            36, "higgs", 98050, 28, 28, 0, 0, 2, 43.3, AutoMl, true, false, Binary, 0.00, 0.73,
            0.32, 0.73
        ),
        entry!(
            37, "jasmine", 2984, 144, 144, 0, 0, 2, 1.7, AutoMl, true, false, Binary, 0.80, 0.81,
            0.81, 0.81
        ),
        entry!(
            38, "kc1", 2109, 21, 21, 0, 0, 2, 0.1, AutoMl, true, false, Binary, 0.66, 0.69, 0.70,
            0.72
        ),
        entry!(
            39,
            "KDDCup09_appetency",
            50000,
            230,
            192,
            38,
            0,
            2,
            32.8,
            AutoMl,
            true,
            false,
            Binary,
            0.52,
            0.53,
            0.57,
            0.57
        ),
        entry!(
            40, "kr-vs-kp", 3196, 36, 0, 36, 0, 2, 0.5, AutoMl, true, false, Binary, 0.99, 1.00,
            0.99, 1.00
        ),
        entry!(
            41,
            "MiniBooNE",
            130064,
            50,
            50,
            0,
            0,
            2,
            69.4,
            AutoMl,
            true,
            false,
            Binary,
            0.94,
            0.94,
            0.94,
            0.94
        ),
        entry!(
            42, "nomao", 34465, 118, 118, 0, 0, 2, 19.3, AutoMl, true, false, Binary, 0.97, 0.96,
            0.96, 0.96
        ),
        entry!(
            43,
            "numerai28.6",
            96320,
            21,
            21,
            0,
            0,
            2,
            34.9,
            AutoMl,
            true,
            false,
            Binary,
            0.52,
            0.52,
            0.52,
            0.52
        ),
        entry!(
            44, "phoneme", 5404, 5, 5, 0, 0, 2, 0.3, AutoMl, true, false, Binary, 0.90, 0.91, 0.89,
            0.91
        ),
        entry!(
            45, "riccardo", 20000, 4296, 4296, 0, 0, 2, 414.0, AutoMl, true, false, Binary, 1.00,
            0.99, 0.99, 0.99
        ),
        entry!(
            46, "sylvine", 5124, 20, 20, 0, 0, 2, 0.4, AutoMl, true, false, Binary, 0.95, 0.94,
            0.63, 0.94
        ),
        entry!(
            47, "car", 1728, 6, 0, 6, 0, 4, 0.1, AutoMl, true, false, MultiClass, 0.26, 0.97, 0.65,
            1.00
        ),
        entry!(
            48, "cnae-9", 1080, 856, 856, 0, 0, 9, 1.8, AutoMl, true, false, MultiClass, 0.96,
            0.94, 0.93, 0.95
        ),
        entry!(
            49,
            "connect-4",
            67557,
            42,
            42,
            0,
            0,
            3,
            5.5,
            AutoMl,
            true,
            false,
            MultiClass,
            0.74,
            0.73,
            0.72,
            0.73
        ),
        entry!(
            50,
            "covertype",
            581012,
            54,
            54,
            0,
            0,
            7,
            71.7,
            AutoMl,
            true,
            true,
            MultiClass,
            0.94,
            0.94,
            0.30,
            0.85
        ),
        entry!(
            51, "dilbert", 10000, 2000, 2000, 0, 0, 5, 176.0, AutoMl, true, false, MultiClass,
            0.99, 0.99, 0.99, 0.99
        ),
        entry!(
            52, "dionis", 416188, 60, 60, 0, 0, 355, 110.1, AutoMl, true, false, MultiClass, 0.88,
            0.90, 0.00, 0.00
        ),
        entry!(
            53, "fabert", 8237, 800, 800, 0, 0, 7, 13.0, AutoMl, true, false, MultiClass, 0.70,
            0.71, 0.70, 0.69
        ),
        entry!(
            54,
            "Fashion-MNIST",
            70000,
            784,
            784,
            0,
            0,
            10,
            148.0,
            AutoMl,
            true,
            false,
            MultiClass,
            0.91,
            0.90,
            0.60,
            0.86
        ),
        entry!(
            55, "helena", 65196, 27, 27, 0, 0, 100, 14.6, AutoMl, true, false, MultiClass, 0.23,
            0.23, 0.24, 0.18
        ),
        entry!(
            56, "jannis", 83733, 54, 54, 0, 0, 4, 36.7, AutoMl, true, false, MultiClass, 0.56,
            0.57, 0.60, 0.60
        ),
        entry!(
            57,
            "jungle_chess_2pcs_raw_endgame_complete",
            44819,
            6,
            6,
            0,
            0,
            3,
            0.6,
            AutoMl,
            true,
            false,
            MultiClass,
            0.83,
            0.80,
            0.87,
            0.87
        ),
        entry!(
            58,
            "mfeat-factors",
            2000,
            216,
            216,
            0,
            0,
            10,
            1.4,
            AutoMl,
            true,
            false,
            MultiClass,
            0.97,
            0.98,
            0.98,
            0.99
        ),
        entry!(
            59, "robert", 10000, 7200, 7200, 0, 0, 10, 268.1, AutoMl, true, false, MultiClass,
            0.35, 0.40, 0.49, 0.45
        ),
        entry!(
            60, "segment", 2310, 19, 19, 0, 0, 7, 0.3, AutoMl, true, false, MultiClass, 0.98, 0.98,
            0.98, 0.99
        ),
        entry!(
            61, "shuttle", 58000, 9, 9, 0, 0, 7, 1.5, AutoMl, true, false, MultiClass, 0.99, 0.98,
            0.96, 0.99
        ),
        entry!(
            62, "vehicle", 846, 18, 18, 0, 0, 4, 0.1, AutoMl, true, false, MultiClass, 0.78, 0.79,
            0.82, 0.81
        ),
        entry!(
            63, "volkert", 58310, 180, 180, 0, 0, 10, 65.1, AutoMl, true, false, MultiClass, 0.66,
            0.67, 0.68, 0.64
        ),
        entry!(
            64, "2dplanes", 40768, 10, 10, 0, 0, 0, 2.4, Pmlb, true, false, Regression, 0.95, 0.95,
            0.95, 0.95
        ),
        entry!(
            65,
            "bng_breastTumor",
            116640,
            9,
            9,
            0,
            0,
            0,
            6.0,
            Pmlb,
            true,
            false,
            Regression,
            0.18,
            0.19,
            0.18,
            0.19
        ),
        entry!(
            66,
            "bng_echomonths",
            17496,
            9,
            9,
            0,
            0,
            0,
            2.3,
            Pmlb,
            true,
            false,
            Regression,
            0.47,
            0.45,
            0.46,
            0.46
        ),
        entry!(
            67,
            "bng_lowbwt",
            31104,
            9,
            9,
            0,
            0,
            0,
            2.4,
            Pmlb,
            true,
            false,
            Regression,
            0.62,
            0.62,
            0.61,
            0.62
        ),
        entry!(
            68, "bng_pbc", 1000000, 18, 18, 0, 0, 0, 220.8, Pmlb, true, false, Regression, 0.46,
            0.45, 0.45, 0.41
        ),
        entry!(
            69,
            "bng_pharynx",
            1000000,
            10,
            10,
            0,
            0,
            0,
            68.6,
            Pmlb,
            true,
            false,
            Regression,
            0.51,
            0.52,
            0.51,
            0.52
        ),
        entry!(
            70,
            "bng_pwLinear",
            177147,
            10,
            10,
            0,
            0,
            0,
            10.6,
            Pmlb,
            true,
            false,
            Regression,
            0.62,
            0.62,
            0.62,
            0.62
        ),
        entry!(
            71, "fried", 40768, 10, 10, 0, 0, 0, 8.1, Pmlb, true, false, Regression, 0.96, 0.95,
            0.96, 0.96
        ),
        entry!(
            72,
            "house_16H",
            22784,
            16,
            16,
            0,
            0,
            0,
            5.8,
            Pmlb,
            true,
            false,
            Regression,
            0.70,
            0.71,
            0.70,
            0.71
        ),
        entry!(
            73, "house_8L", 22784, 8, 8, 0, 0, 0, 2.8, Pmlb, true, false, Regression, 0.71, 0.71,
            0.72, 0.72
        ),
        entry!(
            74, "houses", 20640, 8, 8, 0, 0, 0, 1.8, Pmlb, true, false, Regression, 0.86, 0.86,
            0.85, 0.86
        ),
        entry!(
            75, "mv", 40768, 11, 11, 0, 0, 0, 5.9, Pmlb, true, false, Regression, 0.00, 1.00, 1.00,
            1.00
        ),
        entry!(
            76, "poker", 1025010, 10, 10, 0, 0, 0, 23.0, Pmlb, true, false, Regression, 0.92, 0.87,
            0.93, 0.90
        ),
        entry!(
            77, "pol", 15000, 48, 48, 0, 0, 0, 3.0, Pmlb, true, false, Regression, 0.99, 0.99,
            0.99, 0.99
        ),
    ];
    &CATALOG
}

/// Table-1 style counts: `(task, source) → dataset count`.
pub fn table1_counts() -> Vec<((TaskKind, Source), usize)> {
    let mut counts: std::collections::BTreeMap<(u8, u8), usize> = Default::default();
    let t_id = |t: TaskKind| match t {
        TaskKind::Binary => 0u8,
        TaskKind::MultiClass => 1,
        TaskKind::Regression => 2,
    };
    let s_id = |s: Source| match s {
        Source::AutoMl => 0u8,
        Source::Pmlb => 1,
        Source::OpenMl => 2,
        Source::Kaggle => 3,
    };
    for e in benchmark() {
        *counts.entry((t_id(e.task), s_id(e.source))).or_insert(0) += 1;
    }
    let t_back = [TaskKind::Binary, TaskKind::MultiClass, TaskKind::Regression];
    let s_back = [Source::AutoMl, Source::Pmlb, Source::OpenMl, Source::Kaggle];
    counts
        .into_iter()
        .map(|((t, s), c)| ((t_back[t as usize], s_back[s as usize]), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_77_unique_entries() {
        let c = benchmark();
        assert_eq!(c.len(), 77);
        let mut names: Vec<&str> = c.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 77);
        for (i, e) in c.iter().enumerate() {
            assert_eq!(e.id as usize, i + 1, "ids are sequential");
        }
    }

    #[test]
    fn schema_arithmetic_is_consistent() {
        for e in benchmark() {
            assert_eq!(
                e.num + e.cat + e.text,
                e.cols,
                "{}: column kinds must sum to cols",
                e.name
            );
            match e.task {
                TaskKind::Regression => assert_eq!(e.classes, 0, "{}", e.name),
                TaskKind::Binary => assert_eq!(e.classes, 2, "{}", e.name),
                TaskKind::MultiClass => assert!(e.classes >= 3, "{}", e.name),
            }
        }
    }

    #[test]
    fn table1_composition_matches_the_paper() {
        // Table 1 totals: AutoML 39, PMLB 23, OpenML 9, Kaggle 6.
        let per_source = |s: Source| benchmark().iter().filter(|e| e.source == s).count();
        assert_eq!(per_source(Source::AutoMl), 39);
        assert_eq!(per_source(Source::Pmlb), 23);
        assert_eq!(per_source(Source::OpenMl), 9);
        assert_eq!(per_source(Source::Kaggle), 6);
        // Regression datasets: 14 PMLB + 2 Kaggle = 16.
        let regressions = benchmark()
            .iter()
            .filter(|e| e.task == TaskKind::Regression)
            .count();
        assert_eq!(regressions, 16);
        // table1_counts covers every dataset exactly once.
        let total: usize = table1_counts().iter().map(|(_, c)| *c).sum();
        assert_eq!(total, 77);
    }

    #[test]
    fn paper_scores_are_probabilities() {
        for e in benchmark() {
            for s in [
                e.paper.flaml,
                e.paper.kgpip_flaml,
                e.paper.autosklearn,
                e.paper.kgpip_autosklearn,
            ] {
                assert!((0.0..=1.0).contains(&s), "{}: {s}", e.name);
            }
            assert!(e.paper.best() >= e.paper.flaml);
        }
    }

    #[test]
    fn al_and_flaml_usage_flags() {
        let al_count = benchmark().iter().filter(|e| e.used_by_al).count();
        // AL's evaluation: 6 Kaggle + 9 PMLB + 9 OpenML + 2 AutoML = 26.
        assert_eq!(al_count, 26);
        let flaml_count = benchmark().iter().filter(|e| e.used_by_flaml).count();
        assert_eq!(flaml_count, 53, "39 AutoML + 14 PMLB regression");
    }
}
