//! Seeded synthetic embedding catalogs and the recall@K harness.
//!
//! The similarity-index tiers in `kgpip-embeddings` (exact / IVF / HNSW)
//! are benchmarked on catalogs far larger than any training corpus this
//! repo synthesizes — 100K to 1M table embeddings. [`synthetic_embeddings`]
//! mass-produces those catalogs as a clustered Gaussian mixture: unit-norm
//! cluster centers with Gaussian jitter, L2-normalized like real
//! `table_embedding` output, fully determined by `(n, dim, clusters,
//! seed)`. Clustered data is the adversarial case for approximate search
//! (flat random vectors make every method look good), which is why the
//! mixture — not uniform noise — is the house benchmark input.
//!
//! [`recall_at_k`] scores an approximate tier against the exact scan:
//! the fraction of the exact top-K names the approximate top-K retrieved.
//! Both the criterion benches and the gated recall tests consume these
//! two helpers so no harness hand-rolls vectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates `n` L2-normalized `dim`-dimensional embeddings drawn from a
/// `clusters`-component Gaussian mixture, deterministically from `seed`.
/// Vectors cycle through the clusters (`i % clusters`), so every prefix
/// of the output covers all components — truncating a 1M catalog to 100K
/// keeps the same geometry.
pub fn synthetic_embeddings(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f64>> {
    let clusters = clusters.max(1);
    let dim = dim.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| normalize((0..dim).map(|_| gaussian(&mut rng)).collect()))
        .collect();
    (0..n)
        .map(|i| {
            let center = &centers[i % clusters];
            normalize(
                center
                    .iter()
                    .map(|x| x + 0.15 * gaussian(&mut rng))
                    .collect(),
            )
        })
        .collect()
}

/// Recall@K of an approximate result list against the exact one: the
/// fraction of the exact top-`k` names present in the approximate top-`k`.
/// `k` is capped at the exact list's length; an empty ground truth scores
/// 1.0 (there was nothing to miss).
pub fn recall_at_k(exact: &[(String, f64)], approx: &[(String, f64)], k: usize) -> f64 {
    let k = k.min(exact.len());
    if k == 0 {
        return 1.0;
    }
    let truth: HashSet<&str> = exact.iter().take(k).map(|(n, _)| n.as_str()).collect();
    let found = approx
        .iter()
        .take(k)
        .filter(|(n, _)| truth.contains(n.as_str()))
        .count();
    found as f64 / k as f64
}

fn normalize(v: Vec<f64>) -> Vec<f64> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm < 1e-12 {
        // A zero draw is measure-zero but must not divide by zero; pin it
        // to the first axis so the output is still unit-norm.
        let mut unit = vec![0.0; v.len()];
        if let Some(first) = unit.first_mut() {
            *first = 1.0;
        }
        return unit;
    }
    v.into_iter().map(|x| x / norm).collect()
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box–Muller, as in `generate`.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_deterministic_and_unit_norm() {
        let a = synthetic_embeddings(200, 16, 8, 42);
        let b = synthetic_embeddings(200, 16, 8, 42);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(x), bits(y));
        }
        for v in &a {
            assert_eq!(v.len(), 16);
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        }
        let c = synthetic_embeddings(200, 16, 8, 43);
        assert_ne!(
            a[0].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            c[0].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            "seed changes the catalog"
        );
    }

    #[test]
    fn same_cluster_vectors_are_closer_than_cross_cluster() {
        let vecs = synthetic_embeddings(400, 24, 4, 7);
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        // v[0], v[4], v[8], ... share cluster 0; v[1] is cluster 1.
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut pairs = 0;
        for i in (4..100).step_by(4) {
            same += dot(&vecs[0], &vecs[i]);
            cross += dot(&vecs[1], &vecs[i]);
            pairs += 1;
        }
        assert!(
            same / pairs as f64 > cross / pairs as f64 + 0.2,
            "clusters must be separable: same {same} cross {cross}"
        );
    }

    #[test]
    fn recall_scores_overlap_fraction() {
        let names = |ns: &[&str]| -> Vec<(String, f64)> {
            ns.iter().map(|n| (n.to_string(), 0.0)).collect()
        };
        let exact = names(&["a", "b", "c", "d"]);
        assert_eq!(recall_at_k(&exact, &exact, 4), 1.0);
        let half = names(&["a", "b", "x", "y"]);
        assert_eq!(recall_at_k(&exact, &half, 4), 0.5);
        assert_eq!(recall_at_k(&exact, &names(&[]), 4), 0.0);
        assert_eq!(recall_at_k(&names(&[]), &half, 4), 1.0);
        // k larger than the catalog caps at the exact length.
        assert_eq!(recall_at_k(&exact, &exact, 10), 1.0);
    }
}
