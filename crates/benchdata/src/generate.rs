//! Deterministic synthesis of benchmark-equivalent datasets.
//!
//! Each dataset is generated from three coordinates:
//!
//! * its **schema** (rows/column kinds/classes) from the Table-4 catalog,
//!   scaled down by a [`ScaleConfig`] so the full 77-dataset sweep runs on
//!   one machine,
//! * its **domain** (hash of the name): controls content style — numeric
//!   ranges, categorical vocabularies, text wording — so that
//!   content-based embeddings place same-domain tables close together
//!   (the property behind §3.2 similarity search and Figure 10),
//! * its **shape** (a function of the domain): controls the latent
//!   target function and therefore which learner family wins — boosted
//!   trees on interaction-heavy targets, linear models on diffuse linear
//!   targets, k-NN on prototype/cluster targets.
//!
//! Difficulty is calibrated per dataset from the paper's Table-5 best
//! score: label noise (classification) or additive noise (regression) is
//! set so the achievable score approximates the paper's ceiling.

use crate::catalog::{CatalogEntry, TaskKind};
use kgpip_tabular::{Column, DataFrame, Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of content domains.
pub const NUM_DOMAINS: usize = 8;

/// The latent-target families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataShape {
    /// Threshold interactions — gradient-boosted trees win.
    Boost,
    /// Diffuse linear signal over many features — linear models win.
    Linear,
    /// Prototype/cluster structure — k-NN and forests win.
    Neighbor,
}

/// Scaling knobs for tractable synthesis.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Cap on generated rows.
    pub max_rows: usize,
    /// Cap on generated feature columns.
    pub max_cols: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            max_rows: 600,
            max_cols: 20,
        }
    }
}

/// Stable domain assignment from a dataset name.
pub fn domain_of(name: &str) -> usize {
    (hash64(name) % NUM_DOMAINS as u64) as usize
}

/// The latent shape of a domain.
pub fn shape_of(domain: usize) -> DataShape {
    match domain % 4 {
        0 | 1 => DataShape::Boost,
        2 => DataShape::Linear,
        _ => DataShape::Neighbor,
    }
}

/// Domain content style: numeric offset/scale/skew plus vocabularies.
struct DomainStyle {
    offset: f64,
    scale: f64,
    skew: f64,
    categories: &'static [&'static str],
    words: &'static [&'static str],
}

fn style_of(domain: usize) -> DomainStyle {
    const CATS: [&[&str]; NUM_DOMAINS] = [
        &["north", "south", "east", "west", "central"],
        &["retail", "wholesale", "online", "partner"],
        &["checking", "savings", "credit", "mortgage", "loan"],
        &["sedan", "suv", "truck", "coupe", "van"],
        &["benign", "malignant", "chronic", "acute"],
        &["rock", "jazz", "pop", "classical", "folk"],
        &["spring", "summer", "autumn", "winter"],
        &["bronze", "silver", "gold", "platinum"],
    ];
    const WORDS: [&[&str]; NUM_DOMAINS] = [
        &[
            "revenue", "quarter", "sales", "growth", "forecast", "margin", "pipeline",
        ],
        &[
            "order",
            "shipment",
            "customer",
            "return",
            "warehouse",
            "stock",
            "invoice",
        ],
        &[
            "account", "balance", "interest", "payment", "credit", "transfer", "rate",
        ],
        &[
            "engine",
            "mileage",
            "fuel",
            "torque",
            "transmission",
            "brake",
            "wheel",
        ],
        &[
            "patient",
            "diagnosis",
            "treatment",
            "symptom",
            "dosage",
            "clinical",
            "trial",
        ],
        &[
            "album", "track", "artist", "melody", "rhythm", "concert", "chorus",
        ],
        &[
            "rainfall",
            "temperature",
            "humidity",
            "pressure",
            "wind",
            "storm",
            "front",
        ],
        &[
            "member", "reward", "points", "tier", "upgrade", "renewal", "benefit",
        ],
    ];
    DomainStyle {
        offset: domain as f64 * 37.0,
        scale: 1.0 + domain as f64 * 2.5,
        skew: if domain.is_multiple_of(3) { 1.4 } else { 0.0 },
        categories: CATS[domain],
        words: WORDS[domain],
    }
}

/// Full synthesis parameters (catalog entries map onto this; the training
/// side builds its own).
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Dataset name (also fixes the domain).
    pub name: String,
    /// Rows to generate.
    pub rows: usize,
    /// Numeric feature columns.
    pub num: usize,
    /// Categorical feature columns.
    pub cat: usize,
    /// Text feature columns.
    pub text: usize,
    /// Classes (0 = regression).
    pub classes: usize,
    /// Achievable-score ceiling in [0, 1] for difficulty calibration.
    pub ceiling: f64,
    /// Fraction of missing cells in numeric columns.
    pub missing: f64,
}

impl SynthSpec {
    /// Builds the spec for a catalog entry under a scale config.
    pub fn from_entry(entry: &CatalogEntry, scale: &ScaleConfig) -> SynthSpec {
        let rows = (entry.rows as usize).min(scale.max_rows).max(60);
        let total_cols = (entry.cols as usize).min(scale.max_cols).max(1);
        // Distribute scaled columns proportionally to the original kinds.
        let denom = entry.cols.max(1) as f64;
        let mut num = ((entry.num as f64 / denom) * total_cols as f64).round() as usize;
        let mut cat = ((entry.cat as f64 / denom) * total_cols as f64).round() as usize;
        let text = entry.text.min(2) as usize; // text columns stay small
        if entry.num > 0 {
            num = num.max(1);
        }
        if entry.cat > 0 {
            cat = cat.max(1);
        }
        if num + cat + text == 0 {
            num = 1;
        }
        SynthSpec {
            name: entry.name.to_string(),
            rows,
            num,
            cat,
            text,
            classes: match entry.task {
                TaskKind::Regression => 0,
                // Huge class counts (dionis: 355) scale down; per-class
                // sample counts must stay workable at max_rows.
                _ => (entry.classes as usize).min(8),
            },
            ceiling: entry.paper.best(),
            missing: if entry.name.contains("KDD") || entry.name.contains("housing") {
                0.05
            } else {
                0.0
            },
        }
    }
}

/// Generates a dataset for a catalog entry.
pub fn generate_dataset(entry: &CatalogEntry, scale: &ScaleConfig, seed: u64) -> Dataset {
    synthesize(&SynthSpec::from_entry(entry, scale), seed)
}

/// Core synthesis from a spec. Deterministic per (spec.name, seed).
pub fn synthesize(spec: &SynthSpec, seed: u64) -> Dataset {
    let domain = domain_of(&spec.name);
    let shape = shape_of(domain);
    let style = style_of(domain);
    let mut rng = StdRng::seed_from_u64(seed ^ hash64(&spec.name));
    let n = spec.rows;

    // --- numeric features: domain-styled gaussians ---
    let mut numeric: Vec<Vec<f64>> = Vec::with_capacity(spec.num);
    for c in 0..spec.num {
        let col_scale = style.scale * (1.0 + (c % 5) as f64 * 0.4);
        let col_offset = style.offset + c as f64 * 3.0;
        let column: Vec<f64> = (0..n)
            .map(|_| {
                let g = gaussian(&mut rng);
                let v = if style.skew > 0.0 {
                    (g * 0.6).exp() * style.skew
                } else {
                    g
                };
                col_offset + v * col_scale
            })
            .collect();
        numeric.push(column);
    }

    // --- categorical features from the domain vocabulary ---
    let mut categorical: Vec<Vec<usize>> = Vec::with_capacity(spec.cat);
    for _ in 0..spec.cat {
        let k = style.categories.len();
        // Zipf-ish draw: earlier categories more frequent.
        let column: Vec<usize> = (0..n)
            .map(|_| {
                let u = rng.gen::<f64>();
                ((u * u) * k as f64) as usize % k
            })
            .collect();
        categorical.push(column);
    }

    // --- text: class-bearing sentences from the domain word list ---
    // The latent "topic" of each row (decided later for classification)
    // influences which half of the vocabulary dominates, so hashed text
    // features carry real signal.
    let latent_topic: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2usize)).collect();

    // --- latent target from the shape ---
    // Proper empirical standardization: the shape functions below rely on
    // z-scores with genuine sign variation, which style-parameter
    // normalization cannot guarantee for skewed domains.
    let col_moments: Vec<(f64, f64)> = numeric
        .iter()
        .map(|col| {
            let mean = col.iter().sum::<f64>() / n.max(1) as f64;
            let var = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n.max(1) as f64;
            (mean, var.sqrt().max(1e-9))
        })
        .collect();
    let z = |c: usize, i: usize| -> f64 {
        let (mean, sd) = col_moments[c];
        (numeric[c][i] - mean) / sd
    };
    let latent: Vec<f64> = (0..n)
        .map(|i| {
            let f = |c: usize| -> f64 {
                if numeric.is_empty() {
                    0.0
                } else {
                    z(c % numeric.len(), i)
                }
            };
            let mut y = match shape {
                DataShape::Boost => {
                    // A two-feature threshold interaction (XOR), a smooth
                    // product term, and a small continuous spread — tree-
                    // friendly, hostile to linear models, and learnable
                    // from a few hundred rows. The continuous terms keep
                    // the latent value-rich so many-class quantile binning
                    // stays well defined.
                    let a = f(0) > 0.0;
                    let b = f(1) > 0.3;
                    4.0 * f64::from(a != b)
                        + 1.2 * (f(0) * f(1)).tanh()
                        + 0.6 * f(2 % spec.num.max(1))
                        + 0.3 * f(3 % spec.num.max(1))
                }
                DataShape::Linear => {
                    // Diffuse linear signal across all numeric features.
                    (0..spec.num.max(1))
                        .map(|c| {
                            let w = 1.0 / (1.0 + (c % 7) as f64);
                            let sign = if c % 2 == 0 { 1.0 } else { -1.0 };
                            sign * w * f(c)
                        })
                        .sum::<f64>()
                }
                DataShape::Neighbor => {
                    // Value of the nearest of a handful of prototypes in
                    // the FULL numeric feature space: exactly k-NN's
                    // inductive bias, hostile to linear models, and
                    // expensive for axis-aligned trees (the decision
                    // boundary cuts across every dimension).
                    let dims = spec.num.max(1);
                    let mut best = f64::INFINITY;
                    let mut value = 0.0;
                    for p in 0..5usize {
                        let mut d2 = 0.0;
                        for dim in 0..dims {
                            let h = hash64(&format!("proto:{p}:{dim}"));
                            let coord = (h % 400) as f64 / 100.0 - 2.0;
                            let diff = f(dim) - coord;
                            d2 += diff * diff;
                        }
                        if d2 < best {
                            best = d2;
                            let hv = hash64(&format!("protoval:{p}"));
                            value = (hv % 600) as f64 / 100.0 - 3.0;
                        }
                    }
                    value + 0.3 * f(0)
                }
            };
            // Categorical contribution (encoders matter): each of the
            // first few categorical columns adds a per-category weight, so
            // categorical-only datasets still have a rich latent surface
            // (e.g. `car` with 4 classes over 6 categorical features).
            for (ci, col) in categorical.iter().take(3).enumerate() {
                let code = col[i];
                // Deterministic per-(column, category) weight in [-2, 2].
                let h = hash64(&format!("{}:{ci}:{code}", spec.name));
                y += ((h % 1000) as f64 / 250.0 - 2.0) * (1.0 - 0.25 * ci as f64);
            }
            // Text contribution via the latent topic.
            if spec.text > 0 {
                y += latent_topic[i] as f64 * 3.0 - 1.5;
            }
            y
        })
        .collect();

    // --- target with calibrated noise ---
    let ceiling = spec.ceiling.clamp(0.05, 0.995);
    let (target, task) = if spec.classes == 0 {
        // Regression: R²_max = var(signal) / (var(signal) + var(noise)).
        let mean = latent.iter().sum::<f64>() / n as f64;
        let var = latent.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let noise_var = var * (1.0 / ceiling - 1.0);
        let noise_sd = noise_var.max(0.0).sqrt();
        let y: Vec<f64> = latent
            .iter()
            .map(|v| v + gaussian(&mut rng) * noise_sd)
            .collect();
        (y, Task::Regression)
    } else {
        let k = spec.classes.max(2);
        // Quantile-bin the latent value into k classes, then flip labels
        // with probability 1 − ceiling.
        let mut sorted = latent.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let thresholds: Vec<f64> = (1..k).map(|q| sorted[q * (n - 1) / k]).collect();
        let flip = (1.0 - ceiling).clamp(0.0, 0.9);
        let y: Vec<f64> = latent
            .iter()
            .map(|v| {
                let mut class = thresholds.iter().filter(|t| v > t).count();
                if rng.gen::<f64>() < flip {
                    // Flip to a *different* class so `flip` is exactly the
                    // corruption rate and the ceiling calibration holds.
                    let offset = rng.gen_range(1..k);
                    class = (class + offset) % k;
                }
                class as f64
            })
            .collect();
        (y, Task::classification(k))
    };

    // --- assemble the frame ---
    let mut frame = DataFrame::new();
    for (c, column) in numeric.into_iter().enumerate() {
        let cells: Vec<Option<f64>> = column
            .into_iter()
            .map(|v| {
                if spec.missing > 0.0 && rng.gen::<f64>() < spec.missing {
                    None
                } else {
                    Some(v)
                }
            })
            .collect();
        frame
            .push(format!("n{c}"), Column::numeric(cells))
            .expect("unique generated names");
    }
    for (c, column) in categorical.into_iter().enumerate() {
        let cells: Vec<Option<&str>> = column
            .iter()
            .map(|&code| Some(style.categories[code]))
            .collect();
        frame
            .push(format!("c{c}"), Column::categorical(cells))
            .expect("unique generated names");
    }
    for t in 0..spec.text {
        let cells: Vec<Option<String>> = (0..n)
            .map(|i| {
                let topic = latent_topic[i];
                let half = style.words.len() / 2;
                let pool: Vec<&str> = if topic == 0 {
                    style.words[..half.max(1)].to_vec()
                } else {
                    style.words[half..].to_vec()
                };
                let len = 4 + (i + t) % 4;
                let sentence: Vec<&str> = (0..len)
                    .map(|w| pool[(i * 7 + w * 13) % pool.len()])
                    .collect();
                Some(sentence.join(" "))
            })
            .collect();
        frame
            .push(format!("t{t}"), Column::text(cells))
            .expect("unique generated names");
    }

    Dataset::new(spec.name.clone(), frame, target, task)
        .expect("generated frame and target have equal lengths")
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn hash64(s: &str) -> u64 {
    kgpip_tabular::fnv1a(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::benchmark;
    use kgpip_tabular::ColumnKind;

    #[test]
    fn every_catalog_entry_synthesizes() {
        let scale = ScaleConfig {
            max_rows: 120,
            max_cols: 8,
        };
        for entry in benchmark() {
            let ds = generate_dataset(entry, &scale, 0);
            assert!(ds.num_rows() >= 60, "{}", entry.name);
            assert!(ds.num_features() >= 1, "{}", entry.name);
            match entry.task {
                TaskKind::Regression => assert_eq!(ds.task, Task::Regression),
                TaskKind::Binary => assert_eq!(ds.task, Task::Binary, "{}", entry.name),
                TaskKind::MultiClass => {
                    assert!(ds.task.num_classes() >= 3, "{}", entry.name)
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let entry = &benchmark()[0];
        let a = generate_dataset(entry, &ScaleConfig::default(), 7);
        let b = generate_dataset(entry, &ScaleConfig::default(), 7);
        assert_eq!(a.target, b.target);
        assert_eq!(
            a.features.column_at(0).numeric_values(),
            b.features.column_at(0).numeric_values()
        );
        let c = generate_dataset(entry, &ScaleConfig::default(), 8);
        assert_ne!(a.target, c.target, "different seeds differ");
    }

    #[test]
    fn schema_kinds_follow_the_catalog() {
        // titanic: numeric + categorical + text.
        let titanic = benchmark().iter().find(|e| e.name == "titanic").unwrap();
        let ds = generate_dataset(titanic, &ScaleConfig::default(), 0);
        let (num, cat, text) = ds.features.kind_counts();
        assert!(num >= 1 && cat >= 1 && text >= 1);
        // mnist: all numeric.
        let mnist = benchmark().iter().find(|e| e.name == "mnist_784").unwrap();
        let ds = generate_dataset(mnist, &ScaleConfig::default(), 0);
        let (_, cat, text) = ds.features.kind_counts();
        assert_eq!((cat, text), (0, 0));
        assert!(ds
            .features
            .columns()
            .iter()
            .all(|c| c.kind() == ColumnKind::Numeric));
    }

    #[test]
    fn low_ceiling_datasets_are_noisy() {
        // numerai28.6 has ceiling 0.52: labels should be near-random.
        let numerai = benchmark()
            .iter()
            .find(|e| e.name == "numerai28.6")
            .unwrap();
        let ds = generate_dataset(numerai, &ScaleConfig::default(), 1);
        // kr-vs-kp has ceiling 1.00: labels should be clean.
        let krkp = benchmark().iter().find(|e| e.name == "kr-vs-kp").unwrap();
        let clean = generate_dataset(krkp, &ScaleConfig::default(), 1);
        // Proxy check via a quick decision tree fit.
        use kgpip_learners::pipeline::{Pipeline, PipelineSpec};
        use kgpip_learners::EstimatorKind;
        let fit_score = |ds: &Dataset| {
            let (tr, te) = kgpip_tabular::train_test_split(ds, 0.3, 0).unwrap();
            Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::XgBoost))
                .unwrap()
                .fit_score(&tr, &te)
                .unwrap()
        };
        let noisy_score = fit_score(&ds);
        let clean_score = fit_score(&clean);
        assert!(
            clean_score > noisy_score + 0.2,
            "clean {clean_score} vs noisy {noisy_score}"
        );
    }

    #[test]
    fn same_domain_tables_share_content_style() {
        use kgpip_embeddings::column::cosine;
        use kgpip_embeddings::table_embedding;
        // Two specs in the same domain vs one in a different domain.
        let spec = |name: &str| SynthSpec {
            name: name.to_string(),
            rows: 100,
            num: 4,
            cat: 1,
            text: 0,
            classes: 2,
            ceiling: 0.9,
            missing: 0.0,
        };
        // Find names in matching/differing domains.
        let base = "domain_probe_0";
        let d0 = domain_of(base);
        let mut same = None;
        let mut diff = None;
        for i in 1..200 {
            let cand = format!("domain_probe_{i}");
            if domain_of(&cand) == d0 && same.is_none() {
                same = Some(cand);
            } else if domain_of(&cand) != d0 && diff.is_none() {
                diff = Some(cand);
            }
        }
        let a = synthesize(&spec(base), 0);
        let b = synthesize(&spec(&same.unwrap()), 1);
        let c = synthesize(&spec(&diff.unwrap()), 2);
        let ea = table_embedding(&a.features);
        let eb = table_embedding(&b.features);
        let ec = table_embedding(&c.features);
        assert!(
            cosine(&ea, &eb) > cosine(&ea, &ec),
            "same-domain {} vs cross-domain {}",
            cosine(&ea, &eb),
            cosine(&ea, &ec)
        );
    }

    #[test]
    fn missing_values_appear_when_requested() {
        let kdd = benchmark()
            .iter()
            .find(|e| e.name == "KDDCup09_appetency")
            .unwrap();
        let ds = generate_dataset(kdd, &ScaleConfig::default(), 0);
        assert!(ds.features.missing_cells() > 0);
    }

    #[test]
    fn shapes_partition_domains() {
        let mut seen = std::collections::HashSet::new();
        for d in 0..NUM_DOMAINS {
            seen.insert(format!("{:?}", shape_of(d)));
        }
        assert_eq!(seen.len(), 3, "all three shapes occur across domains");
    }
}
