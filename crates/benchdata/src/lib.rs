//! Synthetic reproduction of the paper's benchmark suite.
//!
//! The paper evaluates on 77 datasets (Table 4: 39 from the Open AutoML
//! Benchmark, 23 from PMLB, 9 from OpenML, 6 from Kaggle) and trains on a
//! separate mined corpus (104 datasets with 2,046 usable notebooks). We do
//! not have those datasets, so this crate synthesizes equivalents per the
//! substitution rule in DESIGN.md:
//!
//! * [`catalog`] — the full Table-4 inventory (name, schema statistics,
//!   source, which papers used it) together with the Table-5 reference
//!   scores, used both to parameterize generation and to print the
//!   paper-vs-measured comparison,
//! * [`generate`] — deterministic dataset synthesis: every dataset belongs
//!   to a *domain* (which controls its content style, so that content
//!   embeddings of same-domain tables land close — the property Figure 10
//!   visualizes) and a *shape* (which controls the latent target function,
//!   and therefore which learner family wins), with per-dataset noise
//!   calibrated from the paper's reference scores,
//! * [`training`] — the training-side setup: domain-matched training
//!   tables plus [`kgpip_codegraph::corpus`] profiles whose learner
//!   distribution reflects each domain's winning family, standing in for
//!   the mined Kaggle corpus,
//! * [`embeddings`] — seeded synthetic embedding catalogs (clustered
//!   Gaussian mixture) and the recall@K harness that scores the
//!   approximate similarity-index tiers against the exact scan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod embeddings;
pub mod generate;
pub mod training;

pub use catalog::{benchmark, table1_counts, CatalogEntry, PaperScores, Source, TaskKind};
pub use embeddings::{recall_at_k, synthetic_embeddings};
pub use generate::{generate_dataset, DataShape, ScaleConfig};
pub use training::{training_setup, TrainingSetup};
