//! The training-side setup: domain-matched training tables and corpus
//! profiles — the stand-in for the paper's mined Kaggle corpus (§4.3:
//! "11.7K scripts associated with 142 datasets ... the selection of 2,046
//! notebooks for 104 datasets").

use crate::generate::{domain_of, shape_of, synthesize, DataShape, ScaleConfig, SynthSpec};
use kgpip_codegraph::corpus::DatasetProfile;
use kgpip_codegraph::vocab::ESTIMATOR_NAMES;
use kgpip_tabular::DataFrame;

/// The training corpus configuration: tables (for content embeddings) and
/// per-dataset profiles (for script generation).
#[derive(Debug, Clone)]
pub struct TrainingSetup {
    /// Per-dataset corpus profiles (feed `kgpip_codegraph::corpus`).
    pub profiles: Vec<DatasetProfile>,
    /// Per-dataset content tables (feed `Kgpip::train` embeddings).
    pub tables: Vec<(String, DataFrame)>,
}

/// Learner preferences of a shape's community: the scripts mined for
/// datasets of this shape are dominated by the family that actually wins
/// there (domain experts converge on what works).
pub fn shape_weights(shape: DataShape, regression: bool) -> Vec<f64> {
    ESTIMATOR_NAMES
        .iter()
        .map(|name| {
            let classification_only =
                matches!(*name, "logistic_regression" | "linear_svm" | "gaussian_nb");
            let regression_only = matches!(*name, "linear_regression" | "ridge" | "lasso");
            if (regression && classification_only) || (!regression && regression_only) {
                return 0.0;
            }
            match shape {
                DataShape::Boost => match *name {
                    "xgboost" => 30.0,
                    "gradient_boost" => 20.0,
                    "lgbm" => 14.0,
                    "random_forest" => 6.0,
                    _ => 1.0,
                },
                DataShape::Linear => match *name {
                    "logistic_regression" | "ridge" => 40.0,
                    "linear_svm" | "lasso" | "linear_regression" => 14.0,
                    "xgboost" | "gradient_boost" => 2.0,
                    _ => 0.5,
                },
                DataShape::Neighbor => match *name {
                    "knn" => 20.0,
                    "random_forest" => 18.0,
                    "extra_trees" => 10.0,
                    "xgboost" | "gradient_boost" => 5.0,
                    _ => 1.0,
                },
            }
        })
        .collect()
}

/// Builds the training setup: `per_domain` datasets for each of the
/// [`crate::generate::NUM_DOMAINS`] domains, half classification and half
/// regression, with shape-matched learner preferences.
pub fn training_setup(per_domain: usize, scale: &ScaleConfig, seed: u64) -> TrainingSetup {
    let mut profiles = Vec::new();
    let mut tables = Vec::new();
    for domain in 0..crate::generate::NUM_DOMAINS {
        for i in 0..per_domain {
            // Choose a name that actually lands in this domain.
            let name = find_name_in_domain(domain, i);
            let regression = i % 2 == 1;
            let shape = shape_of(domain);
            let spec = SynthSpec {
                name: name.clone(),
                rows: scale.max_rows.clamp(60, 300),
                num: (4 + domain % 4).min(scale.max_cols),
                cat: usize::from(domain % 2 == 0),
                text: usize::from(domain % 4 == 3),
                classes: if regression { 0 } else { 2 + i % 3 },
                ceiling: 0.9,
                missing: if domain % 3 == 0 { 0.03 } else { 0.0 },
            };
            let ds = synthesize(&spec, seed.wrapping_add((domain * 97 + i) as u64));
            let mut profile = DatasetProfile::new(name.clone(), regression);
            profile.has_categorical = spec.cat > 0;
            profile.has_text = spec.text > 0;
            profile.has_missing = spec.missing > 0.0;
            profile.estimator_weights = shape_weights(shape, regression);
            profiles.push(profile);
            tables.push((name, ds.features));
        }
    }
    TrainingSetup { profiles, tables }
}

/// Finds the `skip`-th synthetic name whose hash lands in `domain`.
fn find_name_in_domain(domain: usize, skip: usize) -> String {
    let mut found = 0usize;
    for i in 0..100_000 {
        let cand = format!("train_ds_{i}");
        if domain_of(&cand) == domain {
            if found == skip {
                return cand;
            }
            found += 1;
        }
    }
    unreachable!("domains are dense under hashing");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::NUM_DOMAINS;

    #[test]
    fn setup_covers_all_domains() {
        let setup = training_setup(2, &ScaleConfig::default(), 0);
        assert_eq!(setup.profiles.len(), NUM_DOMAINS * 2);
        assert_eq!(setup.tables.len(), NUM_DOMAINS * 2);
        let mut domains: Vec<usize> = setup
            .tables
            .iter()
            .map(|(name, _)| domain_of(name))
            .collect();
        domains.sort_unstable();
        domains.dedup();
        assert_eq!(domains.len(), NUM_DOMAINS);
    }

    #[test]
    fn names_are_unique_and_tables_nonempty() {
        let setup = training_setup(3, &ScaleConfig::default(), 1);
        let mut names: Vec<&String> = setup.tables.iter().map(|(n, _)| n).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
        for (_, t) in &setup.tables {
            assert!(t.num_rows() >= 60);
            assert!(t.num_columns() >= 1);
        }
    }

    #[test]
    fn shape_weights_respect_task_compatibility() {
        for shape in [DataShape::Boost, DataShape::Linear, DataShape::Neighbor] {
            let reg = shape_weights(shape, true);
            let cls = shape_weights(shape, false);
            let idx = |n: &str| ESTIMATOR_NAMES.iter().position(|e| *e == n).unwrap();
            assert_eq!(reg[idx("logistic_regression")], 0.0);
            assert_eq!(cls[idx("ridge")], 0.0);
            assert!(reg.iter().sum::<f64>() > 0.0);
        }
    }

    #[test]
    fn boost_shape_prefers_boosting() {
        let w = shape_weights(DataShape::Boost, false);
        let idx = |n: &str| ESTIMATOR_NAMES.iter().position(|e| *e == n).unwrap();
        assert!(w[idx("xgboost")] > w[idx("knn")]);
        let w = shape_weights(DataShape::Neighbor, false);
        assert!(w[idx("knn")] > w[idx("xgboost")]);
    }

    #[test]
    fn profiles_match_table_schemas() {
        let setup = training_setup(2, &ScaleConfig::default(), 0);
        for (profile, (name, table)) in setup.profiles.iter().zip(&setup.tables) {
            assert_eq!(&profile.name, name);
            let (_, cat, text) = table.kind_counts();
            assert_eq!(profile.has_categorical, cat > 0);
            assert_eq!(profile.has_text, text > 0);
        }
    }
}
