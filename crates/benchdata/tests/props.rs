//! Property-based tests for the synthetic benchmark generator.

use kgpip_benchdata::generate::{domain_of, synthesize, SynthSpec, NUM_DOMAINS};
use kgpip_benchdata::{benchmark, generate_dataset, ScaleConfig};
use kgpip_tabular::Task;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SynthSpec> {
    (
        "[a-z_]{3,16}",
        60usize..300,
        0usize..8,
        0usize..4,
        0usize..2,
        0usize..6,
        0.1f64..0.99,
        0.0f64..0.2,
    )
        .prop_map(
            |(name, rows, num, cat, text, classes, ceiling, missing)| SynthSpec {
                name,
                rows,
                // At least one feature column of some kind.
                num: num.max(usize::from(cat == 0 && text == 0)),
                cat,
                text,
                classes: if classes == 1 { 2 } else { classes },
                ceiling,
                missing,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Synthesis is total and schema-faithful over arbitrary specs.
    #[test]
    fn synthesis_matches_spec(spec in spec_strategy(), seed in 0u64..50) {
        let ds = synthesize(&spec, seed);
        prop_assert_eq!(ds.num_rows(), spec.rows);
        let (num, cat, text) = ds.features.kind_counts();
        prop_assert_eq!(num, spec.num);
        prop_assert_eq!(cat, spec.cat);
        prop_assert_eq!(text, spec.text);
        match ds.task {
            Task::Regression => prop_assert_eq!(spec.classes, 0),
            t => prop_assert_eq!(t.num_classes(), spec.classes.max(2)),
        }
        // Targets are finite; class indices in range.
        for &y in &ds.target {
            prop_assert!(y.is_finite());
            if ds.task.is_classification() {
                prop_assert!((y as usize) < ds.task.num_classes());
            }
        }
    }

    /// Classification targets carry every class when rows allow it.
    #[test]
    fn all_classes_appear(seed in 0u64..50, classes in 2usize..6) {
        let spec = SynthSpec {
            name: "classcover".into(),
            rows: 240,
            num: 4,
            cat: 0,
            text: 0,
            classes,
            ceiling: 0.9,
            missing: 0.0,
        };
        let ds = synthesize(&spec, seed);
        let counts = ds.class_counts();
        prop_assert_eq!(counts.len(), classes);
        prop_assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    /// Domain assignment is stable and covers the full range.
    #[test]
    fn domain_of_is_stable(name in "[ -~]{1,30}") {
        let d = domain_of(&name);
        prop_assert!(d < NUM_DOMAINS);
        prop_assert_eq!(d, domain_of(&name));
    }

    /// Catalog generation respects arbitrary scale configs.
    #[test]
    fn scale_config_caps_hold(
        entry_idx in 0usize..77,
        max_rows in 60usize..400,
        max_cols in 2usize..12,
    ) {
        let entry = &benchmark()[entry_idx];
        let scale = ScaleConfig { max_rows, max_cols };
        let ds = generate_dataset(entry, &scale, 0);
        prop_assert!(ds.num_rows() <= max_rows.max(60));
        // Text columns are capped separately (≤ 2 extra).
        prop_assert!(ds.num_features() <= max_cols + 3);
    }
}
