//! The gated recall suite: on a synthetic clustered catalog just past the
//! HNSW auto-tune threshold, the graph tier must retrieve nearly the same
//! top-10 as the exact scan, and the IVF tier must stay usable. The full
//! 100K-catalog acceptance run (recall@10 ≥ 0.95 at ≥ 10× exact-scan
//! speed) lives in the release-mode criterion bench `embeddings` — this
//! debug-mode gate keeps the invariant cheap enough for every `check.sh`.

use kgpip_benchdata::{recall_at_k, synthetic_embeddings};
use kgpip_embeddings::{IndexTier, VectorIndex};

const K: usize = 10;
const QUERIES: usize = 40;

fn catalog(n: usize, dim: usize) -> (VectorIndex, Vec<Vec<f64>>) {
    let vectors = synthetic_embeddings(n + QUERIES, dim, 32, 9);
    let (store, queries) = vectors.split_at(n);
    let mut index = VectorIndex::new();
    for (i, v) in store.iter().enumerate() {
        index.add(format!("t{i}"), v.clone());
    }
    (index, queries.to_vec())
}

#[test]
fn hnsw_recall_at_10_beats_095_past_the_auto_threshold() {
    let n = VectorIndex::HNSW_AUTO_THRESHOLD + 400;
    let (mut index, queries) = catalog(n, 16);
    assert_eq!(index.auto_tune(0), IndexTier::Hnsw);
    let mut total = 0.0;
    for q in &queries {
        let exact = index.top_k(q, K);
        let approx = index.search(q, K);
        total += recall_at_k(&exact, &approx, K);
    }
    let recall = total / queries.len() as f64;
    assert!(
        recall >= 0.95,
        "HNSW recall@{K} over {QUERIES} queries on {n} vectors: {recall:.3}"
    );
}

#[test]
fn ivf_recall_at_10_stays_usable_in_its_band() {
    let n = VectorIndex::HNSW_AUTO_THRESHOLD / 2;
    let (mut index, queries) = catalog(n, 16);
    assert_eq!(index.auto_tune(0), IndexTier::Ivf);
    let mut total = 0.0;
    for q in &queries {
        let exact = index.top_k(q, K);
        let approx = index.search(q, K);
        total += recall_at_k(&exact, &approx, K);
    }
    let recall = total / queries.len() as f64;
    assert!(
        recall >= 0.7,
        "IVF recall@{K} over {QUERIES} queries on {n} vectors: {recall:.3}"
    );
}

/// Product quantization keeps retrieval quality in the graph tier: with
/// the default rerank window the quantized catalog must clear the same
/// 0.95 recall floor as the unquantized graph. The raw (rerank = 1) run
/// is measured alongside to show the window doing real work — it only
/// has to beat a loose sanity floor, not the gate.
#[test]
fn pq_recall_at_10_beats_095_with_rerank() {
    use kgpip_embeddings::PqConfig;
    let n = VectorIndex::HNSW_AUTO_THRESHOLD + 400;
    let (mut index, queries) = catalog(n, 16);
    assert_eq!(index.auto_tune(0), IndexTier::Hnsw);
    let exact: Vec<_> = queries.iter().map(|q| index.top_k(q, K)).collect();

    let mut reranked = 0.0;
    index
        .quantize(PqConfig {
            m: 8,
            rerank: 4,
            seed: 0,
        })
        .unwrap();
    for (q, truth) in queries.iter().zip(&exact) {
        reranked += recall_at_k(truth, &index.search(q, K), K);
    }
    let reranked = reranked / queries.len() as f64;

    let mut raw = 0.0;
    index
        .quantize(PqConfig {
            m: 8,
            rerank: 1,
            seed: 0,
        })
        .unwrap();
    for (q, truth) in queries.iter().zip(&exact) {
        raw += recall_at_k(truth, &index.search(q, K), K);
    }
    let raw = raw / queries.len() as f64;

    println!("PQ recall@{K} on {n} vectors: reranked {reranked:.3}, raw {raw:.3}");
    assert!(
        reranked >= 0.95,
        "PQ+rerank recall@{K} over {QUERIES} queries on {n} vectors: {reranked:.3} (raw {raw:.3})"
    );
    assert!(
        raw >= 0.5,
        "raw ADC recall@{K} collapsed: {raw:.3} — codebooks are broken, not just coarse"
    );
    assert!(
        reranked >= raw,
        "the rerank window must never hurt recall (reranked {reranked:.3} < raw {raw:.3})"
    );
}

/// Insert-then-query must answer bit-identically to a from-scratch build
/// on a realistic clustered catalog (the unit tests cover small cases;
/// this is the at-scale gate).
#[test]
fn incremental_growth_is_bit_identical_to_rebuild() {
    use kgpip_embeddings::HnswConfig;
    let vectors = synthetic_embeddings(800, 16, 8, 3);
    let mut grown = VectorIndex::new();
    for (i, v) in vectors.iter().take(600).enumerate() {
        grown.add(format!("t{i}"), v.clone());
    }
    grown.build_hnsw(HnswConfig::default());
    for (i, v) in vectors.iter().enumerate().skip(600) {
        grown.register(format!("t{i}"), v.clone());
    }
    let mut scratch = VectorIndex::new();
    for (i, v) in vectors.iter().enumerate() {
        scratch.add(format!("t{i}"), v.clone());
    }
    scratch.build_hnsw(HnswConfig::default());
    for q in vectors.iter().take(20) {
        let a = grown.search(q, K);
        let b = scratch.search(q, K);
        assert_eq!(a.len(), b.len());
        for ((na, sa), (nb, sb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }
}
