//! Import-resolving dataflow + control-flow analysis of parsed scripts.
//!
//! Reproduces GraphGen4Code's behaviour as described in paper §3.3: the
//! analysis tracks "what happens to data that is read from a Pandas
//! dataframe, how it gets manipulated and transformed, and what
//! transformers or estimators get called on the dataframe", making "explicit
//! what APIs and functions are invoked on objects without the need to model
//! the used libraries themselves". Each call becomes a node labeled with
//! its *resolved* dotted API path (import aliases and receiver types are
//! chased); dataflow edges connect producers to consumers, control-flow
//! edges chain consecutive calls, and the same classes of noise nodes that
//! GraphGen4Code emits (locations, parameters, documentation, constants,
//! transitive-dataflow closure) are attached so that the §3.4 filter has
//! realistic work to do.
//!
//! # Interprocedural pass
//!
//! User-defined `def` helpers are summarized at their definition
//! (parameter list + body) and *instantiated at each call site*: the
//! arguments are evaluated in the caller's scope, bound to the parameters,
//! and the body is walked in that environment — so a script that wraps its
//! preprocessing in a helper produces the same graph skeleton as its
//! inlined equivalent. No `Call` node is created for user-defined calls.
//! Recursive or deeply nested helper calls (depth > [`MAX_CALL_DEPTH`])
//! fall back to an opaque call node plus an analysis warning.

use crate::ast::{Expr, Module, Stmt};
use crate::diag::{Diagnostic, DiagnosticSink, Pass};
use crate::graph::{CodeGraph, EdgeKind, LabelInterner, NodeId, NodeKind};
use crate::parser::{parse, parse_with_diagnostics};
use crate::span::Span;
use crate::Result;
use std::collections::HashMap;

/// Maximum user-function inlining depth before a call is treated as
/// opaque (guards against recursion and pathological nesting).
pub const MAX_CALL_DEPTH: usize = 8;

/// Parses and analyzes a script into its code graph (strict: the first
/// lex/parse error aborts).
pub fn analyze(source: &str) -> Result<CodeGraph> {
    let module = parse(source)?;
    Ok(analyze_module(&module))
}

/// Recovering analysis: always produces a graph, however malformed the
/// input. Malformed statements are skipped by the parser and reported as
/// diagnostics alongside any analysis warnings.
pub fn analyze_with_diagnostics(source: &str) -> (CodeGraph, Vec<Diagnostic>) {
    let (module, mut diags) = parse_with_diagnostics(source);
    let (graph, analysis_diags) = analyze_module_with_diagnostics(&module);
    diags.extend(analysis_diags);
    (graph, diags)
}

/// Analyzes an already-parsed module, dropping analysis warnings.
pub fn analyze_module(module: &Module) -> CodeGraph {
    analyze_module_with_diagnostics(module).0
}

/// Analyzes an already-parsed module, returning the graph plus any
/// analysis-pass diagnostics (e.g. `return` outside a function, inlining
/// depth exceeded).
pub fn analyze_module_with_diagnostics(module: &Module) -> (CodeGraph, Vec<Diagnostic>) {
    let mut a = Analyzer {
        graph: CodeGraph::new(),
        interner: LabelInterner::new(),
        imports: HashMap::new(),
        env: HashMap::new(),
        types: HashMap::new(),
        functions: HashMap::new(),
        last_call: None,
        call_stack: Vec::new(),
        returning: None,
        sink: DiagnosticSink::new(),
    };
    a.walk_block(&module.body);
    a.add_transitive_closure();
    debug_assert!(
        crate::lint::lint_code_graph(&a.graph).is_empty(),
        "analysis produced a graph violating codegraph invariants: {:?}",
        crate::lint::lint_code_graph(&a.graph)
    );
    (a.graph, a.sink.into_diagnostics())
}

/// A user-defined function summary: parameters plus body, instantiated at
/// each call site.
#[derive(Clone)]
struct FuncSummary {
    params: Vec<String>,
    body: Vec<Stmt>,
}

struct Analyzer {
    graph: CodeGraph,
    /// Label pool: one allocation per distinct node-label string. Raw
    /// graphs repeat the same labels (API paths, `loc:`/`doc:`/`param:`
    /// bookkeeping) hundreds of times; interning makes each repeat a
    /// refcount bump instead of a fresh `String`.
    interner: LabelInterner,
    /// Alias → dotted module/object path (`pd` → `pandas`,
    /// `SVC` → `sklearn.svm.SVC`).
    imports: HashMap<String, String>,
    /// Variable → node that produced its current value.
    env: HashMap<String, NodeId>,
    /// Variable → API type of its value (`model` → `sklearn.svm.SVC`,
    /// `df` → `pandas.DataFrame`).
    types: HashMap<String, String>,
    /// User-defined `def` summaries by name.
    functions: HashMap<String, FuncSummary>,
    last_call: Option<NodeId>,
    /// Names of user functions currently being instantiated (recursion
    /// guard; its length is the inlining depth).
    call_stack: Vec<String>,
    /// Set when a `return` executes inside a function body: the producer
    /// node and API type of the returned value. Stops the block walk.
    returning: Option<(Option<NodeId>, Option<String>)>,
    sink: DiagnosticSink,
}

impl Analyzer {
    fn walk_block(&mut self, body: &[Stmt]) {
        for stmt in body {
            if self.returning.is_some() {
                break;
            }
            self.walk_stmt(stmt);
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Import { module, alias, .. } => {
                self.imports
                    .insert(alias.clone(), module_root(module, alias));
            }
            Stmt::FromImport { module, names, .. } => {
                for (name, alias) in names {
                    self.imports
                        .insert(alias.clone(), format!("{module}.{name}"));
                }
            }
            Stmt::FuncDef {
                name, params, body, ..
            } => {
                // Summarized, not walked: the body is analyzed in the
                // caller's environment at each call site.
                self.functions.insert(
                    name.clone(),
                    FuncSummary {
                        params: params.clone(),
                        body: body.clone(),
                    },
                );
            }
            Stmt::Return { value, span } => {
                let result = match value {
                    Some(v) => self.visit_expr(v, *span),
                    None => (None, None),
                };
                if self.call_stack.is_empty() {
                    self.sink
                        .warning(Pass::Analysis, *span, "`return` outside a function");
                } else {
                    self.returning = Some(result);
                }
            }
            Stmt::Assign {
                targets,
                value,
                span,
            } => {
                let (producer, api_type) = self.visit_expr(value, *span);
                for t in targets {
                    match producer {
                        Some(p) => {
                            self.env.insert(t.clone(), p);
                        }
                        None => {
                            self.env.remove(t);
                        }
                    }
                    match &api_type {
                        Some(ty) => {
                            self.types.insert(t.clone(), ty.clone());
                        }
                        None => {
                            self.types.remove(t);
                        }
                    }
                }
            }
            Stmt::Expr { value, span } => {
                self.visit_expr(value, *span);
            }
            Stmt::For {
                var,
                iter,
                body,
                span,
            } => {
                let (producer, _) = self.visit_expr(iter, *span);
                if let Some(p) = producer {
                    self.env.insert(var.clone(), p);
                }
                self.walk_block(body);
            }
            Stmt::If {
                cond,
                body,
                orelse,
                span,
            } => {
                self.visit_expr(cond, *span);
                self.walk_block(body);
                self.walk_block(orelse);
            }
        }
    }

    /// Visits an expression, creating graph nodes for calls and constants.
    /// Returns the node producing the expression's value (if any) and the
    /// resolved API type of that value (if known).
    fn visit_expr(&mut self, expr: &Expr, span: Span) -> (Option<NodeId>, Option<String>) {
        match expr {
            Expr::Name(n) => (self.env.get(n).copied(), self.types.get(n).cloned()),
            Expr::Str(_) | Expr::Num(_) | Expr::Keyword(_) => (None, None),
            Expr::Subscript { base, .. } => {
                // Value flows through the container: `df['x']` carries df's
                // producer (and dataframe type).
                let (p, t) = self.visit_expr(base, span);
                (p, t)
            }
            Expr::Attribute { base, .. } => {
                let (p, _) = self.visit_expr(base, span);
                (p, None)
            }
            Expr::Sequence(items) => {
                let mut producer = None;
                for item in items {
                    let (p, _) = self.visit_expr(item, span);
                    if producer.is_none() {
                        producer = p;
                    }
                }
                (producer, None)
            }
            Expr::BinOp { left, right, .. } => {
                let (pl, tl) = self.visit_expr(left, span);
                let (pr, tr) = self.visit_expr(right, span);
                (pl.or(pr), tl.or(tr))
            }
            Expr::Call { func, args, kwargs } => self.visit_call(func, args, kwargs, span),
        }
    }

    fn visit_call(
        &mut self,
        func: &Expr,
        args: &[Expr],
        kwargs: &[(String, Expr)],
        span: Span,
    ) -> (Option<NodeId>, Option<String>) {
        // Interprocedural pass: a call to a user-defined helper is
        // instantiated in place (no Call node), unless the inlining guard
        // trips, in which case it degrades to an opaque call below.
        if let Expr::Name(fname) = func {
            if self.functions.contains_key(fname) {
                if self.call_stack.len() >= MAX_CALL_DEPTH
                    || self.call_stack.iter().any(|n| n == fname)
                {
                    self.sink.warning(
                        Pass::Analysis,
                        span,
                        format!("call to `{fname}` exceeds inlining depth; treated as opaque"),
                    );
                } else {
                    return self.apply_function(fname.clone(), args, kwargs, span);
                }
            }
        }

        // Resolve the callee to a dotted API path plus the receiver's
        // producing node for method calls.
        let (path, receiver) = self.resolve_callee(func, span);
        let call_label = self.interner.intern(&path);
        let call = self.graph.add_node(NodeKind::Call, call_label, span);

        // Control flow chains consecutive calls (gray edges in Figure 3).
        if let Some(prev) = self.last_call {
            self.graph.add_edge(prev, call, EdgeKind::ControlFlow);
        }
        self.last_call = Some(call);

        // Receiver dataflow: `model.fit(...)` consumes `model`.
        if let Some(r) = receiver {
            self.graph.add_edge(r, call, EdgeKind::DataFlow);
        }
        // Argument dataflow and constant nodes.
        for arg in args {
            self.flow_arg(arg, call, span);
        }
        for (name, value) in kwargs {
            self.flow_arg(value, call, span);
            // GraphGen4Code-style parameter bookkeeping node.
            let label = self.interner.intern_owned(format!("param:{name}"));
            let p = self.graph.add_node(NodeKind::Parameter, label, span);
            self.graph.add_edge(call, p, EdgeKind::Parameter);
        }
        // Location and documentation noise attached to every call.
        let label = self.interner.intern_owned(format!("loc:{}", span.line));
        let loc = self.graph.add_node(NodeKind::Location, label, span);
        self.graph.add_edge(call, loc, EdgeKind::Location);
        let label = self.interner.intern_owned(format!("doc:{path}"));
        let doc = self.graph.add_node(NodeKind::Documentation, label, span);
        self.graph.add_edge(call, doc, EdgeKind::Documentation);

        // The API type of the call's value, for downstream method
        // resolution: constructors type their object as the constructor
        // path; dataframe producers type as pandas.DataFrame.
        let value_type = if path == "pandas.read_csv"
            || path == "sklearn.model_selection.train_test_split"
            || path.starts_with("pandas.DataFrame")
        {
            Some("pandas.DataFrame".to_string())
        } else if path
            .rsplit('.')
            .next()
            .is_some_and(|last| last.chars().next().is_some_and(char::is_uppercase))
        {
            Some(path)
        } else {
            None
        };
        (Some(call), value_type)
    }

    /// Instantiates a user-defined function at a call site: evaluates the
    /// arguments in the caller's scope, binds them to the parameters, walks
    /// the body, and yields the returned value's producer/type. The
    /// caller's variable bindings are restored afterwards (function-local
    /// scope), but graph nodes created by the body remain — exactly as if
    /// the body had been inlined.
    fn apply_function(
        &mut self,
        name: String,
        args: &[Expr],
        kwargs: &[(String, Expr)],
        span: Span,
    ) -> (Option<NodeId>, Option<String>) {
        let Some(summary) = self.functions.get(&name).cloned() else {
            return (None, None);
        };
        // Evaluate arguments in the caller's environment. A produced value
        // is the graph node computing it (if any) plus its inferred type.
        type Produced = (Option<NodeId>, Option<String>);
        let positional: Vec<Produced> = args.iter().map(|a| self.visit_expr(a, span)).collect();
        let keyword: Vec<(String, Produced)> = kwargs
            .iter()
            .map(|(k, v)| (k.clone(), self.visit_expr(v, span)))
            .collect();

        let saved_env = self.env.clone();
        let saved_types = self.types.clone();
        self.call_stack.push(name);

        for (i, param) in summary.params.iter().enumerate() {
            let bound = positional.get(i).cloned().or_else(|| {
                keyword
                    .iter()
                    .find(|(k, _)| k == param)
                    .map(|(_, v)| v.clone())
            });
            match bound {
                Some((Some(p), t)) => {
                    self.env.insert(param.clone(), p);
                    match t {
                        Some(t) => {
                            self.types.insert(param.clone(), t);
                        }
                        None => {
                            self.types.remove(param);
                        }
                    }
                }
                Some((None, t)) => {
                    self.env.remove(param);
                    match t {
                        Some(t) => {
                            self.types.insert(param.clone(), t);
                        }
                        None => {
                            self.types.remove(param);
                        }
                    }
                }
                None => {
                    self.env.remove(param);
                    self.types.remove(param);
                }
            }
        }

        self.walk_block(&summary.body);
        let result = self.returning.take().unwrap_or((None, None));

        self.call_stack.pop();
        self.env = saved_env;
        self.types = saved_types;
        result
    }

    fn flow_arg(&mut self, arg: &Expr, call: NodeId, span: Span) {
        match arg {
            Expr::Str(s) => {
                let label = self.interner.intern_owned(format!("'{s}'"));
                let c = self.graph.add_node(NodeKind::Constant, label, span);
                self.graph.add_edge(c, call, EdgeKind::ConstantArg);
            }
            Expr::Num(v) => {
                let label = self.interner.intern_owned(format!("{v}"));
                let c = self.graph.add_node(NodeKind::Constant, label, span);
                self.graph.add_edge(c, call, EdgeKind::ConstantArg);
            }
            Expr::Keyword(k) => {
                let label = self.interner.intern(k);
                let c = self.graph.add_node(NodeKind::Constant, label, span);
                self.graph.add_edge(c, call, EdgeKind::ConstantArg);
            }
            other => {
                let (p, _) = self.visit_expr(other, span);
                if let Some(p) = p {
                    self.graph.add_edge(p, call, EdgeKind::DataFlow);
                }
            }
        }
    }

    /// Resolves a callee expression to `(dotted API path, receiver node)`.
    fn resolve_callee(&mut self, func: &Expr, span: Span) -> (String, Option<NodeId>) {
        if let Some(dotted) = func.dotted_name() {
            let mut parts = dotted.splitn(2, '.');
            let head = parts.next().unwrap_or_default().to_string();
            let rest = parts.next();
            // 1. Import alias: `pd.read_csv` → `pandas.read_csv`;
            //    `SVC()` → `sklearn.svm.SVC`.
            if let Some(full) = self.imports.get(&head) {
                return (
                    match rest {
                        Some(r) => format!("{full}.{r}"),
                        None => full.clone(),
                    },
                    None,
                );
            }
            // 2. Method call on a typed variable: `model.fit` →
            //    `sklearn.svm.SVC.fit`, receiver dataflow from `model`.
            if let Some(ty) = self.types.get(&head).cloned() {
                let receiver = self.env.get(&head).copied();
                return (
                    match rest {
                        Some(r) => format!("{ty}.{r}"),
                        None => ty,
                    },
                    receiver,
                );
            }
            // 3. Method call on an untyped variable that still has a
            //    producer: treat as an opaque object method.
            if let Some(&producer) = self.env.get(&head) {
                return (
                    match rest {
                        Some(r) => format!("object.{r}"),
                        None => "object".to_string(),
                    },
                    Some(producer),
                );
            }
            // 4. Unresolvable: keep the literal dotted path.
            return (dotted, None);
        }
        // Callee is itself a complex expression (e.g. chained call):
        // analyze it and call through an opaque label.
        let (p, _) = self.visit_expr(func, span);
        ("object.call".to_string(), p)
    }

    /// Adds GraphGen4Code-style transitive dataflow closure edges: for each
    /// node, an edge to every node reachable through 2+ dataflow hops. This
    /// is what makes raw code graphs an order of magnitude denser than the
    /// filtered graphs (Table 3: 252,486 edges over 29,139 nodes).
    fn add_transitive_closure(&mut self) {
        let direct: Vec<(NodeId, NodeId)> = self
            .graph
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::DataFlow || e.kind == EdgeKind::ConstantArg)
            .map(|e| (e.from, e.to))
            .collect();
        let n = self.graph.num_nodes();
        let mut succ: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (f, t) in &direct {
            succ[*f].push(*t);
        }
        let mut new_edges = Vec::new();
        for start in 0..n {
            // BFS from each node; nodes at depth >= 2 get closure edges.
            let mut seen = vec![false; n];
            seen[start] = true;
            let mut frontier: Vec<NodeId> = succ[start].clone();
            for f in &frontier {
                seen[*f] = true;
            }
            let mut depth = 1usize;
            while !frontier.is_empty() {
                depth += 1;
                let mut next = Vec::new();
                for &at in &frontier {
                    for &to in &succ[at] {
                        if !seen[to] {
                            seen[to] = true;
                            if depth >= 2 {
                                new_edges.push((start, to));
                            }
                            next.push(to);
                        }
                    }
                }
                frontier = next;
            }
        }
        for (f, t) in new_edges {
            self.graph.add_edge(f, t, EdgeKind::TransitiveDataFlow);
        }
    }
}

fn module_root(module: &str, alias: &str) -> String {
    // `import sklearn.svm` binds `sklearn` to `sklearn`; `import pandas as
    // pd` binds `pd` to `pandas`; `import xgboost` binds itself.
    if alias == module.split('.').next().unwrap_or(module) {
        alias.to_string()
    } else {
        module.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    /// The paper's Figure 2 snippet.
    const FIG2: &str = "\
import pandas as pd
from sklearn.model_selection import train_test_split
from sklearn import svm
df = pd.read_csv('example.csv')
df_train, df_test = train_test_split(df)
X = df_train['X']
model = svm.SVC()
model.fit(X, df_train['Y'])
";

    fn labels(g: &CodeGraph, kind: NodeKind) -> Vec<String> {
        g.nodes_of_kind(kind)
            .into_iter()
            .map(|i| g.nodes[i].label.to_string())
            .collect()
    }

    #[test]
    fn figure2_produces_the_figure3_call_chain() {
        let g = analyze(FIG2).unwrap();
        let calls = labels(&g, NodeKind::Call);
        assert_eq!(
            calls,
            vec![
                "pandas.read_csv",
                "sklearn.model_selection.train_test_split",
                "sklearn.svm.SVC",
                "sklearn.svm.SVC.fit",
            ]
        );
    }

    #[test]
    fn figure2_dataflow_mirrors_figure3() {
        let g = analyze(FIG2).unwrap();
        let call_ids = g.nodes_of_kind(NodeKind::Call);
        let by_label = |l: &str| {
            call_ids
                .iter()
                .copied()
                .find(|&i| g.nodes[i].label == l)
                .unwrap()
        };
        let read = by_label("pandas.read_csv");
        let split = by_label("sklearn.model_selection.train_test_split");
        let svc = by_label("sklearn.svm.SVC");
        let fit = by_label("sklearn.svm.SVC.fit");
        let has_flow = |f, t| {
            g.edges
                .iter()
                .any(|e| e.from == f && e.to == t && e.kind == EdgeKind::DataFlow)
        };
        assert!(has_flow(read, split), "df flows into train_test_split");
        assert!(has_flow(split, fit), "df_train['X'] flows into fit");
        assert!(has_flow(svc, fit), "model receiver flows into fit");
        // Control flow chains all four calls.
        let cf: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::ControlFlow)
            .collect();
        assert_eq!(cf.len(), 3);
    }

    #[test]
    fn call_nodes_carry_source_spans() {
        let g = analyze(FIG2).unwrap();
        let call_ids = g.nodes_of_kind(NodeKind::Call);
        let read = call_ids
            .iter()
            .copied()
            .find(|&i| g.nodes[i].label == "pandas.read_csv")
            .unwrap();
        let span = g.nodes[read].span;
        assert_eq!(span.line, 4);
        assert_eq!(span.slice(FIG2), Some("df = pd.read_csv('example.csv')"));
    }

    #[test]
    fn noise_nodes_are_attached_to_every_call() {
        let g = analyze(FIG2).unwrap();
        let calls = g.nodes_of_kind(NodeKind::Call).len();
        assert_eq!(g.nodes_of_kind(NodeKind::Location).len(), calls);
        assert_eq!(g.nodes_of_kind(NodeKind::Documentation).len(), calls);
        assert_eq!(labels(&g, NodeKind::Constant), vec!["'example.csv'"]);
    }

    #[test]
    fn kwargs_create_parameter_nodes_and_constants() {
        let g = analyze(
            "from sklearn.ensemble import RandomForestClassifier\nm = RandomForestClassifier(n_estimators=100)\n",
        )
        .unwrap();
        assert_eq!(labels(&g, NodeKind::Parameter), vec!["param:n_estimators"]);
        assert_eq!(labels(&g, NodeKind::Constant), vec!["100"]);
    }

    #[test]
    fn transitive_closure_adds_reachability_edges() {
        // read -> split -> fit: closure should add read -> fit.
        let g = analyze(FIG2).unwrap();
        let trans = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::TransitiveDataFlow)
            .count();
        assert!(trans >= 1, "expected closure edges, got {trans}");
    }

    #[test]
    fn unsupported_framework_calls_are_labeled_but_not_canonical() {
        let g = analyze("import torch\nnet = torch.nn.Linear(10, 2)\n").unwrap();
        let calls = labels(&g, NodeKind::Call);
        assert_eq!(calls, vec!["torch.nn.Linear"]);
    }

    #[test]
    fn untyped_object_methods_resolve_opaquely() {
        let g = analyze("x = helper()\nx.run(1)\n").unwrap();
        let calls = labels(&g, NodeKind::Call);
        // helper is unresolvable (no import), x.run resolves through the
        // producer as an opaque object method... except helper() returns a
        // typed value only for constructors; `helper` is lowercase.
        assert_eq!(calls[0], "helper");
        assert_eq!(calls[1], "object.run");
    }

    #[test]
    fn dataframe_methods_type_through() {
        let g = analyze(
            "import pandas as pd\ndf = pd.read_csv('a.csv')\ndf2 = df.dropna()\ndf2.describe()\n",
        )
        .unwrap();
        let calls = labels(&g, NodeKind::Call);
        assert_eq!(
            calls,
            vec![
                "pandas.read_csv",
                "pandas.DataFrame.dropna",
                "pandas.DataFrame.describe"
            ]
        );
    }

    #[test]
    fn loops_and_conditionals_are_analyzed_linearly() {
        let src = "\
import pandas as pd
df = pd.read_csv('a.csv')
for c in df:
    df[c] = df[c] + 1
if True:
    df.describe()
";
        let g = analyze(src).unwrap();
        let calls = labels(&g, NodeKind::Call);
        assert!(calls.contains(&"pandas.DataFrame.describe".to_string()));
    }

    #[test]
    fn helper_function_is_instantiated_at_the_call_site() {
        let helper = "\
import pandas as pd
from sklearn.preprocessing import StandardScaler
def prepare(data):
    prep = StandardScaler()
    out = prep.fit_transform(data)
    return out
df = pd.read_csv('a.csv')
x = prepare(df)
";
        let inlined = "\
import pandas as pd
from sklearn.preprocessing import StandardScaler
df = pd.read_csv('a.csv')
prep = StandardScaler()
out = prep.fit_transform(df)
x = out
";
        let gh = analyze(helper).unwrap();
        let gi = analyze(inlined).unwrap();
        assert_eq!(labels(&gh, NodeKind::Call), labels(&gi, NodeKind::Call));
        assert_eq!(
            labels(&gh, NodeKind::Call),
            vec![
                "pandas.read_csv",
                "sklearn.preprocessing.StandardScaler",
                "sklearn.preprocessing.StandardScaler.fit_transform",
            ]
        );
        // The argument's producer flows into the helper's body calls.
        let call_ids = gh.nodes_of_kind(NodeKind::Call);
        let read = call_ids[0];
        let fit_transform = call_ids[2];
        assert!(gh
            .edges
            .iter()
            .any(|e| e.from == read && e.to == fit_transform && e.kind == EdgeKind::DataFlow));
    }

    #[test]
    fn helper_return_type_propagates_to_the_caller() {
        let src = "\
import pandas as pd
def load():
    df = pd.read_csv('a.csv')
    return df
data = load()
data.describe()
";
        let g = analyze(src).unwrap();
        let calls = labels(&g, NodeKind::Call);
        assert_eq!(
            calls,
            vec!["pandas.read_csv", "pandas.DataFrame.describe"],
            "the returned dataframe type resolves the method call"
        );
    }

    #[test]
    fn helper_locals_do_not_leak_into_the_caller() {
        let src = "\
import pandas as pd
def load():
    secret = pd.read_csv('a.csv')
    return secret
data = load()
secret.describe()
";
        let g = analyze(src).unwrap();
        let calls = labels(&g, NodeKind::Call);
        // `secret` is function-local, so the trailing call is unresolved.
        assert_eq!(calls, vec!["pandas.read_csv", "secret.describe"]);
    }

    #[test]
    fn recursive_helpers_degrade_to_opaque_calls() {
        let src = "def f(x):\n    y = f(x)\n    return y\nz = f(1)\n";
        let (g, diags) = analyze_with_diagnostics(src);
        assert_eq!(labels(&g, NodeKind::Call), vec!["f"]);
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Warning && d.message.contains("inlining depth")));
    }

    #[test]
    fn return_outside_function_warns() {
        let (g, diags) = analyze_with_diagnostics("x = 1\nreturn x\n");
        assert_eq!(g.nodes_of_kind(NodeKind::Call).len(), 0);
        assert!(diags.iter().any(|d| d.severity == Severity::Warning
            && d.message.contains("outside a function")
            && d.span.line == 2));
    }

    #[test]
    fn recovering_analysis_survives_malformed_statements() {
        let src = "import pandas as pd\ndf = pd.read_csv('a.csv')\nx = = 3\ndf.describe()\n";
        let (g, diags) = analyze_with_diagnostics(src);
        let calls = labels(&g, NodeKind::Call);
        assert_eq!(calls, vec!["pandas.read_csv", "pandas.DataFrame.describe"]);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count(),
            1
        );
    }

    #[test]
    fn graph_scale_matches_graphgen4code_profile() {
        // A realistic ~30-line script should produce hundreds of nodes and
        // an edge count dominated by noise + closure, as in paper §3.3.
        let mut src = String::from(
            "import pandas as pd\nfrom sklearn.preprocessing import StandardScaler\nfrom sklearn.ensemble import RandomForestClassifier\ndf = pd.read_csv('data.csv')\n",
        );
        for i in 0..20 {
            src.push_str(&format!("df_{i} = df.fillna({i})\n"));
            src.push_str(&format!("df = df_{i}.dropna()\n"));
        }
        src.push_str("s = StandardScaler()\nx = s.fit_transform(df)\nm = RandomForestClassifier(n_estimators=50, max_depth=4)\nm.fit(x, df)\n");
        let g = analyze(&src).unwrap();
        assert!(g.num_nodes() > 100, "nodes = {}", g.num_nodes());
        assert!(
            g.num_edges() > 5 * g.num_nodes(),
            "edges = {} for {} nodes",
            g.num_edges(),
            g.num_nodes()
        );
    }
}
