//! Abstract syntax tree for the analyzed Python subset.
//!
//! Every statement carries the [`Span`] of its first token, so analysis
//! nodes and diagnostics can point back into the source. Expressions
//! inherit the span of their enclosing statement (the span model is
//! documented in DESIGN.md, "Analyzer passes & diagnostics").

use crate::span::Span;

/// A parsed script: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Top-level statements in source order.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `import pandas as pd` (alias = `pd`) or `import xgboost`
    /// (alias = `xgboost`).
    Import {
        /// Dotted module path.
        module: String,
        /// Binding name in the script's namespace.
        alias: String,
        /// Source location.
        span: Span,
    },
    /// `from sklearn.svm import SVC, LinearSVC as LSVC`.
    FromImport {
        /// Dotted module path.
        module: String,
        /// `(imported name, binding alias)` pairs.
        names: Vec<(String, String)>,
        /// Source location.
        span: Span,
    },
    /// `x = expr` or `a, b = expr` (tuple unpacking).
    Assign {
        /// Target variable names, one per unpacked slot.
        targets: Vec<String>,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// A bare expression statement (typically a call like `model.fit(...)`).
    Expr {
        /// The expression.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `for <var> in <iter>: <body>` — analyzed linearly.
    For {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `if <cond>: <body> [else: <orelse>]` — both branches analyzed.
    If {
        /// Condition expression.
        cond: Expr,
        /// Then-branch statements.
        body: Vec<Stmt>,
        /// Else-branch statements.
        orelse: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `def <name>(<params>): <body>` — a user-defined helper function,
    /// summarized and applied at call sites by the interprocedural pass.
    FuncDef {
        /// Function name.
        name: String,
        /// Parameter names in declaration order (default values are
        /// parsed but not modelled).
        params: Vec<String>,
        /// Function body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `return [expr]` — the value (if any) becomes the producer the
    /// caller's dataflow continues from.
    Return {
        /// Returned expression, if present.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Import { span, .. }
            | Stmt::FromImport { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Expr { span, .. }
            | Stmt::For { span, .. }
            | Stmt::If { span, .. }
            | Stmt::FuncDef { span, .. }
            | Stmt::Return { span, .. } => *span,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Name(String),
    /// Attribute access `base.attr`.
    Attribute {
        /// The object expression.
        base: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// A call `func(args, kw=value, ...)`.
    Call {
        /// Callee expression (name or attribute chain).
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// Subscript `base[index]`.
    Subscript {
        /// The subscripted expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// A string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// A boolean or `None` literal (True=1, False=0, None=NaN).
    Keyword(String),
    /// A list or tuple display.
    Sequence(Vec<Expr>),
    /// Any binary operation (operator identity is irrelevant for dataflow).
    BinOp {
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Operator lexeme, kept for fidelity.
        op: String,
    },
}

impl Expr {
    /// The dotted name of this expression if it is a pure name/attribute
    /// chain, e.g. `svm.SVC` → `Some("svm.SVC")`.
    pub fn dotted_name(&self) -> Option<String> {
        match self {
            Expr::Name(n) => Some(n.clone()),
            Expr::Attribute { base, attr } => base.dotted_name().map(|b| format!("{b}.{attr}")),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_name_on_chains() {
        let e = Expr::Attribute {
            base: Box::new(Expr::Attribute {
                base: Box::new(Expr::Name("a".into())),
                attr: "b".into(),
            }),
            attr: "c".into(),
        };
        assert_eq!(e.dotted_name().as_deref(), Some("a.b.c"));
        let call = Expr::Call {
            func: Box::new(e),
            args: vec![],
            kwargs: vec![],
        };
        assert_eq!(call.dotted_name(), None);
    }

    #[test]
    fn stmt_span_accessor_covers_all_variants() {
        let s = Span::at_line(4);
        let stmts = vec![
            Stmt::Import {
                module: "pandas".into(),
                alias: "pd".into(),
                span: s,
            },
            Stmt::Return {
                value: None,
                span: s,
            },
            Stmt::FuncDef {
                name: "f".into(),
                params: vec![],
                body: vec![],
                span: s,
            },
        ];
        for stmt in stmts {
            assert_eq!(stmt.span().line, 4);
        }
    }
}
