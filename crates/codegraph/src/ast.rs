//! Abstract syntax tree for the analyzed Python subset.

/// A parsed script: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Top-level statements in source order.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `import pandas as pd` (alias = `pd`) or `import xgboost`
    /// (alias = `xgboost`).
    Import {
        /// Dotted module path.
        module: String,
        /// Binding name in the script's namespace.
        alias: String,
    },
    /// `from sklearn.svm import SVC, LinearSVC as LSVC`.
    FromImport {
        /// Dotted module path.
        module: String,
        /// `(imported name, binding alias)` pairs.
        names: Vec<(String, String)>,
    },
    /// `x = expr` or `a, b = expr` (tuple unpacking).
    Assign {
        /// Target variable names, one per unpacked slot.
        targets: Vec<String>,
        /// Right-hand side, with its source line.
        value: Expr,
        /// 1-based source line.
        line: usize,
    },
    /// A bare expression statement (typically a call like `model.fit(...)`).
    Expr {
        /// The expression.
        value: Expr,
        /// 1-based source line.
        line: usize,
    },
    /// `for <var> in <iter>: <body>` — analyzed linearly.
    For {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// 1-based source line.
        line: usize,
    },
    /// `if <cond>: <body> [else: <orelse>]` — both branches analyzed.
    If {
        /// Condition expression.
        cond: Expr,
        /// Then-branch statements.
        body: Vec<Stmt>,
        /// Else-branch statements.
        orelse: Vec<Stmt>,
        /// 1-based source line.
        line: usize,
    },
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Name(String),
    /// Attribute access `base.attr`.
    Attribute {
        /// The object expression.
        base: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// A call `func(args, kw=value, ...)`.
    Call {
        /// Callee expression (name or attribute chain).
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// Subscript `base[index]`.
    Subscript {
        /// The subscripted expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// A string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// A boolean or `None` literal (True=1, False=0, None=NaN).
    Keyword(String),
    /// A list or tuple display.
    Sequence(Vec<Expr>),
    /// Any binary operation (operator identity is irrelevant for dataflow).
    BinOp {
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Operator lexeme, kept for fidelity.
        op: String,
    },
}

impl Expr {
    /// The dotted name of this expression if it is a pure name/attribute
    /// chain, e.g. `svm.SVC` → `Some("svm.SVC")`.
    pub fn dotted_name(&self) -> Option<String> {
        match self {
            Expr::Name(n) => Some(n.clone()),
            Expr::Attribute { base, attr } => base.dotted_name().map(|b| format!("{b}.{attr}")),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_name_on_chains() {
        let e = Expr::Attribute {
            base: Box::new(Expr::Attribute {
                base: Box::new(Expr::Name("a".into())),
                attr: "b".into(),
            }),
            attr: "c".into(),
        };
        assert_eq!(e.dotted_name().as_deref(), Some("a.b.c"));
        let call = Expr::Call {
            func: Box::new(e),
            args: vec![],
            kwargs: vec![],
        };
        assert_eq!(call.dotted_name(), None);
    }
}
