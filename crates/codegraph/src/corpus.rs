//! Synthetic notebook-corpus generator.
//!
//! Substitute for the paper's mined corpus (§4.3: "we performed program
//! analysis on 11.7K scripts associated with 142 datasets, and then
//! selected those with estimators from sklearn, XGBoost and LightGBM ...
//! This resulted in the selection of 2,046 notebooks for 104 datasets; a
//! vast portion of the 11.7K programs were about exploratory data
//! analysis, or involved libraries that were not supported"). The
//! generator reproduces exactly those phenomena: per-dataset collections
//! of scripts with EDA noise, a configurable fraction of unsupported
//! (torch/keras) notebooks that the filter must reject, and an empirically
//! shaped learner distribution dominated by xgboost and gradient boosting
//! (Figures 8–9).

use crate::vocab::{ESTIMATOR_NAMES, TRANSFORMER_NAMES};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Schema-level description of a dataset, driving which pipelines make
/// sense for it (e.g. text columns attract vectorization-heavy scripts).
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Dataset name (also its csv file stem in generated scripts).
    pub name: String,
    /// True for regression targets.
    pub regression: bool,
    /// Dataset has categorical columns.
    pub has_categorical: bool,
    /// Dataset has text columns.
    pub has_text: bool,
    /// Dataset has missing values.
    pub has_missing: bool,
    /// Unnormalized preference weight per estimator index (see
    /// [`ESTIMATOR_NAMES`]); defaults to the community-shaped
    /// [`default_estimator_weights`].
    pub estimator_weights: Vec<f64>,
}

impl DatasetProfile {
    /// A profile with community-default learner preferences.
    pub fn new(name: impl Into<String>, regression: bool) -> DatasetProfile {
        DatasetProfile {
            name: name.into(),
            regression,
            has_categorical: false,
            has_text: false,
            has_missing: false,
            estimator_weights: default_estimator_weights(regression),
        }
    }
}

/// The empirical learner distribution of mined Kaggle pipelines: xgboost
/// and gradient boosting dominate, with a long tail (paper Figure 9).
pub fn default_estimator_weights(regression: bool) -> Vec<f64> {
    ESTIMATOR_NAMES
        .iter()
        .map(|name| match *name {
            "xgboost" => 30.0,
            "gradient_boost" => 24.0,
            "lgbm" => 14.0,
            "random_forest" => 12.0,
            "logistic_regression" => {
                if regression {
                    0.0
                } else {
                    9.0
                }
            }
            "linear_svm" => {
                if regression {
                    0.0
                } else {
                    4.0
                }
            }
            "linear_regression" | "ridge" => {
                if regression {
                    8.0
                } else {
                    0.0
                }
            }
            "lasso" => {
                if regression {
                    3.0
                } else {
                    0.0
                }
            }
            "knn" => 3.0,
            "gaussian_nb" => {
                if regression {
                    0.0
                } else {
                    2.0
                }
            }
            "decision_tree" => 4.0,
            "extra_trees" => 2.0,
            _ => 1.0,
        })
        .collect()
}

/// Corpus generation knobs.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Scripts generated per dataset.
    pub scripts_per_dataset: usize,
    /// Expected EDA-noise statements per script (describe/plot/heatmap...).
    pub eda_noise: usize,
    /// Fraction of scripts using unsupported frameworks (torch/keras),
    /// which the filter must reject — the paper found "a vast portion" of
    /// raw scripts unusable.
    pub unsupported_fraction: f64,
    /// Fraction of supported scripts that wrap their preprocessing in a
    /// `def` helper instead of writing it inline — exercised by the
    /// interprocedural pass. Defaults to 0.0 so existing fixed-seed
    /// corpora are byte-identical; the corresponding RNG draw only
    /// happens when the fraction is positive.
    pub helper_fraction: f64,
    /// Fraction of scripts containing an intentionally malformed
    /// statement (real mined notebooks are messy). These scripts fail
    /// strict `analyze` but the recovering
    /// [`analyze_with_diagnostics`](crate::analyze_with_diagnostics)
    /// still produces a graph plus diagnostics. Defaults to 0.0 (same
    /// stream-preservation rule as `helper_fraction`).
    pub malformed_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            scripts_per_dataset: 20,
            eda_noise: 6,
            unsupported_fraction: 0.3,
            helper_fraction: 0.0,
            malformed_fraction: 0.0,
            seed: 0,
        }
    }
}

/// One generated notebook.
#[derive(Debug, Clone)]
pub struct ScriptRecord {
    /// The dataset this script was written against (the Kaggle association
    /// KGpip exploits, §3.4).
    pub dataset: String,
    /// Python source text.
    pub source: String,
}

/// Generates a corpus of scripts for the given dataset profiles.
pub fn generate_corpus(profiles: &[DatasetProfile], cfg: &CorpusConfig) -> Vec<ScriptRecord> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(profiles.len() * cfg.scripts_per_dataset);
    for profile in profiles {
        for _ in 0..cfg.scripts_per_dataset {
            // Guarded draws: a zero fraction takes nothing from the RNG,
            // keeping fixed-seed corpora bit-identical across versions.
            let source =
                if cfg.malformed_fraction > 0.0 && rng.gen::<f64>() < cfg.malformed_fraction {
                    generate_malformed_script(profile, &mut rng)
                } else if rng.gen::<f64>() < cfg.unsupported_fraction {
                    generate_unsupported_script(profile, &mut rng)
                } else {
                    generate_sklearn_script(profile, cfg, &mut rng)
                };
            out.push(ScriptRecord {
                dataset: profile.name.clone(),
                source,
            });
        }
    }
    out
}

/// Weighted index sample.
fn weighted_choice(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut draw = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// `(class name, module, needs regression variant)` for each estimator.
fn estimator_api(index: usize, regression: bool) -> (&'static str, &'static str) {
    match ESTIMATOR_NAMES[index] {
        "logistic_regression" => ("sklearn.linear_model", "LogisticRegression"),
        "linear_svm" => {
            if regression {
                ("sklearn.svm", "LinearSVR")
            } else {
                ("sklearn.svm", "SVC")
            }
        }
        "linear_regression" => ("sklearn.linear_model", "LinearRegression"),
        "ridge" => ("sklearn.linear_model", "Ridge"),
        "lasso" => ("sklearn.linear_model", "Lasso"),
        "knn" => {
            if regression {
                ("sklearn.neighbors", "KNeighborsRegressor")
            } else {
                ("sklearn.neighbors", "KNeighborsClassifier")
            }
        }
        "gaussian_nb" => ("sklearn.naive_bayes", "GaussianNB"),
        "decision_tree" => {
            if regression {
                ("sklearn.tree", "DecisionTreeRegressor")
            } else {
                ("sklearn.tree", "DecisionTreeClassifier")
            }
        }
        "random_forest" => {
            if regression {
                ("sklearn.ensemble", "RandomForestRegressor")
            } else {
                ("sklearn.ensemble", "RandomForestClassifier")
            }
        }
        "extra_trees" => {
            if regression {
                ("sklearn.ensemble", "ExtraTreesRegressor")
            } else {
                ("sklearn.ensemble", "ExtraTreesClassifier")
            }
        }
        "gradient_boost" => {
            if regression {
                ("sklearn.ensemble", "GradientBoostingRegressor")
            } else {
                ("sklearn.ensemble", "GradientBoostingClassifier")
            }
        }
        "xgboost" => {
            if regression {
                ("xgboost", "XGBRegressor")
            } else {
                ("xgboost", "XGBClassifier")
            }
        }
        "lgbm" => {
            if regression {
                ("lightgbm", "LGBMRegressor")
            } else {
                ("lightgbm", "LGBMClassifier")
            }
        }
        other => unreachable!("unknown estimator {other}"),
    }
}

fn transformer_api(index: usize) -> (&'static str, &'static str) {
    match TRANSFORMER_NAMES[index] {
        "simple_imputer" => ("sklearn.impute", "SimpleImputer"),
        "standard_scaler" => ("sklearn.preprocessing", "StandardScaler"),
        "min_max_scaler" => ("sklearn.preprocessing", "MinMaxScaler"),
        "robust_scaler" => ("sklearn.preprocessing", "RobustScaler"),
        "normalizer" => ("sklearn.preprocessing", "Normalizer"),
        "one_hot_encoder" => ("sklearn.preprocessing", "OneHotEncoder"),
        "variance_threshold" => ("sklearn.feature_selection", "VarianceThreshold"),
        "select_k_best" => ("sklearn.feature_selection", "SelectKBest"),
        "pca" => ("sklearn.decomposition", "PCA"),
        "polynomial_features" => ("sklearn.preprocessing", "PolynomialFeatures"),
        other => unreachable!("unknown transformer {other}"),
    }
}

/// Picks 0–3 transformers that make sense for the profile + estimator.
fn pick_transformers(profile: &DatasetProfile, estimator: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut picks = Vec::new();
    let t_index = |name: &str| TRANSFORMER_NAMES.iter().position(|n| *n == name).unwrap();
    if profile.has_missing && rng.gen::<f64>() < 0.8 {
        picks.push(t_index("simple_imputer"));
    }
    if profile.has_categorical && rng.gen::<f64>() < 0.6 {
        picks.push(t_index("one_hot_encoder"));
    }
    // Scale-sensitive learners attract scalers.
    let scale_sensitive = matches!(
        ESTIMATOR_NAMES[estimator],
        "logistic_regression" | "linear_svm" | "knn" | "ridge" | "lasso" | "linear_regression"
    );
    let scaler_prob = if scale_sensitive { 0.8 } else { 0.25 };
    if rng.gen::<f64>() < scaler_prob {
        let scalers = [
            "standard_scaler",
            "min_max_scaler",
            "robust_scaler",
            "normalizer",
        ];
        let pick = *scalers.choose(rng).unwrap();
        picks.push(t_index(pick));
    }
    if rng.gen::<f64>() < 0.15 {
        let extras = [
            "variance_threshold",
            "select_k_best",
            "pca",
            "polynomial_features",
        ];
        picks.push(t_index(extras.choose(rng).unwrap()));
    }
    picks
}

fn generate_sklearn_script(
    profile: &DatasetProfile,
    cfg: &CorpusConfig,
    rng: &mut StdRng,
) -> String {
    let estimator = weighted_choice(&profile.estimator_weights, rng);
    let transformers = pick_transformers(profile, estimator, rng);
    let (est_module, est_class) = estimator_api(estimator, profile.regression);

    let mut src = String::new();
    src.push_str("import pandas as pd\nimport numpy as np\n");
    src.push_str("import matplotlib.pyplot as plt\n");
    src.push_str("from sklearn.model_selection import train_test_split\n");
    for &t in &transformers {
        let (m, c) = transformer_api(t);
        src.push_str(&format!("from {m} import {c}\n"));
    }
    if est_module.starts_with("sklearn") {
        src.push_str(&format!("from {est_module} import {est_class}\n"));
    } else {
        src.push_str(&format!("import {est_module}\n"));
    }
    src.push_str(&format!("df = pd.read_csv('{}.csv')\n", profile.name));

    // EDA noise interleaved with light pandas manipulation.
    let noise_templates = [
        "df.describe()",
        "df.head()",
        "df.info()",
        "plt.hist(df['col0'])",
        "plt.show()",
        "df.corr()",
        "print(df.shape)",
        "df.isnull().sum()",
    ];
    let n_noise = rng.gen_range(cfg.eda_noise / 2..=cfg.eda_noise.max(1) + cfg.eda_noise / 2);
    for _ in 0..n_noise {
        src.push_str(noise_templates.choose(rng).unwrap());
        src.push('\n');
    }
    if profile.has_missing && rng.gen::<f64>() < 0.4 {
        src.push_str("df = df.fillna(0)\n");
    }
    src.push_str("y = df['target']\nX = df.drop('target', 1)\n");
    src.push_str("X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)\n");

    // Interprocedural variant: wrap the whole preprocessing chain in a
    // `def` helper (the analyzer instantiates it at the call site, so the
    // filtered skeleton is identical to the inlined form). The RNG draw
    // is guarded so a zero fraction leaves the stream untouched.
    let use_helper = cfg.helper_fraction > 0.0
        && !transformers.is_empty()
        && rng.gen::<f64>() < cfg.helper_fraction;
    let mut data = "X_train".to_string();
    let mut test_data = "X_test".to_string();
    if use_helper {
        let mut body = String::new();
        let mut d = "data".to_string();
        let mut td = "test".to_string();
        for (i, &t) in transformers.iter().enumerate() {
            let (_, class) = transformer_api(t);
            let ctor_args = transformer_ctor_args(t, rng);
            body.push_str(&format!("    prep{i} = {class}({ctor_args})\n"));
            body.push_str(&format!("    {d}2 = prep{i}.fit_transform({d})\n"));
            body.push_str(&format!("    {td}2 = prep{i}.transform({td})\n"));
            d = format!("{d}2");
            td = format!("{td}2");
        }
        src.push_str("def preprocess(data, test):\n");
        src.push_str(&body);
        src.push_str(&format!("    return {d}\n"));
        src.push_str("X_train_p = preprocess(X_train, X_test)\n");
        data = "X_train_p".to_string();
    } else {
        for (i, &t) in transformers.iter().enumerate() {
            let (_, class) = transformer_api(t);
            let var = format!("prep{i}");
            let ctor_args = transformer_ctor_args(t, rng);
            src.push_str(&format!("{var} = {class}({ctor_args})\n"));
            src.push_str(&format!("{data}2 = {var}.fit_transform({data})\n"));
            src.push_str(&format!("{test_data}2 = {var}.transform({test_data})\n"));
            data = format!("{data}2");
            test_data = format!("{test_data}2");
        }
    }

    let ctor = if est_module.starts_with("sklearn") {
        est_class.to_string()
    } else {
        format!("{est_module}.{est_class}")
    };
    let hp = match ESTIMATOR_NAMES[estimator] {
        "xgboost" | "lgbm" | "gradient_boost" => format!(
            "n_estimators={}, learning_rate=0.{}",
            rng.gen_range(50..300),
            rng.gen_range(1..4)
        ),
        "random_forest" | "extra_trees" => format!("n_estimators={}", rng.gen_range(50..300)),
        "knn" => format!("n_neighbors={}", rng.gen_range(3..15)),
        "logistic_regression" | "linear_svm" => format!("C=1.{}", rng.gen_range(0..9)),
        _ => String::new(),
    };
    src.push_str(&format!("model = {ctor}({hp})\n"));
    src.push_str(&format!("model.fit({data}, y_train)\n"));
    src.push_str(&format!("preds = model.predict({test_data})\n"));
    src.push_str("print(preds)\n");
    src
}

/// Randomized constructor arguments for a transformer (same draw order in
/// the inline and helper emission paths).
fn transformer_ctor_args(t: usize, rng: &mut StdRng) -> String {
    match TRANSFORMER_NAMES[t] {
        "pca" => format!("n_components={}", rng.gen_range(2..20)),
        "select_k_best" => format!("k={}", rng.gen_range(5..30)),
        _ => String::new(),
    }
}

/// A notebook with one intentionally malformed statement, mimicking the
/// messiness of real mined scripts. Strict `analyze` rejects it; the
/// recovering analysis skips the broken statement with a diagnostic and
/// still graphs the rest.
fn generate_malformed_script(profile: &DatasetProfile, rng: &mut StdRng) -> String {
    let glitches = [
        "x = = 3",
        "y = df[",
        "model = ???",
        "s = 'unterminated",
        "for in df:",
    ];
    let mut src = String::new();
    src.push_str("import pandas as pd\n");
    src.push_str(&format!("df = pd.read_csv('{}.csv')\n", profile.name));
    src.push_str("df.head()\n");
    src.push_str(glitches.choose(rng).unwrap());
    src.push('\n');
    src.push_str("df.describe()\nprint(df.shape)\n");
    src
}

/// A deep-learning notebook the §3.4 filter must reject entirely.
fn generate_unsupported_script(profile: &DatasetProfile, rng: &mut StdRng) -> String {
    let framework = if rng.gen::<bool>() { "torch" } else { "keras" };
    let mut src = String::new();
    src.push_str("import pandas as pd\n");
    src.push_str(&format!("import {framework}\n"));
    src.push_str(&format!("df = pd.read_csv('{}.csv')\n", profile.name));
    src.push_str("df.describe()\n");
    match framework {
        "torch" => {
            src.push_str(
                "net = torch.nn.Linear(64, 2)\nopt = torch.optim.Adam(net.parameters())\n",
            );
            src.push_str("out = net.forward(df)\n");
        }
        _ => {
            src.push_str("model = keras.Sequential()\nmodel.compile('adam')\n");
            src.push_str("model.fit(df, df)\n");
        }
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::filter::filter_graph;

    fn profiles() -> Vec<DatasetProfile> {
        vec![
            DatasetProfile {
                has_missing: true,
                has_categorical: true,
                ..DatasetProfile::new("titanic", false)
            },
            DatasetProfile::new("houses", true),
        ]
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let cfg = CorpusConfig {
            scripts_per_dataset: 5,
            ..CorpusConfig::default()
        };
        let a = generate_corpus(&profiles(), &cfg);
        let b = generate_corpus(&profiles(), &cfg);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn every_script_parses_and_analyzes() {
        let cfg = CorpusConfig {
            scripts_per_dataset: 30,
            ..CorpusConfig::default()
        };
        for record in generate_corpus(&profiles(), &cfg) {
            let g = analyze(&record.source)
                .unwrap_or_else(|e| panic!("script failed analysis: {e}\n{}", record.source));
            assert!(g.num_nodes() > 0);
        }
    }

    #[test]
    fn supported_scripts_filter_to_valid_pipelines() {
        let cfg = CorpusConfig {
            scripts_per_dataset: 40,
            unsupported_fraction: 0.0,
            ..CorpusConfig::default()
        };
        let mut valid = 0;
        for record in generate_corpus(&profiles(), &cfg) {
            let filtered = filter_graph(&analyze(&record.source).unwrap());
            if filtered.skeleton().is_some() {
                valid += 1;
            }
        }
        assert_eq!(valid, 80, "every supported script yields a skeleton");
    }

    #[test]
    fn unsupported_scripts_are_rejected_by_filter() {
        let cfg = CorpusConfig {
            scripts_per_dataset: 20,
            unsupported_fraction: 1.0,
            ..CorpusConfig::default()
        };
        for record in generate_corpus(&profiles(), &cfg) {
            let filtered = filter_graph(&analyze(&record.source).unwrap());
            assert_eq!(
                filtered.skeleton(),
                None,
                "torch/keras script must not produce a skeleton"
            );
        }
    }

    #[test]
    fn learner_distribution_is_boosting_heavy() {
        // Fig 9 shape: xgboost + gradient_boost dominate the corpus.
        let cfg = CorpusConfig {
            scripts_per_dataset: 150,
            unsupported_fraction: 0.0,
            ..CorpusConfig::default()
        };
        let mut boosting = 0usize;
        let mut total = 0usize;
        for record in generate_corpus(&profiles(), &cfg) {
            let filtered = filter_graph(&analyze(&record.source).unwrap());
            if let Some((_, est)) = filtered.skeleton() {
                total += 1;
                if est == "xgboost" || est == "gradient_boost" || est == "lgbm" {
                    boosting += 1;
                }
            }
        }
        let frac = boosting as f64 / total as f64;
        assert!(
            (0.4..0.95).contains(&frac),
            "boosting fraction {frac} out of expected band"
        );
    }

    #[test]
    fn regression_profiles_never_pick_classifiers() {
        let cfg = CorpusConfig {
            scripts_per_dataset: 80,
            unsupported_fraction: 0.0,
            ..CorpusConfig::default()
        };
        let reg_profiles = vec![DatasetProfile::new("houses", true)];
        for record in generate_corpus(&reg_profiles, &cfg) {
            let filtered = filter_graph(&analyze(&record.source).unwrap());
            if let Some((_, est)) = filtered.skeleton() {
                assert!(
                    !matches!(est, "logistic_regression" | "gaussian_nb"),
                    "classifier {est} on a regression dataset"
                );
            }
        }
    }

    #[test]
    fn helper_scripts_wrap_preprocessing_and_keep_valid_skeletons() {
        use crate::lint::{lint_code_graph, lint_pipeline_graph};
        let cfg = CorpusConfig {
            scripts_per_dataset: 30,
            unsupported_fraction: 0.0,
            helper_fraction: 1.0,
            ..CorpusConfig::default()
        };
        let mut with_helper = 0usize;
        for record in generate_corpus(&profiles(), &cfg) {
            let raw = analyze(&record.source).unwrap_or_else(|e| {
                panic!("helper script failed analysis: {e}\n{}", record.source)
            });
            assert_eq!(lint_code_graph(&raw), vec![]);
            let filtered = filter_graph(&raw);
            assert_eq!(lint_pipeline_graph(&filtered), vec![]);
            assert!(
                filtered.skeleton().is_some(),
                "helper script must still yield a skeleton:\n{}",
                record.source
            );
            if record.source.contains("def preprocess(") {
                with_helper += 1;
                // The helper's transformers survive the filter.
                let (transformers, _) = filtered.skeleton().unwrap();
                assert!(!transformers.is_empty());
            }
        }
        assert!(
            with_helper > 10,
            "only {with_helper} helper scripts generated"
        );
    }

    #[test]
    fn malformed_scripts_fail_strict_but_recover_with_diagnostics() {
        use crate::analysis::analyze_with_diagnostics;
        let cfg = CorpusConfig {
            scripts_per_dataset: 40,
            unsupported_fraction: 0.0,
            malformed_fraction: 1.0,
            ..CorpusConfig::default()
        };
        for record in generate_corpus(&profiles(), &cfg) {
            assert!(
                analyze(&record.source).is_err(),
                "malformed script unexpectedly passed strict analysis:\n{}",
                record.source
            );
            let (g, diags) = analyze_with_diagnostics(&record.source);
            assert!(
                g.nodes_of_kind(crate::graph::NodeKind::Call)
                    .iter()
                    .any(|&i| g.nodes[i].label == "pandas.read_csv"),
                "recovery must keep the valid statements"
            );
            assert!(!diags.is_empty(), "expected at least one diagnostic");
        }
    }

    #[test]
    fn zero_fractions_preserve_the_legacy_rng_stream() {
        // The new knobs must not move the RNG when disabled: a config
        // with explicit zeros generates the same corpus as the seed-era
        // default-shaped config.
        let base = CorpusConfig {
            scripts_per_dataset: 8,
            ..CorpusConfig::default()
        };
        let extended = CorpusConfig {
            helper_fraction: 0.0,
            malformed_fraction: 0.0,
            ..base.clone()
        };
        let a = generate_corpus(&profiles(), &base);
        let b = generate_corpus(&profiles(), &extended);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn weighted_choice_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let i = weighted_choice(&[0.0, 1.0, 0.0], &mut rng);
            assert_eq!(i, 1);
        }
    }
}
