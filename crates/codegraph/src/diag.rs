//! Span-carrying diagnostics and the sink that collects them.
//!
//! Real mined notebooks are messy: the lexer and parser never abort a
//! script on malformed input. Instead each recoverable problem becomes a
//! [`Diagnostic`] pushed into a [`DiagnosticSink`], and the pass
//! resynchronizes and keeps going. Downstream consumers (corpus mining,
//! the `lint-corpus` CLI) decide whether diagnostics are fatal.

use crate::span::Span;
use serde::{Deserialize, Serialize};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but analyzable (e.g. `return` outside a function).
    Warning,
    /// Malformed input that forced the pass to recover (skip/resync).
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The analyzer pass that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pass {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Dataflow/control-flow analysis (including the interprocedural
    /// pass).
    Analysis,
    /// Graph-invariant verification ([`crate::lint`]).
    Lint,
}

impl std::fmt::Display for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pass::Lex => write!(f, "lex"),
            Pass::Parse => write!(f, "parse"),
            Pass::Analysis => write!(f, "analysis"),
            Pass::Lint => write!(f, "lint"),
        }
    }
}

/// One recovered problem, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Where in the source the problem is.
    pub span: Span,
    /// Error or warning.
    pub severity: Severity,
    /// The pass that detected it.
    pub pass: Pass,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.pass, self.span, self.message
        )
    }
}

/// Collects diagnostics across passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagnosticSink {
    diags: Vec<Diagnostic>,
}

impl DiagnosticSink {
    /// An empty sink.
    pub fn new() -> DiagnosticSink {
        DiagnosticSink::default()
    }

    /// Records an error-severity diagnostic.
    pub fn error(&mut self, pass: Pass, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic {
            span,
            severity: Severity::Error,
            pass,
            message: message.into(),
        });
    }

    /// Records a warning-severity diagnostic.
    pub fn warning(&mut self, pass: Pass, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic {
            span,
            severity: Severity::Warning,
            pass,
            message: message.into(),
        });
    }

    /// Records an already-built diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Moves every diagnostic out of `other` into this sink.
    pub fn absorb(&mut self, mut other: DiagnosticSink) {
        self.diags.append(&mut other.diags);
    }

    /// All diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consumes the sink, yielding its diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// Number of collected diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// True when at least one error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// The first error-severity diagnostic, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diags.iter().find(|d| d.severity == Severity::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_collects_and_classifies() {
        let mut sink = DiagnosticSink::new();
        assert!(sink.is_empty() && !sink.has_errors());
        sink.warning(Pass::Analysis, Span::at_line(3), "odd but fine");
        assert!(!sink.has_errors());
        sink.error(Pass::Parse, Span::at_line(5), "bad statement");
        assert!(sink.has_errors());
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.first_error().unwrap().span.line, 5);
    }

    #[test]
    fn display_is_compact() {
        let d = Diagnostic {
            span: Span::new(10, 12, 2, 5),
            severity: Severity::Error,
            pass: Pass::Lex,
            message: "unterminated string".into(),
        };
        assert_eq!(d.to_string(), "error[lex] 2:5: unterminated string");
    }

    #[test]
    fn absorb_merges_in_order() {
        let mut a = DiagnosticSink::new();
        a.warning(Pass::Lex, Span::at_line(1), "w");
        let mut b = DiagnosticSink::new();
        b.error(Pass::Parse, Span::at_line(2), "e");
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.diagnostics()[1].span.line, 2);
    }
}
