//! The §3.4 code-graph filter.
//!
//! "We filter out these types of nodes and edges [data analysis,
//! visualization, model evaluation], as well as calls to modules outside
//! the target ML libraries, namely, Scikit-learn, XGBoost, and LGBM" —
//! keeping "a sub-graph representing mainly a flow of objects through
//! transformation and modelling functions". The paper reports a ≥96%
//! node/edge reduction (Table 3, Figure 4).

use crate::graph::{CodeGraph, EdgeKind, NodeId, NodeKind};
use crate::vocab::{canonical_op, PipelineOp};
use serde::{Deserialize, Serialize};

/// A filtered, compact pipeline graph. Node ids are dense indices into
/// `ops`; edges are directed dataflow.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineGraph {
    /// Node types in insertion order.
    pub ops: Vec<PipelineOp>,
    /// Directed dataflow edges between node indices.
    pub edges: Vec<(usize, usize)>,
}

impl PipelineGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.ops.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Prepends a dataset node, shifting all existing indices by one.
    /// This is the Graph4ML interconnection step of §3.4/Figure 4.
    ///
    /// The dataset node is linked to every `read_csv` op. When the graph
    /// has no `read_csv` at all (the paper's "the code ... does not
    /// explicitly mention the dataset name" case, where the dataset
    /// association comes from portal metadata instead), the dataset node
    /// falls back to feeding node 0 — the first op of the pipeline — so
    /// the anchor is never left disconnected. The resulting edge list is
    /// sorted and deduplicated, so attaching the dataset node can never
    /// introduce duplicate `dataset -> read_csv` edges even if the input
    /// edge list already contained duplicates.
    pub fn with_dataset_node(&self) -> PipelineGraph {
        let mut ops = Vec::with_capacity(self.ops.len() + 1);
        ops.push(PipelineOp::Dataset);
        ops.extend(self.ops.iter().copied());
        let mut edges: Vec<(usize, usize)> =
            self.edges.iter().map(|&(f, t)| (f + 1, t + 1)).collect();
        let mut attached = false;
        for (i, op) in self.ops.iter().enumerate() {
            if *op == PipelineOp::ReadCsv {
                edges.push((0, i + 1));
                attached = true;
            }
        }
        if !attached && !self.ops.is_empty() {
            edges.push((0, 1));
        }
        edges.sort_unstable();
        edges.dedup();
        PipelineGraph { ops, edges }
    }

    /// Extracts the pipeline skeleton: ordered transformer names plus the
    /// estimator name (paper §3.6: "each skeleton is a set of
    /// pre-processors and an estimator"). Returns `None` when the graph
    /// contains no estimator — an invalid pipeline.
    pub fn skeleton(&self) -> Option<(Vec<&'static str>, &'static str)> {
        let estimator = self.ops.iter().find(|op| op.is_estimator())?;
        // Transformers ordered by their position in the dataflow chain:
        // a stable topological-ish order by node index (builders insert in
        // flow order).
        let transformers: Vec<&'static str> = self
            .ops
            .iter()
            .filter(|op| op.is_transformer())
            .map(|op| op.name())
            .collect();
        Some((transformers, estimator.name()))
    }

    /// Out-neighbours of a node.
    pub fn successors(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == node)
            .map(|(_, t)| *t)
            .collect()
    }
}

/// Maps a resolved call label to its canonical pipeline op, treating
/// `fit`-family methods (`fit`, `fit_transform`, `transform`) as [`PipelineOp::Fit`]
/// and `predict`-family methods (`predict`, `predict_proba`, `score`) as
/// [`PipelineOp::Predict`] when the receiver is a recognized ML object.
pub fn op_of_label(label: &str) -> Option<PipelineOp> {
    if let Some(op) = canonical_op(label) {
        return Some(op);
    }
    for suffix in [".fit_transform", ".transform"] {
        if let Some(prefix) = label.strip_suffix(suffix) {
            if canonical_op(prefix).is_some() {
                return Some(PipelineOp::Fit);
            }
        }
    }
    for suffix in [".predict_proba", ".score"] {
        if let Some(prefix) = label.strip_suffix(suffix) {
            if canonical_op(prefix).is_some() {
                return Some(PipelineOp::Predict);
            }
        }
    }
    None
}

/// Filters a raw code graph into a [`PipelineGraph`].
///
/// Keep rule: call nodes whose label maps to a canonical op AND that are
/// weakly connected to a `read_csv` node through dataflow (if the script
/// has one; scripts without read_csv keep all canonical nodes — their
/// dataset association comes from portal metadata, §3.4: "In some cases,
/// the code ... does not explicitly mention the dataset name").
///
/// Edges: kept node *i* → kept node *j* when a directed dataflow path from
/// *i* to *j* exists whose interior passes through no other kept node
/// (paths through dropped pandas-manipulation calls collapse to one edge).
pub fn filter_graph(graph: &CodeGraph) -> PipelineGraph {
    let flow_kinds = [EdgeKind::DataFlow, EdgeKind::ConstantArg];
    // Candidate canonical nodes.
    let candidates: Vec<(NodeId, PipelineOp)> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.kind == NodeKind::Call)
        .filter_map(|(i, n)| op_of_label(&n.label).map(|op| (i, op)))
        .collect();
    if candidates.is_empty() {
        return PipelineGraph::default();
    }
    // Weak connectivity to read_csv over dataflow.
    let read_nodes: Vec<NodeId> = candidates
        .iter()
        .filter(|(_, op)| *op == PipelineOp::ReadCsv)
        .map(|(i, _)| *i)
        .collect();
    let kept: Vec<(NodeId, PipelineOp)> = if read_nodes.is_empty() {
        candidates
    } else {
        let component = weak_component(graph, &read_nodes, &flow_kinds);
        candidates
            .into_iter()
            .filter(|(i, _)| component[*i])
            .collect()
    };
    let index_of: std::collections::HashMap<NodeId, usize> = kept
        .iter()
        .enumerate()
        .map(|(dense, (raw, _))| (*raw, dense))
        .collect();
    let mut out = PipelineGraph {
        ops: kept.iter().map(|(_, op)| *op).collect(),
        edges: Vec::new(),
    };
    // Collapsed dataflow edges.
    let n = graph.num_nodes();
    let mut succ: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for e in &graph.edges {
        if e.kind == EdgeKind::DataFlow {
            succ[e.from].push(e.to);
        }
    }
    for (raw, _) in &kept {
        // BFS that stops at kept nodes (they become edge targets).
        let mut seen = vec![false; n];
        seen[*raw] = true;
        let mut stack: Vec<NodeId> = succ[*raw].clone();
        while let Some(at) = stack.pop() {
            if seen[at] {
                continue;
            }
            seen[at] = true;
            if let Some(&dense_to) = index_of.get(&at) {
                let dense_from = index_of[raw];
                if dense_from != dense_to {
                    out.edges.push((dense_from, dense_to));
                }
                continue; // do not pass through kept nodes
            }
            stack.extend(succ[at].iter().copied());
        }
    }
    out.edges.sort_unstable();
    out.edges.dedup();
    debug_assert!(
        !crate::lint::has_errors(&crate::lint::lint_pipeline_graph(&out)),
        "filter produced a pipeline graph violating structural invariants: {:?}",
        crate::lint::lint_pipeline_graph(&out)
    );
    out
}

/// Marks all nodes weakly connected (undirected) to any seed over the
/// given edge kinds.
fn weak_component(graph: &CodeGraph, seeds: &[NodeId], kinds: &[EdgeKind]) -> Vec<bool> {
    let n = graph.num_nodes();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for e in &graph.edges {
        if kinds.contains(&e.kind) {
            adj[e.from].push(e.to);
            adj[e.to].push(e.from);
        }
    }
    let mut seen = vec![false; n];
    let mut stack: Vec<NodeId> = seeds.to_vec();
    for s in seeds {
        seen[*s] = true;
    }
    while let Some(at) = stack.pop() {
        for &next in &adj[at] {
            if !seen[next] {
                seen[next] = true;
                stack.push(next);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    const FIG2: &str = "\
import pandas as pd
from sklearn.model_selection import train_test_split
from sklearn import svm
df = pd.read_csv('example.csv')
df_train, df_test = train_test_split(df)
X = df_train['X']
model = svm.SVC()
model.fit(X, df_train['Y'])
";

    #[test]
    fn figure2_filters_to_figure4() {
        let raw = analyze(FIG2).unwrap();
        let filtered = filter_graph(&raw);
        assert_eq!(
            filtered.ops,
            vec![
                PipelineOp::ReadCsv,
                PipelineOp::TrainTestSplit,
                PipelineOp::Estimator(1), // linear_svm (SVC)
                PipelineOp::Fit,
            ]
        );
        // read_csv -> split, split -> fit, svc -> fit.
        assert!(filtered.edges.contains(&(0, 1)));
        assert!(filtered.edges.contains(&(1, 3)));
        assert!(filtered.edges.contains(&(2, 3)));
    }

    #[test]
    fn filter_achieves_papers_reduction_rate() {
        // A realistic notebook with heavy EDA noise: the filter must drop
        // well over 90% of nodes and edges (Table 3 reports >= 96%).
        let mut src = String::from(
            "import pandas as pd\nimport matplotlib.pyplot as plt\nfrom sklearn.ensemble import GradientBoostingClassifier\ndf = pd.read_csv('train.csv')\n",
        );
        for i in 0..15 {
            src.push_str(&format!("df.describe()\nplt.plot(df['c{i}'])\nplt.show()\ndf_{i} = df.fillna({i})\ndf = df_{i}.dropna()\n"));
        }
        src.push_str(
            "m = GradientBoostingClassifier(n_estimators=100, learning_rate=0.1)\nm.fit(df, df)\n",
        );
        let raw = analyze(&src).unwrap();
        let filtered = filter_graph(&raw);
        let node_reduction = 1.0 - filtered.num_nodes() as f64 / raw.num_nodes() as f64;
        let edge_reduction = 1.0 - filtered.num_edges() as f64 / raw.num_edges() as f64;
        assert!(
            node_reduction > 0.9,
            "node reduction {node_reduction} (raw {} -> {})",
            raw.num_nodes(),
            filtered.num_nodes()
        );
        assert!(edge_reduction > 0.95, "edge reduction {edge_reduction}");
        // But the ML essentials survive.
        assert!(filtered.ops.contains(&PipelineOp::ReadCsv));
        assert!(filtered.ops.contains(&PipelineOp::Estimator(10)));
    }

    #[test]
    fn collapsed_edges_skip_dropped_nodes() {
        // read_csv -> fillna (dropped) -> scaler.fit_transform: the filter
        // must connect read_csv directly to the scaler fit node.
        let src = "\
import pandas as pd
from sklearn.preprocessing import StandardScaler
df = pd.read_csv('a.csv')
df2 = df.fillna(0)
s = StandardScaler()
x = s.fit_transform(df2)
";
        let raw = analyze(src).unwrap();
        let filtered = filter_graph(&raw);
        assert_eq!(
            filtered.ops,
            vec![
                PipelineOp::ReadCsv,
                PipelineOp::Transformer(1),
                PipelineOp::Fit
            ]
        );
        assert!(
            filtered.edges.contains(&(0, 2)),
            "read_csv should reach the fit through the dropped fillna: {:?}",
            filtered.edges
        );
    }

    #[test]
    fn torch_only_script_filters_to_nothing() {
        let src = "import torch\nnet = torch.nn.Linear(4, 2)\nnet.forward(x)\n";
        let raw = analyze(src).unwrap();
        let filtered = filter_graph(&raw);
        assert_eq!(filtered.num_nodes(), 0);
        assert_eq!(filtered.skeleton(), None, "no estimator => invalid");
    }

    #[test]
    fn skeleton_extraction() {
        let src = "\
import pandas as pd
from sklearn.preprocessing import StandardScaler
from sklearn.decomposition import PCA
import xgboost
df = pd.read_csv('a.csv')
s = StandardScaler()
x = s.fit_transform(df)
p = PCA(n_components=5)
x2 = p.fit_transform(x)
m = xgboost.XGBClassifier()
m.fit(x2, df)
";
        let raw = analyze(src).unwrap();
        let filtered = filter_graph(&raw);
        let (transformers, estimator) = filtered.skeleton().unwrap();
        assert_eq!(transformers, vec!["standard_scaler", "pca"]);
        assert_eq!(estimator, "xgboost");
    }

    #[test]
    fn with_dataset_node_prepends_and_links() {
        let src = "import pandas as pd\nfrom sklearn.svm import SVC\ndf = pd.read_csv('a.csv')\nm = SVC()\nm.fit(df, df)\n";
        let raw = analyze(src).unwrap();
        let g = filter_graph(&raw).with_dataset_node();
        assert_eq!(g.ops[0], PipelineOp::Dataset);
        assert_eq!(g.ops[1], PipelineOp::ReadCsv);
        assert!(g.edges.contains(&(0, 1)), "dataset flows into read_csv");
    }

    #[test]
    fn op_of_label_handles_method_families() {
        assert_eq!(
            op_of_label("sklearn.preprocessing.StandardScaler.fit_transform"),
            Some(PipelineOp::Fit)
        );
        assert_eq!(
            op_of_label("xgboost.XGBClassifier.predict_proba"),
            Some(PipelineOp::Predict)
        );
        assert_eq!(op_of_label("pandas.DataFrame.fillna"), None);
        assert_eq!(op_of_label("object.fit"), None);
    }

    #[test]
    fn disconnected_ml_island_is_dropped_when_read_csv_exists() {
        // An SVC never connected to the data must be filtered out (it is
        // not part of the object flow from read_csv).
        let src = "\
import pandas as pd
from sklearn.svm import SVC
df = pd.read_csv('a.csv')
df.describe()
m = SVC()
";
        let raw = analyze(src).unwrap();
        let filtered = filter_graph(&raw);
        assert_eq!(filtered.ops, vec![PipelineOp::ReadCsv]);
    }
}
