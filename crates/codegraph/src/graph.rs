//! The code-graph model produced by static analysis.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

/// Identifier of a node inside a [`CodeGraph`].
pub type NodeId = usize;

/// An interned node label: a shared, immutable string.
///
/// Raw code graphs repeat the same handful of strings thousands of times
/// (`pandas.read_csv`, `loc:12`, `doc:...`); storing each occurrence as an
/// owned `String` made node construction and graph clones allocation-bound.
/// A `Label` is an `Arc<str>` — cloning is a reference-count bump, and the
/// analyzer's [`LabelInterner`] hands out one allocation per *distinct*
/// string. Serialization is a plain JSON string, byte-identical to the
/// pre-interning `String` representation, so persisted graphs from either
/// era load interchangeably.
#[derive(Debug, Clone, Eq)]
pub struct Label(Arc<str>);

impl Label {
    /// Creates a fresh (un-pooled) label.
    pub fn new(s: &str) -> Label {
        Label(Arc::from(s))
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Label {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Label) -> bool {
        // Pointer equality first: interned duplicates share the allocation.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl std::hash::Hash for Label {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Label {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Label {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Label {
        Label(Arc::from(s))
    }
}

impl From<&Label> for String {
    fn from(l: &Label) -> String {
        l.as_str().to_string()
    }
}

impl Serialize for Label {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Label {
    fn from_value(v: &serde::Value) -> Result<Label, serde::DeError> {
        match v {
            serde::Value::Str(s) => Ok(Label::new(s)),
            other => Err(serde::DeError(format!(
                "expected string label, found {}",
                other.kind_name()
            ))),
        }
    }
}

/// A pool of interned [`Label`]s: one allocation per distinct string.
///
/// The analyzer keeps one interner per script; every `add_node` label goes
/// through it, so the thousands of repeated noise labels a raw graph
/// carries collapse to reference-count bumps on a few dozen allocations.
#[derive(Debug, Default)]
pub struct LabelInterner {
    pool: HashSet<Arc<str>>,
}

impl LabelInterner {
    /// Creates an empty pool.
    pub fn new() -> LabelInterner {
        LabelInterner::default()
    }

    /// Returns the pooled label for `s`, allocating on first sight.
    pub fn intern(&mut self, s: &str) -> Label {
        if let Some(existing) = self.pool.get(s) {
            return Label(existing.clone());
        }
        let arc: Arc<str> = Arc::from(s);
        self.pool.insert(arc.clone());
        Label(arc)
    }

    /// Interns an owned string without re-copying on first sight.
    pub fn intern_owned(&mut self, s: String) -> Label {
        if let Some(existing) = self.pool.get(s.as_str()) {
            return Label(existing.clone());
        }
        let arc: Arc<str> = Arc::from(s);
        self.pool.insert(arc.clone());
        Label(arc)
    }

    /// Number of distinct strings pooled.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

/// The kind of a code-graph node. The kinds mirror GraphGen4Code's node
/// vocabulary as described in paper §3.3: call nodes, constants, plus the
/// "numerous other nodes, such as nodes for locations in code files" that
/// the §3.4 filter later removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An API/function invocation; the label is the resolved dotted path
    /// (e.g. `sklearn.svm.SVC` or `pandas.read_csv`).
    Call,
    /// A literal constant argument.
    Constant,
    /// A source-location node (file/line bookkeeping) — filter noise.
    Location,
    /// A formal-parameter node attached to a call — filter noise.
    Parameter,
    /// A documentation node attached to a call — filter noise.
    Documentation,
    /// A dataset anchor node added by Graph4ML assembly (§3.4/Figure 4).
    Dataset,
}

/// The kind of a code-graph edge. Control flow is rendered gray and data
/// flow black in the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Value flows from producer to consumer.
    DataFlow,
    /// Execution order between consecutive calls.
    ControlFlow,
    /// Transitive closure of data flow (GraphGen4Code's `flowsTo`-style
    /// reachability edges; the bulk of raw-graph edge volume).
    TransitiveDataFlow,
    /// Call → parameter-node linkage — filter noise.
    Parameter,
    /// Call → location-node linkage — filter noise.
    Location,
    /// Call → documentation-node linkage — filter noise.
    Documentation,
    /// Constant argument feeding a call.
    ConstantArg,
}

/// A node of a code graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's kind.
    pub kind: NodeKind,
    /// Human-readable label: dotted API path for calls, rendered literal
    /// for constants, bookkeeping text for noise nodes. Interned — clones
    /// share one allocation per distinct string.
    pub label: Label,
    /// Source location of the statement that produced this node
    /// ([`Span::synthetic`] for nodes with no source origin, e.g. the
    /// Graph4ML dataset anchor).
    pub span: Span,
}

/// An edge of a code graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// A static-analysis graph of one script (GraphGen4Code substitute).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CodeGraph {
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// All edges.
    pub edges: Vec<Edge>,
}

impl CodeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id. Callers with many repeated labels
    /// should pass pre-interned [`Label`]s (see [`LabelInterner`]); plain
    /// `&str`/`String` labels allocate individually.
    pub fn add_node(&mut self, kind: NodeKind, label: impl Into<Label>, span: Span) -> NodeId {
        self.nodes.push(Node {
            kind,
            label: label.into(),
            span,
        });
        self.nodes.len() - 1
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        debug_assert!(from < self.nodes.len() && to < self.nodes.len());
        self.edges.push(Edge { from, to, kind });
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Ids of nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Out-neighbours reachable via edges of the given kinds.
    pub fn successors(&self, from: NodeId, kinds: &[EdgeKind]) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.from == from && kinds.contains(&e.kind))
            .map(|e| e.to)
            .collect()
    }

    /// All nodes reachable from `start` via edges of the given kinds
    /// (including `start`). Returns an empty set when `start` is out of
    /// bounds.
    pub fn reachable(&self, start: NodeId, kinds: &[EdgeKind]) -> Vec<NodeId> {
        if start >= self.nodes.len() {
            return Vec::new();
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut out = Vec::new();
        while let Some(at) = stack.pop() {
            out.push(at);
            for next in self.successors(at, kinds) {
                if next < seen.len() && !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = CodeGraph::new();
        let a = g.add_node(NodeKind::Call, "pandas.read_csv", Span::at_line(1));
        let b = g.add_node(NodeKind::Call, "sklearn.svm.SVC", Span::at_line(2));
        let c = g.add_node(NodeKind::Location, "file:2", Span::at_line(2));
        g.add_edge(a, b, EdgeKind::DataFlow);
        g.add_edge(b, c, EdgeKind::Location);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.nodes_of_kind(NodeKind::Call), vec![a, b]);
        assert_eq!(g.successors(a, &[EdgeKind::DataFlow]), vec![b]);
        assert!(g.successors(a, &[EdgeKind::Location]).is_empty());
    }

    #[test]
    fn reachability_respects_edge_kinds() {
        let mut g = CodeGraph::new();
        let a = g.add_node(NodeKind::Call, "a", Span::at_line(1));
        let b = g.add_node(NodeKind::Call, "b", Span::at_line(2));
        let c = g.add_node(NodeKind::Call, "c", Span::at_line(3));
        g.add_edge(a, b, EdgeKind::DataFlow);
        g.add_edge(b, c, EdgeKind::ControlFlow);
        assert_eq!(g.reachable(a, &[EdgeKind::DataFlow]), vec![a, b]);
        assert_eq!(
            g.reachable(a, &[EdgeKind::DataFlow, EdgeKind::ControlFlow]),
            vec![a, b, c]
        );
    }

    #[test]
    fn reachability_handles_cycles() {
        let mut g = CodeGraph::new();
        let a = g.add_node(NodeKind::Call, "a", Span::at_line(1));
        let b = g.add_node(NodeKind::Call, "b", Span::at_line(2));
        g.add_edge(a, b, EdgeKind::DataFlow);
        g.add_edge(b, a, EdgeKind::DataFlow);
        assert_eq!(g.reachable(a, &[EdgeKind::DataFlow]), vec![a, b]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut g = CodeGraph::new();
        let a = g.add_node(NodeKind::Call, "pandas.read_csv", Span::at_line(1));
        let b = g.add_node(NodeKind::Constant, "'x.csv'", Span::at_line(1));
        g.add_edge(b, a, EdgeKind::ConstantArg);
        let json = serde_json::to_string(&g).unwrap();
        let back: CodeGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn interner_shares_allocations() {
        let mut pool = LabelInterner::new();
        let a = pool.intern("pandas.read_csv");
        let b = pool.intern("pandas.read_csv");
        let c = pool.intern_owned("loc:1".to_string());
        assert!(Arc::ptr_eq(&a.0, &b.0), "duplicates share one allocation");
        assert_eq!(pool.len(), 2);
        assert_eq!(a, "pandas.read_csv");
        assert_eq!(c, "loc:1");
        assert_ne!(a, c);
    }

    #[test]
    fn labels_serialize_as_plain_strings() {
        // The interned representation must stay byte-compatible with the
        // pre-interning `String` field: a label is a bare JSON string.
        let label = Label::new("sklearn.svm.SVC");
        assert_eq!(
            serde_json::to_string(&label).unwrap(),
            "\"sklearn.svm.SVC\""
        );
        let back: Label = serde_json::from_str("\"sklearn.svm.SVC\"").unwrap();
        assert_eq!(back, label);
    }
}
