//! Graph4ML: the interconnected training graph of datasets and pipelines.
//!
//! Paper §3.4: "KGpip links the filtered ML pipelines with a unique dataset
//! name ... The result of adding these dataset nodes is a highly
//! interconnected graph for ML pipelines, we refer to it as Graph4ML. Our
//! Graph4ML captures both the code and data aspects of ML pipelines."

use crate::filter::PipelineGraph;
use crate::vocab::PipelineOp;
use std::collections::BTreeMap;

/// The assembled training corpus: filtered pipeline graphs grouped by the
/// dataset they were applied to, each carrying its dataset anchor node.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Graph4Ml {
    datasets: Vec<String>,
    /// `(dataset index, pipeline graph with dataset node at index 0)`.
    pipelines: Vec<(usize, PipelineGraph)>,
}

impl Graph4Ml {
    /// Creates an empty Graph4ML.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dataset (idempotent), returning its index.
    pub fn dataset_index(&mut self, name: &str) -> usize {
        match self.datasets.iter().position(|d| d == name) {
            Some(i) => i,
            None => {
                self.datasets.push(name.to_string());
                self.datasets.len() - 1
            }
        }
    }

    /// Adds a filtered pipeline for a dataset. The dataset anchor node is
    /// attached here (Figure 4); empty pipelines are ignored.
    pub fn add_pipeline(&mut self, dataset: &str, pipeline: &PipelineGraph) {
        if pipeline.num_nodes() == 0 {
            return;
        }
        let idx = self.dataset_index(dataset);
        self.pipelines.push((idx, pipeline.with_dataset_node()));
    }

    /// Dataset names in registration order.
    pub fn datasets(&self) -> &[String] {
        &self.datasets
    }

    /// All `(dataset index, pipeline)` entries.
    pub fn pipelines(&self) -> &[(usize, PipelineGraph)] {
        &self.pipelines
    }

    /// Pipelines recorded for one dataset.
    pub fn pipelines_for(&self, dataset: &str) -> Vec<&PipelineGraph> {
        let Some(idx) = self.datasets.iter().position(|d| d == dataset) else {
            return Vec::new();
        };
        self.pipelines
            .iter()
            .filter(|(d, _)| *d == idx)
            .map(|(_, g)| g)
            .collect()
    }

    /// Total node count across all pipelines.
    pub fn total_nodes(&self) -> usize {
        self.pipelines.iter().map(|(_, g)| g.num_nodes()).sum()
    }

    /// Total edge count across all pipelines.
    pub fn total_edges(&self) -> usize {
        self.pipelines.iter().map(|(_, g)| g.num_edges()).sum()
    }

    /// Occurrence counts of each op across all pipelines (Figure 9:
    /// "learners and transformers found at least 10 times in the training
    /// pipelines").
    pub fn op_counts(&self) -> BTreeMap<PipelineOp, usize> {
        let mut counts = BTreeMap::new();
        for (_, g) in &self.pipelines {
            for op in &g.ops {
                *counts.entry(*op).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_pipeline(estimator: u8) -> PipelineGraph {
        PipelineGraph {
            ops: vec![
                PipelineOp::ReadCsv,
                PipelineOp::Transformer(1),
                PipelineOp::Estimator(estimator),
            ],
            edges: vec![(0, 1), (1, 2)],
        }
    }

    #[test]
    fn datasets_are_deduplicated() {
        let mut g = Graph4Ml::new();
        g.add_pipeline("titanic", &toy_pipeline(11));
        g.add_pipeline("titanic", &toy_pipeline(10));
        g.add_pipeline("houses", &toy_pipeline(3));
        assert_eq!(g.datasets(), &["titanic".to_string(), "houses".to_string()]);
        assert_eq!(g.pipelines_for("titanic").len(), 2);
        assert_eq!(g.pipelines_for("houses").len(), 1);
        assert!(g.pipelines_for("unknown").is_empty());
    }

    #[test]
    fn dataset_node_is_attached() {
        let mut g = Graph4Ml::new();
        g.add_pipeline("d", &toy_pipeline(0));
        let p = &g.pipelines_for("d")[0];
        assert_eq!(p.ops[0], PipelineOp::Dataset);
        assert_eq!(p.num_nodes(), 4);
        assert!(p.edges.contains(&(0, 1)));
    }

    #[test]
    fn empty_pipelines_are_ignored() {
        let mut g = Graph4Ml::new();
        g.add_pipeline("d", &PipelineGraph::default());
        assert_eq!(g.pipelines().len(), 0);
        assert_eq!(g.total_nodes(), 0);
    }

    #[test]
    fn op_counts_aggregate() {
        let mut g = Graph4Ml::new();
        g.add_pipeline("a", &toy_pipeline(11));
        g.add_pipeline("b", &toy_pipeline(11));
        let counts = g.op_counts();
        assert_eq!(counts[&PipelineOp::Estimator(11)], 2);
        assert_eq!(counts[&PipelineOp::Dataset], 2);
        assert_eq!(counts[&PipelineOp::Transformer(1)], 2);
    }
}
