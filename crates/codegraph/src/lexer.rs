//! Tokenizer for the analyzed Python subset, with indentation tracking,
//! byte-span source locations, and error recovery.
//!
//! The primary entry point is [`lex`], which never fails: malformed input
//! (unterminated strings, stray characters, inconsistent dedents) becomes
//! [`Diagnostic`]s in the returned sink while tokenization continues on
//! the next character. [`tokenize`] is the strict wrapper that turns the
//! first error-severity diagnostic into a [`CodeGraphError::Lex`].

use crate::diag::{Diagnostic, DiagnosticSink, Pass};
use crate::span::Span;
use crate::{CodeGraphError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Name(String),
    /// Numeric literal.
    Num(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Any operator or punctuation lexeme (`=`, `(`, `.`, `==`, ...).
    Op(String),
    /// Logical end of statement.
    Newline,
    /// Block start (indentation increased).
    Indent,
    /// Block end (indentation decreased).
    Dedent,
    /// End of input.
    Eof,
}

/// A token plus its source span (byte range and line/column start).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Source location of the token.
    pub span: Span,
}

/// Tokenizes a script, recovering from malformed input. Comments
/// (`# ...`) and blank lines are skipped; indentation produces
/// `Indent`/`Dedent` tokens; parentheses suppress newline tokens
/// (implicit line joining). Lexical problems are recorded in the
/// returned sink (severity [`crate::diag::Severity::Error`]) and the
/// offending characters are skipped, so the token stream always ends in
/// `Eof` and every `Indent` has a matching `Dedent`.
pub fn lex(source: &str) -> (Vec<Spanned>, DiagnosticSink) {
    let mut out: Vec<Spanned> = Vec::new();
    let mut sink = DiagnosticSink::new();
    let mut indents: Vec<usize> = vec![0];
    let mut paren_depth = 0usize;
    let mut line_start = 0usize; // byte offset of the current line
    let mut last_line = 1usize;

    for (line_idx, raw_line) in source.split('\n').enumerate() {
        let line_no = line_idx + 1;
        last_line = line_no;
        // Strip comments outside strings (prefix-preserving, so byte
        // offsets into the stripped line are valid into the raw line).
        let line = strip_comment(raw_line);
        if line.trim().is_empty() && paren_depth == 0 {
            line_start += raw_line.len() + 1;
            continue;
        }
        if paren_depth == 0 {
            let indent = line.len() - line.trim_start_matches(' ').len();
            let here = Span::new(line_start, line_start + indent, line_no, 1);
            let current = indents.last().copied().unwrap_or(0);
            match indent.cmp(&current) {
                std::cmp::Ordering::Greater => {
                    indents.push(indent);
                    out.push(Spanned {
                        token: Token::Indent,
                        span: here,
                    });
                }
                std::cmp::Ordering::Less => {
                    while indents.last().copied().unwrap_or(0) > indent {
                        indents.pop();
                        out.push(Spanned {
                            token: Token::Dedent,
                            span: here,
                        });
                    }
                    if indents.last().copied().unwrap_or(0) != indent {
                        // Recover by opening a block at the odd level, so
                        // later dedents stay balanced.
                        sink.error(Pass::Lex, here, "inconsistent dedent");
                        indents.push(indent);
                        out.push(Spanned {
                            token: Token::Indent,
                            span: here,
                        });
                    }
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        tokenize_line(
            &line,
            line_no,
            line_start,
            &mut out,
            &mut paren_depth,
            &mut sink,
        );
        if paren_depth == 0 {
            out.push(Spanned {
                token: Token::Newline,
                span: Span::new(
                    line_start + line.len(),
                    line_start + line.len(),
                    line_no,
                    line.chars().count() + 1,
                ),
            });
        }
        line_start += raw_line.len() + 1;
    }
    let eof_span = Span::new(source.len(), source.len(), last_line.max(1), 1);
    while indents.len() > 1 {
        indents.pop();
        out.push(Spanned {
            token: Token::Dedent,
            span: eof_span,
        });
    }
    out.push(Spanned {
        token: Token::Eof,
        span: eof_span,
    });
    (out, sink)
}

/// Strict tokenization: like [`lex`], but the first error-severity
/// diagnostic aborts with a [`CodeGraphError::Lex`].
pub fn tokenize(source: &str) -> Result<Vec<Spanned>> {
    let (tokens, sink) = lex(source);
    match sink.first_error() {
        Some(diag) => Err(lex_error(diag)),
        None => Ok(tokens),
    }
}

/// Converts a lex diagnostic into the strict-API error type.
pub(crate) fn lex_error(diag: &Diagnostic) -> CodeGraphError {
    CodeGraphError::Lex {
        line: diag.span.line,
        message: diag.message.clone(),
    }
}

fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut quote: Option<char> = None;
    for ch in line.chars() {
        match quote {
            Some(q) => {
                out.push(ch);
                if ch == q {
                    quote = None;
                }
            }
            None => {
                if ch == '#' {
                    break;
                }
                if ch == '\'' || ch == '"' {
                    quote = Some(ch);
                }
                out.push(ch);
            }
        }
    }
    out
}

fn tokenize_line(
    line: &str,
    line_no: usize,
    line_start: usize,
    out: &mut Vec<Spanned>,
    paren_depth: &mut usize,
    sink: &mut DiagnosticSink,
) {
    // (byte offset within line, char) pairs; chars[i].0 gives the byte
    // position of char i, and byte_at(len) == line.len().
    let chars: Vec<(usize, char)> = line.char_indices().collect();
    let byte_at = |i: usize| chars.get(i).map(|(b, _)| *b).unwrap_or(line.len());
    // Span of chars [from..to), absolute into the source.
    let span_of = |from: usize, to: usize| {
        Span::new(
            line_start + byte_at(from),
            line_start + byte_at(to),
            line_no,
            from + 1,
        )
    };
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i].1;
        if c == ' ' || c == '\t' {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].1.is_ascii_alphanumeric() || chars[i].1 == '_') {
                i += 1;
            }
            out.push(Spanned {
                token: Token::Name(chars[start..i].iter().map(|(_, c)| c).collect()),
                span: span_of(start, i),
            });
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < chars.len() && chars[i + 1].1.is_ascii_digit())
        {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len()
                && (chars[i].1.is_ascii_digit()
                    || (chars[i].1 == '.' && !seen_dot)
                    || chars[i].1 == 'e'
                    || chars[i].1 == 'E'
                    || ((chars[i].1 == '+' || chars[i].1 == '-')
                        && i > start
                        && (chars[i - 1].1 == 'e' || chars[i - 1].1 == 'E')))
            {
                if chars[i].1 == '.' {
                    seen_dot = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().map(|(_, c)| c).collect();
            match text.parse::<f64>() {
                Ok(value) => out.push(Spanned {
                    token: Token::Num(value),
                    span: span_of(start, i),
                }),
                // Recover by dropping the malformed literal.
                Err(_) => sink.error(Pass::Lex, span_of(start, i), format!("bad number `{text}`")),
            }
            continue;
        }
        if c == '\'' || c == '"' {
            let quote = c;
            let start = i;
            i += 1;
            let mut s = String::new();
            let mut closed = false;
            while i < chars.len() {
                if chars[i].1 == '\\' && i + 1 < chars.len() {
                    let esc = chars[i + 1].1;
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                    i += 2;
                    continue;
                }
                if chars[i].1 == quote {
                    closed = true;
                    i += 1;
                    break;
                }
                s.push(chars[i].1);
                i += 1;
            }
            if !closed {
                // Recover: keep what was collected as the string value.
                sink.error(Pass::Lex, span_of(start, i), "unterminated string");
            }
            out.push(Spanned {
                token: Token::Str(s),
                span: span_of(start, i),
            });
            continue;
        }
        // Multi-char operators first.
        let two: String = chars[i..(i + 2).min(chars.len())]
            .iter()
            .map(|(_, c)| c)
            .collect();
        if matches!(two.as_str(), "==" | "!=" | "<=" | ">=" | "**" | "//") {
            out.push(Spanned {
                token: Token::Op(two),
                span: span_of(i, i + 2),
            });
            i += 2;
            continue;
        }
        match c {
            '(' | '[' | '{' => {
                *paren_depth += 1;
                out.push(Spanned {
                    token: Token::Op(c.to_string()),
                    span: span_of(i, i + 1),
                });
            }
            ')' | ']' | '}' => {
                *paren_depth = paren_depth.saturating_sub(1);
                out.push(Spanned {
                    token: Token::Op(c.to_string()),
                    span: span_of(i, i + 1),
                });
            }
            '=' | '.' | ',' | ':' | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '&' | '|' => {
                out.push(Spanned {
                    token: Token::Op(c.to_string()),
                    span: span_of(i, i + 1),
                });
            }
            other => {
                // Recover by skipping the stray character.
                sink.error(
                    Pass::Lex,
                    span_of(i, i + 1),
                    format!("unexpected character `{other}`"),
                );
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_assignment() {
        let t = kinds("x = pd.read_csv('a.csv')\n");
        assert_eq!(
            t,
            vec![
                Token::Name("x".into()),
                Token::Op("=".into()),
                Token::Name("pd".into()),
                Token::Op(".".into()),
                Token::Name("read_csv".into()),
                Token::Op("(".into()),
                Token::Str("a.csv".into()),
                Token::Op(")".into()),
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn spans_carry_byte_offsets_and_columns() {
        let src = "x = pd.read_csv('a.csv')\n";
        let (tokens, sink) = lex(src);
        assert!(sink.is_empty());
        // `read_csv` starts at byte 7, column 8.
        let read = tokens
            .iter()
            .find(|t| t.token == Token::Name("read_csv".into()))
            .unwrap();
        assert_eq!(read.span.slice(src), Some("read_csv"));
        assert_eq!((read.span.line, read.span.col), (1, 8));
    }

    #[test]
    fn spans_on_later_lines_are_absolute() {
        let src = "a = 1\nb = foo(a)\n";
        let (tokens, _) = lex(src);
        let foo = tokens
            .iter()
            .find(|t| t.token == Token::Name("foo".into()))
            .unwrap();
        assert_eq!(foo.span.slice(src), Some("foo"));
        assert_eq!((foo.span.line, foo.span.col), (2, 5));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = kinds("# full comment\n\nx = 1  # trailing\n");
        assert_eq!(
            t,
            vec![
                Token::Name("x".into()),
                Token::Op("=".into()),
                Token::Num(1.0),
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let t = kinds("x = 'a#b'\n");
        assert!(t.contains(&Token::Str("a#b".into())));
    }

    #[test]
    fn indentation_blocks() {
        let t = kinds("if x:\n    y = 1\nz = 2\n");
        assert!(t.contains(&Token::Indent));
        assert!(t.contains(&Token::Dedent));
    }

    #[test]
    fn implicit_line_joining_inside_parens() {
        let t = kinds("f(a,\n  b)\n");
        // Only one Newline (after the closing paren).
        let newlines = t.iter().filter(|x| **x == Token::Newline).count();
        assert_eq!(newlines, 1);
        assert!(!t.contains(&Token::Indent), "no block from continuation");
    }

    #[test]
    fn numbers_with_exponent_and_dots() {
        let t = kinds("a = 1.5e-3\nb = .25\n");
        assert!(t.contains(&Token::Num(0.0015)));
        assert!(t.contains(&Token::Num(0.25)));
    }

    #[test]
    fn multi_char_operators() {
        let t = kinds("a == b ** 2\n");
        assert!(t.contains(&Token::Op("==".into())));
        assert!(t.contains(&Token::Op("**".into())));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(
            tokenize("x = 'oops\n"),
            Err(CodeGraphError::Lex { line: 1, .. })
        ));
    }

    #[test]
    fn unterminated_string_recovers_in_lenient_mode() {
        let (tokens, sink) = lex("x = 'oops\ny = 2\n");
        assert!(sink.has_errors());
        // The collected prefix survives as the string value and lexing
        // continues on the next line.
        assert!(tokens.iter().any(|t| t.token == Token::Str("oops".into())));
        assert!(tokens.iter().any(|t| t.token == Token::Name("y".into())));
    }

    #[test]
    fn stray_characters_are_skipped_with_diagnostics() {
        let (tokens, sink) = lex("x = 1 ; y = 2\n");
        assert_eq!(sink.len(), 1);
        assert!(sink.diagnostics()[0].message.contains("`;`"));
        assert!(tokens.iter().any(|t| t.token == Token::Name("y".into())));
    }

    #[test]
    fn inconsistent_dedent_recovers_balanced() {
        let (tokens, sink) = lex("if x:\n        y = 1\n    z = 2\nw = 3\n");
        assert!(sink.has_errors());
        let indents = tokens.iter().filter(|t| t.token == Token::Indent).count();
        let dedents = tokens.iter().filter(|t| t.token == Token::Dedent).count();
        assert_eq!(indents, dedents, "recovered stream stays balanced");
    }

    #[test]
    fn trailing_dedents_emitted_at_eof() {
        let t = kinds("if x:\n    y = 1\n");
        let dedents = t.iter().filter(|x| **x == Token::Dedent).count();
        assert_eq!(dedents, 1);
    }

    #[test]
    fn string_escapes() {
        let t = kinds("x = 'a\\'b\\nc'\n");
        assert!(t.contains(&Token::Str("a'b\nc".into())));
    }
}
