//! Tokenizer for the analyzed Python subset, with indentation tracking.

use crate::{CodeGraphError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Name(String),
    /// Numeric literal.
    Num(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Any operator or punctuation lexeme (`=`, `(`, `.`, `==`, ...).
    Op(String),
    /// Logical end of statement.
    Newline,
    /// Block start (indentation increased).
    Indent,
    /// Block end (indentation decreased).
    Dedent,
    /// End of input.
    Eof,
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Tokenizes a script. Comments (`# ...`) and blank lines are skipped;
/// indentation produces `Indent`/`Dedent` tokens; parentheses suppress
/// newline tokens (implicit line joining).
pub fn tokenize(source: &str) -> Result<Vec<Spanned>> {
    let mut out: Vec<Spanned> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut paren_depth = 0usize;

    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no + 1;
        // Strip comments outside strings.
        let line = strip_comment(raw_line);
        if line.trim().is_empty() && paren_depth == 0 {
            continue;
        }
        if paren_depth == 0 {
            let indent = line.len() - line.trim_start_matches(' ').len();
            let current = *indents.last().expect("non-empty indent stack");
            match indent.cmp(&current) {
                std::cmp::Ordering::Greater => {
                    indents.push(indent);
                    out.push(Spanned {
                        token: Token::Indent,
                        line: line_no,
                    });
                }
                std::cmp::Ordering::Less => {
                    while *indents.last().unwrap() > indent {
                        indents.pop();
                        out.push(Spanned {
                            token: Token::Dedent,
                            line: line_no,
                        });
                    }
                    if *indents.last().unwrap() != indent {
                        return Err(CodeGraphError::Lex {
                            line: line_no,
                            message: "inconsistent dedent".into(),
                        });
                    }
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        tokenize_line(&line, line_no, &mut out, &mut paren_depth)?;
        if paren_depth == 0 {
            out.push(Spanned {
                token: Token::Newline,
                line: line_no,
            });
        }
    }
    while indents.len() > 1 {
        indents.pop();
        out.push(Spanned {
            token: Token::Dedent,
            line: source.lines().count(),
        });
    }
    out.push(Spanned {
        token: Token::Eof,
        line: source.lines().count().max(1),
    });
    Ok(out)
}

fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut quote: Option<char> = None;
    for ch in line.chars() {
        match quote {
            Some(q) => {
                out.push(ch);
                if ch == q {
                    quote = None;
                }
            }
            None => {
                if ch == '#' {
                    break;
                }
                if ch == '\'' || ch == '"' {
                    quote = Some(ch);
                }
                out.push(ch);
            }
        }
    }
    out
}

fn tokenize_line(
    line: &str,
    line_no: usize,
    out: &mut Vec<Spanned>,
    paren_depth: &mut usize,
) -> Result<()> {
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    let push = |out: &mut Vec<Spanned>, token: Token| {
        out.push(Spanned {
            token,
            line: line_no,
        })
    };
    while i < chars.len() {
        let c = chars[i];
        if c == ' ' || c == '\t' {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            push(out, Token::Name(chars[start..i].iter().collect()));
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || (chars[i] == '.' && !seen_dot)
                    || chars[i] == 'e'
                    || chars[i] == 'E'
                    || ((chars[i] == '+' || chars[i] == '-')
                        && i > start
                        && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
            {
                if chars[i] == '.' {
                    seen_dot = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let value = text.parse::<f64>().map_err(|_| CodeGraphError::Lex {
                line: line_no,
                message: format!("bad number `{text}`"),
            })?;
            push(out, Token::Num(value));
            continue;
        }
        if c == '\'' || c == '"' {
            let quote = c;
            i += 1;
            let mut s = String::new();
            let mut closed = false;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    let esc = chars[i + 1];
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                    i += 2;
                    continue;
                }
                if chars[i] == quote {
                    closed = true;
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            if !closed {
                return Err(CodeGraphError::Lex {
                    line: line_no,
                    message: "unterminated string".into(),
                });
            }
            push(out, Token::Str(s));
            continue;
        }
        // Multi-char operators first.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if matches!(two.as_str(), "==" | "!=" | "<=" | ">=" | "**" | "//") {
            push(out, Token::Op(two));
            i += 2;
            continue;
        }
        match c {
            '(' | '[' | '{' => {
                *paren_depth += 1;
                push(out, Token::Op(c.to_string()));
            }
            ')' | ']' | '}' => {
                *paren_depth = paren_depth.saturating_sub(1);
                push(out, Token::Op(c.to_string()));
            }
            '=' | '.' | ',' | ':' | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '&' | '|' => {
                push(out, Token::Op(c.to_string()));
            }
            other => {
                return Err(CodeGraphError::Lex {
                    line: line_no,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
        i += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_assignment() {
        let t = kinds("x = pd.read_csv('a.csv')\n");
        assert_eq!(
            t,
            vec![
                Token::Name("x".into()),
                Token::Op("=".into()),
                Token::Name("pd".into()),
                Token::Op(".".into()),
                Token::Name("read_csv".into()),
                Token::Op("(".into()),
                Token::Str("a.csv".into()),
                Token::Op(")".into()),
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = kinds("# full comment\n\nx = 1  # trailing\n");
        assert_eq!(
            t,
            vec![
                Token::Name("x".into()),
                Token::Op("=".into()),
                Token::Num(1.0),
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let t = kinds("x = 'a#b'\n");
        assert!(t.contains(&Token::Str("a#b".into())));
    }

    #[test]
    fn indentation_blocks() {
        let t = kinds("if x:\n    y = 1\nz = 2\n");
        assert!(t.contains(&Token::Indent));
        assert!(t.contains(&Token::Dedent));
    }

    #[test]
    fn implicit_line_joining_inside_parens() {
        let t = kinds("f(a,\n  b)\n");
        // Only one Newline (after the closing paren).
        let newlines = t.iter().filter(|x| **x == Token::Newline).count();
        assert_eq!(newlines, 1);
        assert!(!t.contains(&Token::Indent), "no block from continuation");
    }

    #[test]
    fn numbers_with_exponent_and_dots() {
        let t = kinds("a = 1.5e-3\nb = .25\n");
        assert!(t.contains(&Token::Num(0.0015)));
        assert!(t.contains(&Token::Num(0.25)));
    }

    #[test]
    fn multi_char_operators() {
        let t = kinds("a == b ** 2\n");
        assert!(t.contains(&Token::Op("==".into())));
        assert!(t.contains(&Token::Op("**".into())));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(
            tokenize("x = 'oops\n"),
            Err(CodeGraphError::Lex { line: 1, .. })
        ));
    }

    #[test]
    fn trailing_dedents_emitted_at_eof() {
        let t = kinds("if x:\n    y = 1\n");
        let dedents = t.iter().filter(|x| **x == Token::Dedent).count();
        assert_eq!(dedents, 1);
    }

    #[test]
    fn string_escapes() {
        let t = kinds("x = 'a\\'b\\nc'\n");
        assert!(t.contains(&Token::Str("a'b\nc".into())));
    }
}
