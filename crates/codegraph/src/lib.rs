//! Static analysis of ML pipeline scripts into code graphs — the
//! GraphGen4Code substitute — plus the §3.4 graph filter, the Graph4ML
//! assembly, and a synthetic notebook-corpus generator.
//!
//! The KGpip paper (§3.3) uses GraphGen4Code to statically analyze Python
//! programs into graphs capturing "interprocedural data flow and control
//! flow ... what happens to data that is read from a Pandas dataframe, how
//! it gets manipulated and transformed, and what transformers or estimators
//! get called on the dataframe", at a scale of "roughly 1600 nodes and 3700
//! edges for a Kaggle ML pipeline script of 72 lines". This crate rebuilds
//! that pipeline end to end for a Python subset sufficient for data-science
//! notebooks:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — tokenizer and recursive-descent
//!   parser for assignments, imports, calls, attribute chains, subscripts,
//!   `for`/`if` blocks,
//! * [`analysis`] — import-resolving dataflow + control-flow analysis
//!   producing a [`graph::CodeGraph`] with the same noise profile as
//!   GraphGen4Code (location, parameter, constant and documentation nodes;
//!   transitive dataflow closure edges),
//! * [`filter`] — the paper's §3.4 filter: keep only nodes from the target
//!   ML libraries reachable by dataflow from `read_csv`, producing compact
//!   [`filter::PipelineGraph`]s (≥96% node/edge reduction on realistic
//!   scripts, Table 3),
//! * [`graph4ml`] — links filtered pipelines of the same dataset through a
//!   shared dataset node (Figure 4),
//! * [`vocab`] — the canonical pipeline-op vocabulary shared with the graph
//!   generator,
//! * [`corpus`] — a synthetic Kaggle-notebook generator standing in for the
//!   paper's 11.7K mined scripts (see DESIGN.md, substitution table),
//! * [`span`] / [`diag`] — byte-span source locations and the
//!   span-carrying diagnostics the recovering lexer/parser/analyzer emit,
//! * [`lint`] — invariant verification for every graph representation
//!   (run under `debug_assert!` inside `analyze`/`filter_graph`, and by
//!   the `lint-corpus` CLI subcommand).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod corpus;
pub mod diag;
pub mod filter;
pub mod graph;
pub mod graph4ml;
pub mod lexer;
pub mod lint;
pub mod mining;
pub mod parser;
pub mod span;
pub mod vocab;

pub use analysis::{analyze, analyze_with_diagnostics};
pub use diag::{Diagnostic, DiagnosticSink, Pass, Severity};
pub use filter::{filter_graph, PipelineGraph};
pub use graph::{CodeGraph, EdgeKind, Label, LabelInterner, NodeId, NodeKind};
pub use graph4ml::Graph4Ml;
pub use lint::{lint_code_graph, lint_graph4ml, lint_pipeline_graph, lint_reduction, Violation};
pub use mining::{mine_script, source_fingerprint, MineOutcome, MiningCache};
pub use parser::parse_with_diagnostics;
pub use span::Span;
pub use vocab::{OpVocab, PipelineOp};

/// Errors produced while parsing or analyzing scripts.
#[derive(Debug, Clone, PartialEq)]
pub enum CodeGraphError {
    /// Tokenization failure.
    Lex {
        /// 1-based source line.
        line: usize,
        /// Failure description.
        message: String,
    },
    /// Parse failure.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Failure description.
        message: String,
    },
}

impl std::fmt::Display for CodeGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeGraphError::Lex { line, message } => write!(f, "lex error, line {line}: {message}"),
            CodeGraphError::Parse { line, message } => {
                write!(f, "parse error, line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CodeGraphError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CodeGraphError>;
