//! Graph-lint: invariant verification for every graph representation the
//! analyzer produces.
//!
//! Each `lint_*` function returns the list of violated invariants (empty =
//! clean). Structural invariants (index bounds, acyclicity, anchoring)
//! have [`Severity::Error`]; semantic sanity checks that legitimate inputs
//! *can* break (e.g. a script fitting two estimators) are
//! [`Severity::Warning`]. `analyze` and `filter_graph` run the
//! error-severity checks under `debug_assert!`, and the `lint-corpus` CLI
//! subcommand runs the full set over a generated corpus.

use crate::diag::{Diagnostic, Pass, Severity};
use crate::filter::PipelineGraph;
use crate::graph::{CodeGraph, EdgeKind, NodeKind};
use crate::graph4ml::Graph4Ml;
use crate::span::Span;
use crate::vocab::PipelineOp;

/// One violated graph invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short stable rule identifier (e.g. `edge-bounds`).
    pub rule: &'static str,
    /// Error for structural invariants, warning for semantic sanity
    /// checks.
    pub severity: Severity,
    /// Human-readable description of what is wrong.
    pub message: String,
}

impl Violation {
    fn error(rule: &'static str, message: String) -> Violation {
        Violation {
            rule,
            severity: Severity::Error,
            message,
        }
    }

    fn warning(rule: &'static str, message: String) -> Violation {
        Violation {
            rule,
            severity: Severity::Warning,
            message,
        }
    }

    /// Renders the violation as a [`Pass::Lint`] diagnostic (violations
    /// concern whole graphs, so the span is synthetic).
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic {
            span: Span::synthetic(),
            severity: self.severity,
            pass: Pass::Lint,
            message: format!("{}: {}", self.rule, self.message),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)
    }
}

/// True when any violation has error severity (the `debug_assert` gate).
pub fn has_errors(violations: &[Violation]) -> bool {
    violations.iter().any(|v| v.severity == Severity::Error)
}

/// Lints a raw [`CodeGraph`]:
///
/// - `edge-bounds` — every edge endpoint is a valid node index;
/// - `dataflow-acyclic` — `DataFlow` + `ConstantArg` edges form a DAG
///   (value flow cannot loop);
/// - `noise-leaf` — location/parameter/documentation bookkeeping nodes
///   never have outgoing edges.
pub fn lint_code_graph(graph: &CodeGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = graph.num_nodes();
    for (i, e) in graph.edges.iter().enumerate() {
        if e.from >= n || e.to >= n {
            out.push(Violation::error(
                "edge-bounds",
                format!(
                    "edge #{i} ({} -> {}) out of bounds for {n} nodes",
                    e.from, e.to
                ),
            ));
        }
    }
    if has_errors(&out) {
        return out; // later checks index by node id
    }
    let flow: Vec<(usize, usize)> = graph
        .edges
        .iter()
        .filter(|e| matches!(e.kind, EdgeKind::DataFlow | EdgeKind::ConstantArg))
        .map(|e| (e.from, e.to))
        .collect();
    if let Some(node) = find_cycle(n, &flow) {
        out.push(Violation::error(
            "dataflow-acyclic",
            format!("dataflow through node {node} is cyclic"),
        ));
    }
    for e in &graph.edges {
        let kind = graph.nodes[e.from].kind;
        if matches!(
            kind,
            NodeKind::Location | NodeKind::Parameter | NodeKind::Documentation
        ) {
            out.push(Violation::error(
                "noise-leaf",
                format!("{kind:?} node {} has an outgoing edge to {}", e.from, e.to),
            ));
        }
    }
    out
}

/// Lints a filtered [`PipelineGraph`]:
///
/// - `edge-bounds`, `self-loop`, `duplicate-edge`, `pipeline-acyclic` —
///   structural edge sanity;
/// - `dataset-anchor` — a `Dataset` op may only sit at index 0, must have
///   no incoming edges, must be unique, and (in graphs with more than one
///   node) must feed at least one successor;
/// - `single-estimator` (warning) — a pipeline fitting more than one
///   estimator is suspicious but not structurally broken.
pub fn lint_pipeline_graph(graph: &PipelineGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = graph.num_nodes();
    for (i, &(f, t)) in graph.edges.iter().enumerate() {
        if f >= n || t >= n {
            out.push(Violation::error(
                "edge-bounds",
                format!("edge #{i} ({f} -> {t}) out of bounds for {n} nodes"),
            ));
        } else if f == t {
            out.push(Violation::error(
                "self-loop",
                format!("node {f} loops to itself"),
            ));
        }
    }
    if has_errors(&out) {
        return out;
    }
    let mut sorted = graph.edges.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            out.push(Violation::error(
                "duplicate-edge",
                format!("edge ({} -> {}) appears more than once", w[0].0, w[0].1),
            ));
        }
    }
    if let Some(node) = find_cycle(n, &graph.edges) {
        out.push(Violation::error(
            "pipeline-acyclic",
            format!("pipeline dataflow through node {node} is cyclic"),
        ));
    }
    for (i, op) in graph.ops.iter().enumerate() {
        if *op == PipelineOp::Dataset && i != 0 {
            out.push(Violation::error(
                "dataset-anchor",
                format!("dataset node at index {i}, expected 0"),
            ));
        }
    }
    if graph.ops.first() == Some(&PipelineOp::Dataset) {
        if graph.edges.iter().any(|&(_, t)| t == 0) {
            out.push(Violation::error(
                "dataset-anchor",
                "dataset node has incoming edges".to_string(),
            ));
        }
        if n > 1 && !graph.edges.iter().any(|&(f, _)| f == 0) {
            out.push(Violation::error(
                "dataset-anchor",
                "dataset node is disconnected from its pipeline".to_string(),
            ));
        }
    }
    let estimators = graph.ops.iter().filter(|op| op.is_estimator()).count();
    if estimators > 1 {
        out.push(Violation::warning(
            "single-estimator",
            format!("pipeline fits {estimators} estimators"),
        ));
    }
    out
}

/// Lints an assembled [`Graph4Ml`]: every pipeline's dataset index must be
/// registered, every pipeline must carry its dataset anchor at index 0,
/// and every pipeline must individually pass [`lint_pipeline_graph`].
pub fn lint_graph4ml(graph: &Graph4Ml) -> Vec<Violation> {
    let mut out = Vec::new();
    let datasets = graph.datasets().len();
    for (i, (ds, pg)) in graph.pipelines().iter().enumerate() {
        if *ds >= datasets {
            out.push(Violation::error(
                "dataset-index",
                format!("pipeline #{i} references dataset {ds}, only {datasets} registered"),
            ));
        }
        if pg.ops.first() != Some(&PipelineOp::Dataset) {
            out.push(Violation::error(
                "dataset-anchor",
                format!("pipeline #{i} is missing its dataset anchor node"),
            ));
        }
        out.extend(lint_pipeline_graph(pg));
    }
    out
}

/// Checks filter-reduction sanity: the filtered pipeline can never hold
/// more operator nodes than the raw graph had call nodes, nor more edges
/// than the raw graph (§3.4 reports a ≥96% reduction; growth would mean
/// the filter invented structure).
pub fn lint_reduction(raw: &CodeGraph, filtered: &PipelineGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    let calls = raw.nodes_of_kind(NodeKind::Call).len();
    let kept = filtered
        .ops
        .iter()
        .filter(|op| **op != PipelineOp::Dataset)
        .count();
    if kept > calls {
        out.push(Violation::error(
            "reduction",
            format!("filtered graph keeps {kept} ops but the raw graph has only {calls} calls"),
        ));
    }
    if filtered.num_edges() > raw.num_edges() {
        out.push(Violation::error(
            "reduction",
            format!(
                "filtered graph has {} edges, raw graph only {}",
                filtered.num_edges(),
                raw.num_edges()
            ),
        ));
    }
    out
}

/// Returns a node participating in a cycle, if any, via iterative
/// three-color DFS over the given edges.
fn find_cycle(n: usize, edges: &[(usize, usize)]) -> Option<usize> {
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(f, t) in edges {
        if f < n && t < n {
            succ[f].push(t);
        }
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Stack of (node, next-successor-index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(frame) = stack.last_mut() {
            let at = frame.0;
            if frame.1 < succ[at].len() {
                let to = succ[at][frame.1];
                frame.1 += 1;
                match color[to] {
                    0 => {
                        color[to] = 1;
                        stack.push((to, 0));
                    }
                    1 => return Some(to),
                    _ => {}
                }
            } else {
                color[at] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::filter::filter_graph;
    use crate::graph::CodeGraph;

    const FIG2: &str = "\
import pandas as pd
from sklearn.model_selection import train_test_split
from sklearn import svm
df = pd.read_csv('example.csv')
df_train, df_test = train_test_split(df)
X = df_train['X']
model = svm.SVC()
model.fit(X, df_train['Y'])
";

    #[test]
    fn analyzed_and_filtered_figure2_graphs_are_clean() {
        let raw = analyze(FIG2).unwrap();
        assert_eq!(lint_code_graph(&raw), vec![]);
        let filtered = filter_graph(&raw);
        assert_eq!(lint_pipeline_graph(&filtered), vec![]);
        assert_eq!(lint_reduction(&raw, &filtered), vec![]);
        assert_eq!(lint_pipeline_graph(&filtered.with_dataset_node()), vec![]);
    }

    #[test]
    fn out_of_bounds_edges_are_flagged() {
        let mut g = CodeGraph::new();
        g.add_node(NodeKind::Call, "a", Span::at_line(1));
        g.edges.push(crate::graph::Edge {
            from: 0,
            to: 7,
            kind: EdgeKind::DataFlow,
        });
        let v = lint_code_graph(&g);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "edge-bounds");
        assert_eq!(v[0].severity, Severity::Error);
    }

    #[test]
    fn dataflow_cycles_are_flagged() {
        let mut g = CodeGraph::new();
        let a = g.add_node(NodeKind::Call, "a", Span::at_line(1));
        let b = g.add_node(NodeKind::Call, "b", Span::at_line(2));
        g.add_edge(a, b, EdgeKind::DataFlow);
        g.add_edge(b, a, EdgeKind::DataFlow);
        assert!(lint_code_graph(&g)
            .iter()
            .any(|v| v.rule == "dataflow-acyclic"));
        // Control-flow cycles are legal (loops), so the same shape over
        // ControlFlow edges lints clean.
        let mut g2 = CodeGraph::new();
        let a = g2.add_node(NodeKind::Call, "a", Span::at_line(1));
        let b = g2.add_node(NodeKind::Call, "b", Span::at_line(2));
        g2.add_edge(a, b, EdgeKind::ControlFlow);
        g2.add_edge(b, a, EdgeKind::ControlFlow);
        assert_eq!(lint_code_graph(&g2), vec![]);
    }

    #[test]
    fn noise_nodes_with_out_edges_are_flagged() {
        let mut g = CodeGraph::new();
        let call = g.add_node(NodeKind::Call, "a", Span::at_line(1));
        let loc = g.add_node(NodeKind::Location, "loc:1", Span::at_line(1));
        g.add_edge(loc, call, EdgeKind::Location);
        assert!(lint_code_graph(&g).iter().any(|v| v.rule == "noise-leaf"));
    }

    #[test]
    fn pipeline_structural_rules() {
        let ok = PipelineGraph {
            ops: vec![PipelineOp::ReadCsv, PipelineOp::Fit],
            edges: vec![(0, 1)],
        };
        assert_eq!(lint_pipeline_graph(&ok), vec![]);

        let self_loop = PipelineGraph {
            ops: vec![PipelineOp::ReadCsv],
            edges: vec![(0, 0)],
        };
        assert!(lint_pipeline_graph(&self_loop)
            .iter()
            .any(|v| v.rule == "self-loop"));

        let dup = PipelineGraph {
            ops: vec![PipelineOp::ReadCsv, PipelineOp::Fit],
            edges: vec![(0, 1), (0, 1)],
        };
        assert!(lint_pipeline_graph(&dup)
            .iter()
            .any(|v| v.rule == "duplicate-edge"));

        let cyc = PipelineGraph {
            ops: vec![PipelineOp::ReadCsv, PipelineOp::Fit],
            edges: vec![(0, 1), (1, 0)],
        };
        assert!(lint_pipeline_graph(&cyc)
            .iter()
            .any(|v| v.rule == "pipeline-acyclic"));
    }

    #[test]
    fn dataset_anchor_rules() {
        let misplaced = PipelineGraph {
            ops: vec![PipelineOp::ReadCsv, PipelineOp::Dataset],
            edges: vec![(0, 1)],
        };
        assert!(lint_pipeline_graph(&misplaced)
            .iter()
            .any(|v| v.rule == "dataset-anchor"));

        let disconnected = PipelineGraph {
            ops: vec![PipelineOp::Dataset, PipelineOp::ReadCsv],
            edges: vec![],
        };
        assert!(lint_pipeline_graph(&disconnected)
            .iter()
            .any(|v| v.message.contains("disconnected")));

        let fed_into = PipelineGraph {
            ops: vec![PipelineOp::Dataset, PipelineOp::ReadCsv],
            edges: vec![(0, 1), (1, 0)],
        };
        assert!(lint_pipeline_graph(&fed_into)
            .iter()
            .any(|v| v.message.contains("incoming")));
    }

    #[test]
    fn multiple_estimators_warn_but_do_not_error() {
        let two = PipelineGraph {
            ops: vec![
                PipelineOp::ReadCsv,
                PipelineOp::Estimator(0),
                PipelineOp::Estimator(1),
            ],
            edges: vec![(0, 1), (0, 2)],
        };
        let v = lint_pipeline_graph(&two);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "single-estimator");
        assert_eq!(v[0].severity, Severity::Warning);
        assert!(!has_errors(&v));
    }

    #[test]
    fn graph4ml_lints_each_pipeline() {
        let mut g4 = Graph4Ml::new();
        let raw = analyze(FIG2).unwrap();
        g4.add_pipeline("example", &filter_graph(&raw));
        assert_eq!(lint_graph4ml(&g4), vec![]);
    }

    #[test]
    fn reduction_growth_is_flagged() {
        let raw = CodeGraph::new(); // zero calls
        let filtered = PipelineGraph {
            ops: vec![PipelineOp::ReadCsv],
            edges: vec![],
        };
        assert!(lint_reduction(&raw, &filtered)
            .iter()
            .any(|v| v.rule == "reduction"));
    }

    #[test]
    fn violations_render_as_diagnostics() {
        let v = Violation::error("edge-bounds", "edge #0 out of bounds".into());
        let d = v.to_diagnostic();
        assert_eq!(d.pass, Pass::Lint);
        assert!(d.span.is_synthetic());
        assert!(d.message.starts_with("edge-bounds:"));
    }
}
