//! Content-addressed memoization of script mining.
//!
//! Mining a script — `analyze_with_diagnostics` → `filter_graph` →
//! skeleton check — is a pure function of the script *source*: the
//! dataset association is resolved before analysis ever runs, so two
//! byte-identical sources always mine to the same outcome. The
//! [`MiningCache`] exploits that: it maps a FNV-1a fingerprint of the
//! source to the complete [`MineOutcome`] (the filtered
//! [`PipelineGraph`] or the skip reason), so re-training, K-sweeps, and
//! the Table-3 ablation skip static analysis entirely on warm runs.
//!
//! Like `TransformCache` in `kgpip-learners`, the cache is a bounded
//! stamp-LRU with atomic hit/miss counters, shareable across `train`
//! calls, and it may only change what mining *costs*, never what it
//! produces — the determinism suite in `kgpip` proves cold and warm
//! runs bit-identical. Snapshots serialize via [`MiningCache::to_json`]
//! so a mined corpus survives process restarts.

use crate::analysis::analyze_with_diagnostics;
use crate::diag::Severity;
use crate::filter::{filter_graph, PipelineGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of cached script outcomes. Scripts are small and
/// outcomes are compact pipeline graphs, so the default comfortably
/// covers the bundled synthetic corpora.
pub const DEFAULT_MINING_CACHE_CAPACITY: usize = 4096;

/// FNV-1a fingerprint of a script source — the cache key. Mining
/// depends on nothing but the source bytes, so the fingerprint is the
/// complete identity of a mining computation.
pub fn source_fingerprint(source: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in source.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The complete result of mining one script: either a filtered pipeline
/// graph with a valid skeleton, or the reason the script was skipped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MineOutcome {
    /// The script mined to a filtered pipeline graph with a valid
    /// skeleton — it contributes to the Graph4ML.
    Pipeline(PipelineGraph),
    /// The script analyzed cleanly but filtered to a graph without an
    /// estimator (EDA-only or unsupported-framework notebook).
    NoSkeleton,
    /// Static analysis reported error-severity diagnostics; the script
    /// is dropped, as the paper's pipeline drops unusable notebooks.
    Unparsable,
}

/// Mines one script source: recovering static analysis, the §3.4
/// filter, and the skeleton validity check. Pure in the source — this
/// is the function the [`MiningCache`] memoizes, and the single code
/// path `Kgpip::train` uses whether or not a cache is attached.
pub fn mine_script(source: &str) -> MineOutcome {
    let (code_graph, diagnostics) = analyze_with_diagnostics(source);
    if diagnostics.iter().any(|d| d.severity == Severity::Error) {
        return MineOutcome::Unparsable;
    }
    let filtered = filter_graph(&code_graph);
    if filtered.skeleton().is_none() {
        return MineOutcome::NoSkeleton;
    }
    MineOutcome::Pipeline(filtered)
}

struct Inner {
    map: HashMap<u64, (u64, MineOutcome)>,
    stamp: u64,
}

/// A thread-safe, bounded (stamp-LRU) memo of script-mining outcomes,
/// keyed by [`source_fingerprint`].
pub struct MiningCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Serialized form of a cache: entries in least-to-most recently used
/// order, so restoring replays them and reproduces the LRU order.
#[derive(Serialize, Deserialize)]
struct Snapshot {
    capacity: usize,
    entries: Vec<(u64, MineOutcome)>,
}

impl MiningCache {
    /// Creates a cache holding up to `capacity` script outcomes.
    pub fn new(capacity: usize) -> MiningCache {
        MiningCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                stamp: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a script fingerprint, counting a hit or miss.
    pub fn get(&self, fingerprint: u64) -> Option<MineOutcome> {
        let mut inner = self.inner.lock().expect("mining cache poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.map.get_mut(&fingerprint) {
            Some((used, outcome)) => {
                *used = stamp;
                let outcome = outcome.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(outcome)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a mining outcome, evicting the least-recently-used entry
    /// when over capacity.
    pub fn insert(&self, fingerprint: u64, outcome: MineOutcome) {
        let mut inner = self.inner.lock().expect("mining cache poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.map.insert(fingerprint, (stamp, outcome));
        while inner.map.len() > self.capacity {
            // xlint: allow(nondeterministic-iteration): stamps are unique, so min_by_key has one well-defined answer regardless of visit order; eviction changes cost only, never answers
            let oldest = inner.map.iter().min_by_key(|(_, (used, _))| *used);
            let oldest = oldest.map(|(k, _)| *k);
            let Some(oldest) = oldest else { break };
            inner.map.remove(&oldest);
        }
    }

    /// Mines through the cache: returns the cached outcome when the
    /// source's fingerprint is present, otherwise mines and stores it.
    pub fn mine(&self, source: &str) -> MineOutcome {
        let fingerprint = source_fingerprint(source);
        if let Some(outcome) = self.get(fingerprint) {
            return outcome;
        }
        let outcome = mine_script(source);
        self.insert(fingerprint, outcome.clone());
        outcome
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("mining cache poisoned").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the cache contents (entries in LRU order, counters
    /// excluded — a restored cache starts its statistics fresh).
    pub fn to_json(&self) -> Result<String, String> {
        let inner = self.inner.lock().expect("mining cache poisoned");
        let mut entries: Vec<(u64, u64, MineOutcome)> = inner
            // xlint: allow(nondeterministic-iteration): entries are re-sorted by their unique stamps immediately below, erasing map order
            .map
            .iter()
            .map(|(k, (used, outcome))| (*used, *k, outcome.clone()))
            .collect();
        entries.sort_unstable_by_key(|(used, _, _)| *used);
        let snapshot = Snapshot {
            capacity: self.capacity,
            entries: entries
                .into_iter()
                .map(|(_, k, outcome)| (k, outcome))
                .collect(),
        };
        serde_json::to_string(&snapshot).map_err(|e| e.to_string())
    }

    /// Restores a cache from [`MiningCache::to_json`] output.
    pub fn from_json(json: &str) -> Result<MiningCache, String> {
        let snapshot: Snapshot = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let cache = MiningCache::new(snapshot.capacity);
        {
            let mut inner = cache.inner.lock().expect("mining cache poisoned");
            for (fingerprint, outcome) in snapshot.entries {
                inner.stamp += 1;
                let stamp = inner.stamp;
                inner.map.insert(fingerprint, (stamp, outcome));
            }
        }
        Ok(cache)
    }

    /// Saves the cache to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        std::fs::write(path, self.to_json()?).map_err(|e| e.to_string())
    }

    /// Loads a cache from a file produced by [`MiningCache::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<MiningCache, String> {
        let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        MiningCache::from_json(&json)
    }
}

impl Default for MiningCache {
    fn default() -> MiningCache {
        MiningCache::new(DEFAULT_MINING_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for MiningCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = "\
import pandas as pd
from sklearn.svm import SVC
df = pd.read_csv('a.csv')
m = SVC()
m.fit(df, df)
";

    #[test]
    fn mine_script_matches_the_inline_pipeline() {
        match mine_script(VALID) {
            MineOutcome::Pipeline(g) => {
                assert!(g.skeleton().is_some());
            }
            other => panic!("expected a pipeline, got {other:?}"),
        }
        assert_eq!(
            mine_script("import torch\nnet = torch.nn.Linear(4, 2)\n"),
            MineOutcome::NoSkeleton
        );
    }

    #[test]
    fn cache_returns_identical_outcomes() {
        let cache = MiningCache::new(16);
        let cold = cache.mine(VALID);
        let warm = cache.mine(VALID);
        assert_eq!(cold, warm);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_sources_have_distinct_fingerprints() {
        assert_ne!(source_fingerprint(VALID), source_fingerprint("x = 1\n"));
        assert_eq!(source_fingerprint(VALID), source_fingerprint(VALID));
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let cache = MiningCache::new(2);
        cache.insert(1, MineOutcome::NoSkeleton);
        cache.insert(2, MineOutcome::Unparsable);
        assert!(cache.get(1).is_some()); // touch 1 so 2 becomes LRU
        cache.insert(3, MineOutcome::NoSkeleton);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn snapshot_roundtrip_preserves_entries() {
        let cache = MiningCache::new(8);
        cache.mine(VALID);
        cache.insert(42, MineOutcome::Unparsable);
        let json = cache.to_json().unwrap();
        let restored = MiningCache::from_json(&json).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get(42), Some(MineOutcome::Unparsable));
        assert_eq!(
            restored.get(source_fingerprint(VALID)),
            Some(mine_script(VALID))
        );
    }
}
