//! Recursive-descent parser for the analyzed Python subset.
//!
//! The parser is panic-free and error-recovering: [`parse_with_diagnostics`]
//! always produces a [`Module`], turning each malformed statement into a
//! [`Diagnostic`] and resynchronizing at the next statement boundary
//! (the next newline at the current block depth). [`parse`] is the strict
//! wrapper that fails on the first error-severity diagnostic.

use crate::ast::{Expr, Module, Stmt};
use crate::diag::{Diagnostic, DiagnosticSink, Pass, Severity};
use crate::lexer::{lex, lex_error, Spanned, Token};
use crate::span::Span;
use crate::{CodeGraphError, Result};

/// Internal result type: statement/expression parsers fail with a
/// span-carrying diagnostic, which the block driver records and recovers
/// from.
type PResult<T> = std::result::Result<T, Diagnostic>;

static EOF_TOKEN: Token = Token::Eof;

/// Parses a script into a [`Module`] plus the diagnostics recovered
/// along the way (lexical problems first, then parse problems). The
/// module contains every statement that parsed cleanly; malformed
/// statements are dropped after emitting a diagnostic.
pub fn parse_with_diagnostics(source: &str) -> (Module, Vec<Diagnostic>) {
    let (tokens, lex_sink) = lex(source);
    let mut p = Parser {
        tokens,
        at: 0,
        sink: DiagnosticSink::new(),
    };
    let body = p.parse_block_body(true);
    let mut sink = lex_sink;
    sink.absorb(p.sink);
    (Module { body }, sink.into_diagnostics())
}

/// Strict parsing: like [`parse_with_diagnostics`], but the first
/// error-severity diagnostic aborts with a [`CodeGraphError`].
pub fn parse(source: &str) -> Result<Module> {
    let (module, diags) = parse_with_diagnostics(source);
    if let Some(d) = diags.iter().find(|d| d.severity == Severity::Error) {
        return Err(match d.pass {
            Pass::Lex => lex_error(d),
            _ => CodeGraphError::Parse {
                line: d.span.line,
                message: d.message.clone(),
            },
        });
    }
    Ok(module)
}

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
    sink: DiagnosticSink,
}

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens
            .get(self.at)
            .map(|s| &s.token)
            .unwrap_or(&EOF_TOKEN)
    }

    /// Token after the current one (for two-token lookahead).
    fn peek2(&self) -> &Token {
        self.tokens
            .get(self.at + 1)
            .map(|s| &s.token)
            .unwrap_or(&EOF_TOKEN)
    }

    fn span(&self) -> Span {
        self.tokens.get(self.at).map(|s| s.span).unwrap_or_default()
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        match self.at.checked_sub(1) {
            Some(i) => self.tokens.get(i).map(|s| s.span).unwrap_or_default(),
            None => Span::synthetic(),
        }
    }

    /// Full span of a statement that started at `start` and has consumed
    /// tokens up to (not including) the current position.
    fn stmt_span(&self, start: Span) -> Span {
        start.merge(self.prev_span())
    }

    fn bump(&mut self) -> Token {
        let t = self
            .tokens
            .get(self.at)
            .map(|s| s.token.clone())
            .unwrap_or(Token::Eof);
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(Diagnostic {
            span: self.span(),
            severity: Severity::Error,
            pass: Pass::Parse,
            message: message.into(),
        })
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Token::Op(o) if o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> PResult<()> {
        if self.eat_op(op) {
            Ok(())
        } else {
            self.err(format!("expected `{op}`, found {:?}", self.peek()))
        }
    }

    fn expect_name(&mut self) -> PResult<String> {
        match self.bump() {
            Token::Name(n) => Ok(n),
            other => self.err(format!("expected name, found {other:?}")),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Token::Newline) {
            self.bump();
        }
    }

    /// Skips to the next statement boundary after a parse error: consumes
    /// tokens until a newline at the current block depth (nested blocks
    /// opened mid-error are skipped whole). Stops before a `Dedent` that
    /// would close the enclosing block, and at `Eof`.
    fn resynchronize(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Token::Eof => return,
                Token::Newline => {
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                Token::Indent => {
                    depth += 1;
                    self.bump();
                }
                Token::Dedent => {
                    if depth == 0 {
                        return; // let the enclosing block close itself
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Parses statements until Dedent (nested) or Eof (top level),
    /// recovering from malformed statements via [`Self::resynchronize`].
    fn parse_block_body(&mut self, top_level: bool) -> Vec<Stmt> {
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Token::Eof => return body,
                Token::Dedent => {
                    self.bump();
                    if top_level {
                        // A balanced lexer never leaves a stray top-level
                        // dedent; tolerate one anyway and keep parsing.
                        continue;
                    }
                    return body;
                }
                _ => match self.parse_stmt() {
                    Ok(stmt) => body.push(stmt),
                    Err(diag) => {
                        self.sink.push(diag);
                        self.resynchronize();
                    }
                },
            }
        }
    }

    fn parse_indented_block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect_op(":")?;
        if !matches!(self.peek(), Token::Newline) {
            // Single-line suite: `if x: y = 1`.
            let stmt = self.parse_simple_stmt()?;
            return Ok(vec![stmt]);
        }
        self.skip_newlines();
        match self.peek() {
            Token::Indent => {
                self.bump();
                Ok(self.parse_block_body(false))
            }
            _ => self.err("expected indented block"),
        }
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            Token::Name(kw) if kw == "import" => {
                self.bump();
                let mut module = self.expect_name()?;
                while self.eat_op(".") {
                    module = format!("{module}.{}", self.expect_name()?);
                }
                let alias = if matches!(self.peek(), Token::Name(n) if n == "as") {
                    self.bump();
                    self.expect_name()?
                } else {
                    // `import a.b` binds `a`; `import a` binds `a`.
                    module.split('.').next().unwrap_or(&module).to_string()
                };
                Ok(Stmt::Import {
                    module,
                    alias,
                    span: self.stmt_span(start),
                })
            }
            Token::Name(kw) if kw == "from" => {
                self.bump();
                let mut module = self.expect_name()?;
                while self.eat_op(".") {
                    module = format!("{module}.{}", self.expect_name()?);
                }
                match self.bump() {
                    Token::Name(n) if n == "import" => {}
                    other => return self.err(format!("expected `import`, found {other:?}")),
                }
                let mut names = Vec::new();
                loop {
                    let name = self.expect_name()?;
                    let alias = if matches!(self.peek(), Token::Name(n) if n == "as") {
                        self.bump();
                        self.expect_name()?
                    } else {
                        name.clone()
                    };
                    names.push((name, alias));
                    if !self.eat_op(",") {
                        break;
                    }
                }
                Ok(Stmt::FromImport {
                    module,
                    names,
                    span: self.stmt_span(start),
                })
            }
            Token::Name(kw) if kw == "def" => {
                self.bump();
                let name = self.expect_name()?;
                self.expect_op("(")?;
                let mut params = Vec::new();
                if !self.eat_op(")") {
                    loop {
                        let param = self.expect_name()?;
                        if self.eat_op("=") {
                            // Default value: parsed for resilience, not
                            // modelled by the dataflow analysis.
                            let _ = self.parse_expr()?;
                        }
                        params.push(param);
                        if !self.eat_op(",") {
                            break;
                        }
                        if matches!(self.peek(), Token::Op(o) if o == ")") {
                            break; // trailing comma
                        }
                    }
                    self.expect_op(")")?;
                }
                let header = self.stmt_span(start);
                let body = self.parse_indented_block()?;
                Ok(Stmt::FuncDef {
                    name,
                    params,
                    body,
                    span: header,
                })
            }
            Token::Name(kw) if kw == "return" => {
                self.bump();
                let value = if matches!(self.peek(), Token::Newline | Token::Eof | Token::Dedent) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                Ok(Stmt::Return {
                    value,
                    span: self.stmt_span(start),
                })
            }
            Token::Name(kw) if kw == "for" => {
                self.bump();
                let var = self.expect_name()?;
                match self.bump() {
                    Token::Name(n) if n == "in" => {}
                    other => return self.err(format!("expected `in`, found {other:?}")),
                }
                let iter = self.parse_expr()?;
                let header = self.stmt_span(start);
                let body = self.parse_indented_block()?;
                Ok(Stmt::For {
                    var,
                    iter,
                    body,
                    span: header,
                })
            }
            Token::Name(kw) if kw == "if" => {
                self.bump();
                let cond = self.parse_expr()?;
                let header = self.stmt_span(start);
                let body = self.parse_indented_block()?;
                self.skip_newlines();
                let orelse = if matches!(self.peek(), Token::Name(n) if n == "else") {
                    self.bump();
                    self.parse_indented_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    body,
                    orelse,
                    span: header,
                })
            }
            _ => self.parse_simple_stmt(),
        }
    }

    /// Assignment or expression statement.
    fn parse_simple_stmt(&mut self) -> PResult<Stmt> {
        let start = self.span();
        let first = self.parse_expr()?;
        // Tuple target: `a, b = ...`
        let mut targets_exprs = vec![first];
        while self.eat_op(",") {
            targets_exprs.push(self.parse_expr()?);
        }
        if self.eat_op("=") {
            let mut targets = Vec::with_capacity(targets_exprs.len());
            for t in &targets_exprs {
                match t {
                    Expr::Name(n) => targets.push(n.clone()),
                    // Attribute/subscript targets (df['x'] = ...) bind the base
                    // variable for dataflow purposes.
                    Expr::Subscript { base, .. } | Expr::Attribute { base, .. } => {
                        match base.dotted_name() {
                            Some(n) => targets.push(n.split('.').next().unwrap_or(&n).to_string()),
                            None => return self.err("unsupported assignment target"),
                        }
                    }
                    _ => return self.err("unsupported assignment target"),
                }
            }
            let mut values = vec![self.parse_expr()?];
            while self.eat_op(",") {
                values.push(self.parse_expr()?);
            }
            let value = if values.len() == 1 {
                values.pop().unwrap_or(Expr::Sequence(Vec::new()))
            } else {
                Expr::Sequence(values)
            };
            return Ok(Stmt::Assign {
                targets,
                value,
                span: self.stmt_span(start),
            });
        }
        let mut it = targets_exprs.into_iter();
        match (it.next(), it.next()) {
            (Some(value), None) => Ok(Stmt::Expr {
                value,
                span: self.stmt_span(start),
            }),
            _ => self.err("bare tuple expression statement"),
        }
    }

    /// Binary-operator expression (all operators at one precedence level —
    /// dataflow analysis does not care about arithmetic precedence).
    fn parse_expr(&mut self) -> PResult<Expr> {
        let mut left = self.parse_postfix()?;
        loop {
            let op = match self.peek() {
                Token::Op(o)
                    if matches!(
                        o.as_str(),
                        "+" | "-"
                            | "*"
                            | "/"
                            | "%"
                            | "**"
                            | "//"
                            | "=="
                            | "!="
                            | "<"
                            | ">"
                            | "<="
                            | ">="
                            | "&"
                            | "|"
                    ) =>
                {
                    o.clone()
                }
                Token::Name(n) if n == "in" || n == "and" || n == "or" || n == "not" => n.clone(),
                _ => break,
            };
            self.bump();
            let right = self.parse_postfix()?;
            left = Expr::BinOp {
                left: Box::new(left),
                right: Box::new(right),
                op,
            };
        }
        Ok(left)
    }

    /// Primary expression with `.attr`, `(...)`, `[...]` trailers.
    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_op(".") {
                let attr = self.expect_name()?;
                e = Expr::Attribute {
                    base: Box::new(e),
                    attr,
                };
            } else if matches!(self.peek(), Token::Op(o) if o == "(") {
                self.bump();
                let (args, kwargs) = self.parse_args()?;
                e = Expr::Call {
                    func: Box::new(e),
                    args,
                    kwargs,
                };
            } else if matches!(self.peek(), Token::Op(o) if o == "[") {
                self.bump();
                let index = self.parse_expr()?;
                // Slices like a[1:3] — consume the rest loosely.
                if self.eat_op(":") && !matches!(self.peek(), Token::Op(o) if o == "]") {
                    let _ = self.parse_expr()?;
                }
                self.expect_op("]")?;
                e = Expr::Subscript {
                    base: Box::new(e),
                    index: Box::new(index),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    #[allow(clippy::type_complexity)] // (positional args, keyword args)
    fn parse_args(&mut self) -> PResult<(Vec<Expr>, Vec<(String, Expr)>)> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        if self.eat_op(")") {
            return Ok((args, kwargs));
        }
        loop {
            // kwarg: NAME '=' expr (lookahead two tokens).
            if let Token::Name(n) = self.peek().clone() {
                if matches!(self.peek2(), Token::Op(o) if o == "=") {
                    self.bump();
                    self.bump();
                    kwargs.push((n, self.parse_expr()?));
                    if self.eat_op(",") {
                        continue;
                    }
                    self.expect_op(")")?;
                    break;
                }
            }
            args.push(self.parse_expr()?);
            if self.eat_op(",") {
                continue;
            }
            self.expect_op(")")?;
            break;
        }
        Ok((args, kwargs))
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        match self.bump() {
            Token::Name(n) if n == "True" || n == "False" || n == "None" => Ok(Expr::Keyword(n)),
            Token::Name(n) => Ok(Expr::Name(n)),
            Token::Num(v) => Ok(Expr::Num(v)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Op(o) if o == "(" => {
                if self.eat_op(")") {
                    return Ok(Expr::Sequence(vec![]));
                }
                let mut items = vec![self.parse_expr()?];
                while self.eat_op(",") {
                    if matches!(self.peek(), Token::Op(o) if o == ")") {
                        break;
                    }
                    items.push(self.parse_expr()?);
                }
                self.expect_op(")")?;
                if items.len() == 1 {
                    Ok(items.pop().unwrap_or(Expr::Sequence(Vec::new())))
                } else {
                    Ok(Expr::Sequence(items))
                }
            }
            Token::Op(o) if o == "[" => {
                let mut items = Vec::new();
                if !self.eat_op("]") {
                    items.push(self.parse_expr()?);
                    while self.eat_op(",") {
                        if matches!(self.peek(), Token::Op(o) if o == "]") {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                    self.expect_op("]")?;
                }
                Ok(Expr::Sequence(items))
            }
            Token::Op(o) if o == "-" => {
                // Unary minus on a number.
                match self.parse_primary()? {
                    Expr::Num(v) => Ok(Expr::Num(-v)),
                    other => Ok(Expr::BinOp {
                        left: Box::new(Expr::Num(0.0)),
                        right: Box::new(other),
                        op: "-".into(),
                    }),
                }
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_figure_2_snippet() {
        let src = "\
df = pd.read_csv('example.csv')
df_train, df_test = train_test_split(df)
X = df_train['X']
model = svm.SVC()
model.fit(X, df_train['Y'])
";
        let m = parse(src).unwrap();
        assert_eq!(m.body.len(), 5);
        match &m.body[1] {
            Stmt::Assign { targets, .. } => {
                assert_eq!(targets, &["df_train".to_string(), "df_test".to_string()])
            }
            other => panic!("expected tuple assign, got {other:?}"),
        }
        match &m.body[4] {
            Stmt::Expr {
                value: Expr::Call { func, args, .. },
                ..
            } => {
                assert_eq!(func.dotted_name().as_deref(), Some("model.fit"));
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call stmt, got {other:?}"),
        }
    }

    #[test]
    fn statement_spans_locate_source_text() {
        let src = "df = pd.read_csv('example.csv')\nmodel = svm.SVC()\n";
        let m = parse(src).unwrap();
        let s0 = m.body[0].span();
        assert_eq!((s0.line, s0.col), (1, 1));
        assert_eq!(s0.slice(src), Some("df = pd.read_csv('example.csv')"));
        let s1 = m.body[1].span();
        assert_eq!((s1.line, s1.col), (2, 1));
        assert_eq!(s1.slice(src), Some("model = svm.SVC()"));
    }

    #[test]
    fn imports_and_aliases() {
        let m = parse(
            "import pandas as pd\nimport xgboost\nfrom sklearn.svm import SVC, LinearSVC as LSVC\n",
        )
        .unwrap();
        match &m.body[0] {
            Stmt::Import { module, alias, .. } => {
                assert_eq!(module, "pandas");
                assert_eq!(alias, "pd");
            }
            other => panic!("{other:?}"),
        }
        match &m.body[1] {
            Stmt::Import { module, alias, .. } => {
                assert_eq!(module, "xgboost");
                assert_eq!(alias, "xgboost");
            }
            other => panic!("{other:?}"),
        }
        match &m.body[2] {
            Stmt::FromImport { module, names, .. } => {
                assert_eq!(module, "sklearn.svm");
                assert_eq!(
                    names,
                    &[
                        ("SVC".to_string(), "SVC".to_string()),
                        ("LinearSVC".to_string(), "LSVC".to_string())
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dotted_import_binds_root() {
        let m = parse("import sklearn.svm\n").unwrap();
        match &m.body[0] {
            Stmt::Import { module, alias, .. } => {
                assert_eq!(module, "sklearn.svm");
                assert_eq!(alias, "sklearn");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn kwargs_and_numbers() {
        let m = parse("m = RandomForestClassifier(n_estimators=100, max_depth=5.5)\n").unwrap();
        match &m.body[0] {
            Stmt::Assign {
                value: Expr::Call { kwargs, .. },
                ..
            } => {
                assert_eq!(kwargs[0].0, "n_estimators");
                assert_eq!(kwargs[0].1, Expr::Num(100.0));
                assert_eq!(kwargs[1].1, Expr::Num(5.5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_and_if_blocks() {
        let src = "\
for c in cols:
    df[c] = df[c] + 1
if ok:
    x = 1
else:
    x = 2
";
        let m = parse(src).unwrap();
        assert_eq!(m.body.len(), 2);
        match &m.body[0] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "c");
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        match &m.body[1] {
            Stmt::If { body, orelse, .. } => {
                assert_eq!(body.len(), 1);
                assert_eq!(orelse.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn def_and_return_statements() {
        let src = "\
def prepare(data, k=5):
    out = scale(data)
    return out
x = prepare(df)
";
        let m = parse(src).unwrap();
        assert_eq!(m.body.len(), 2);
        match &m.body[0] {
            Stmt::FuncDef {
                name, params, body, ..
            } => {
                assert_eq!(name, "prepare");
                assert_eq!(params, &["data".to_string(), "k".to_string()]);
                assert_eq!(body.len(), 2);
                assert!(matches!(body[1], Stmt::Return { value: Some(_), .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_return_has_no_value() {
        let m = parse("def f():\n    return\n").unwrap();
        match &m.body[0] {
            Stmt::FuncDef { body, .. } => {
                assert!(matches!(body[0], Stmt::Return { value: None, .. }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subscript_assignment_targets_base() {
        let m = parse("df['col'] = scaler.fit_transform(df)\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { targets, .. } => assert_eq!(targets, &["df".to_string()]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiline_call_via_parens() {
        let m = parse("m = XGBClassifier(\n    n_estimators=10,\n    max_depth=3)\n").unwrap();
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn list_and_tuple_literals() {
        let m = parse("x = [1, 2, 3]\ny = (a, b)\n").unwrap();
        match &m.body[0] {
            Stmt::Assign {
                value: Expr::Sequence(items),
                ..
            } => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_literal() {
        let m = parse("x = -2.5\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { value, .. } => assert_eq!(*value, Expr::Num(-2.5)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_error_carries_line() {
        let err = parse("x = 1\ny = =\n").unwrap_err();
        assert!(matches!(err, CodeGraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn recovery_keeps_statements_around_a_malformed_one() {
        let src = "a = 1\nb = = 2\nc = 3\n";
        let (m, diags) = parse_with_diagnostics(src);
        assert_eq!(m.body.len(), 2, "a and c survive");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span.line, 2);
        assert!(
            matches!(m.body[1], Stmt::Assign { ref targets, .. } if targets == &["c".to_string()])
        );
    }

    #[test]
    fn recovery_skips_malformed_block_headers_with_their_bodies() {
        let src = "a = 1\nfor in xs:\n    b = 2\nc = 3\n";
        let (m, diags) = parse_with_diagnostics(src);
        assert!(!diags.is_empty());
        // `a` and `c` parse; the broken for-loop (and its body) is skipped.
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn recovery_inside_a_block_preserves_the_block() {
        let src = "if ok:\n    x = 1\n    y = = 2\n    z = 3\nw = 4\n";
        let (m, diags) = parse_with_diagnostics(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(m.body.len(), 2);
        match &m.body[0] {
            Stmt::If { body, .. } => assert_eq!(body.len(), 2, "x and z survive in the block"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slice_subscript() {
        let m = parse("x = data[1:5]\n").unwrap();
        assert_eq!(m.body.len(), 1);
    }
}
