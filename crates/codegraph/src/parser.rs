//! Recursive-descent parser for the analyzed Python subset.

use crate::ast::{Expr, Module, Stmt};
use crate::lexer::{tokenize, Spanned, Token};
use crate::{CodeGraphError, Result};

/// Parses a script into a [`Module`].
pub fn parse(source: &str) -> Result<Module> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, at: 0 };
    let body = p.parse_block_body(true)?;
    Ok(Module { body })
}

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at].token
    }

    fn line(&self) -> usize {
        self.tokens[self.at].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].token.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(CodeGraphError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Token::Op(o) if o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<()> {
        if self.eat_op(op) {
            Ok(())
        } else {
            self.err(format!("expected `{op}`, found {:?}", self.peek()))
        }
    }

    fn expect_name(&mut self) -> Result<String> {
        match self.bump() {
            Token::Name(n) => Ok(n),
            other => self.err(format!("expected name, found {other:?}")),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Token::Newline) {
            self.bump();
        }
    }

    /// Parses statements until Dedent (nested) or Eof (top level).
    fn parse_block_body(&mut self, top_level: bool) -> Result<Vec<Stmt>> {
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Token::Eof => {
                    if top_level {
                        return Ok(body);
                    }
                    return self.err("unexpected end of input inside block");
                }
                Token::Dedent => {
                    if top_level {
                        return self.err("unexpected dedent at top level");
                    }
                    self.bump();
                    return Ok(body);
                }
                _ => body.push(self.parse_stmt()?),
            }
        }
    }

    fn parse_indented_block(&mut self) -> Result<Vec<Stmt>> {
        self.expect_op(":")?;
        if !matches!(self.peek(), Token::Newline) {
            // Single-line suite: `if x: y = 1`.
            let stmt = self.parse_simple_stmt()?;
            return Ok(vec![stmt]);
        }
        self.skip_newlines();
        match self.peek() {
            Token::Indent => {
                self.bump();
                self.parse_block_body(false)
            }
            _ => self.err("expected indented block"),
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        match self.peek().clone() {
            Token::Name(kw) if kw == "import" => {
                self.bump();
                let mut module = self.expect_name()?;
                while self.eat_op(".") {
                    module = format!("{module}.{}", self.expect_name()?);
                }
                let alias = if matches!(self.peek(), Token::Name(n) if n == "as") {
                    self.bump();
                    self.expect_name()?
                } else {
                    // `import a.b` binds `a`; `import a` binds `a`.
                    module.split('.').next().unwrap_or(&module).to_string()
                };
                Ok(Stmt::Import { module, alias })
            }
            Token::Name(kw) if kw == "from" => {
                self.bump();
                let mut module = self.expect_name()?;
                while self.eat_op(".") {
                    module = format!("{module}.{}", self.expect_name()?);
                }
                match self.bump() {
                    Token::Name(n) if n == "import" => {}
                    other => return self.err(format!("expected `import`, found {other:?}")),
                }
                let mut names = Vec::new();
                loop {
                    let name = self.expect_name()?;
                    let alias = if matches!(self.peek(), Token::Name(n) if n == "as") {
                        self.bump();
                        self.expect_name()?
                    } else {
                        name.clone()
                    };
                    names.push((name, alias));
                    if !self.eat_op(",") {
                        break;
                    }
                }
                Ok(Stmt::FromImport { module, names })
            }
            Token::Name(kw) if kw == "for" => {
                self.bump();
                let var = self.expect_name()?;
                match self.bump() {
                    Token::Name(n) if n == "in" => {}
                    other => return self.err(format!("expected `in`, found {other:?}")),
                }
                let iter = self.parse_expr()?;
                let body = self.parse_indented_block()?;
                Ok(Stmt::For {
                    var,
                    iter,
                    body,
                    line,
                })
            }
            Token::Name(kw) if kw == "if" => {
                self.bump();
                let cond = self.parse_expr()?;
                let body = self.parse_indented_block()?;
                self.skip_newlines();
                let orelse = if matches!(self.peek(), Token::Name(n) if n == "else") {
                    self.bump();
                    self.parse_indented_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    body,
                    orelse,
                    line,
                })
            }
            _ => self.parse_simple_stmt(),
        }
    }

    /// Assignment or expression statement.
    fn parse_simple_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        let first = self.parse_expr()?;
        // Tuple target: `a, b = ...`
        let mut targets_exprs = vec![first];
        while self.eat_op(",") {
            targets_exprs.push(self.parse_expr()?);
        }
        if self.eat_op("=") {
            let mut targets = Vec::with_capacity(targets_exprs.len());
            for t in &targets_exprs {
                match t {
                    Expr::Name(n) => targets.push(n.clone()),
                    // Attribute/subscript targets (df['x'] = ...) bind the base
                    // variable for dataflow purposes.
                    Expr::Subscript { base, .. } | Expr::Attribute { base, .. } => {
                        match base.dotted_name() {
                            Some(n) => targets.push(n.split('.').next().unwrap_or(&n).to_string()),
                            None => return self.err("unsupported assignment target"),
                        }
                    }
                    _ => return self.err("unsupported assignment target"),
                }
            }
            let mut values = vec![self.parse_expr()?];
            while self.eat_op(",") {
                values.push(self.parse_expr()?);
            }
            let value = if values.len() == 1 {
                values.into_iter().next().unwrap()
            } else {
                Expr::Sequence(values)
            };
            return Ok(Stmt::Assign {
                targets,
                value,
                line,
            });
        }
        if targets_exprs.len() != 1 {
            return self.err("bare tuple expression statement");
        }
        Ok(Stmt::Expr {
            value: targets_exprs.into_iter().next().unwrap(),
            line,
        })
    }

    /// Binary-operator expression (all operators at one precedence level —
    /// dataflow analysis does not care about arithmetic precedence).
    fn parse_expr(&mut self) -> Result<Expr> {
        let mut left = self.parse_postfix()?;
        loop {
            let op = match self.peek() {
                Token::Op(o)
                    if matches!(
                        o.as_str(),
                        "+" | "-"
                            | "*"
                            | "/"
                            | "%"
                            | "**"
                            | "//"
                            | "=="
                            | "!="
                            | "<"
                            | ">"
                            | "<="
                            | ">="
                            | "&"
                            | "|"
                    ) =>
                {
                    o.clone()
                }
                Token::Name(n) if n == "in" || n == "and" || n == "or" || n == "not" => n.clone(),
                _ => break,
            };
            self.bump();
            let right = self.parse_postfix()?;
            left = Expr::BinOp {
                left: Box::new(left),
                right: Box::new(right),
                op,
            };
        }
        Ok(left)
    }

    /// Primary expression with `.attr`, `(...)`, `[...]` trailers.
    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_op(".") {
                let attr = self.expect_name()?;
                e = Expr::Attribute {
                    base: Box::new(e),
                    attr,
                };
            } else if matches!(self.peek(), Token::Op(o) if o == "(") {
                self.bump();
                let (args, kwargs) = self.parse_args()?;
                e = Expr::Call {
                    func: Box::new(e),
                    args,
                    kwargs,
                };
            } else if matches!(self.peek(), Token::Op(o) if o == "[") {
                self.bump();
                let index = self.parse_expr()?;
                // Slices like a[1:3] — consume the rest loosely.
                if self.eat_op(":") && !matches!(self.peek(), Token::Op(o) if o == "]") {
                    let _ = self.parse_expr()?;
                }
                self.expect_op("]")?;
                e = Expr::Subscript {
                    base: Box::new(e),
                    index: Box::new(index),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    #[allow(clippy::type_complexity)] // (positional args, keyword args)
    fn parse_args(&mut self) -> Result<(Vec<Expr>, Vec<(String, Expr)>)> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        if self.eat_op(")") {
            return Ok((args, kwargs));
        }
        loop {
            // kwarg: NAME '=' expr (lookahead two tokens).
            if let Token::Name(n) = self.peek().clone() {
                if matches!(&self.tokens[self.at + 1].token, Token::Op(o) if o == "=") {
                    self.bump();
                    self.bump();
                    kwargs.push((n, self.parse_expr()?));
                    if self.eat_op(",") {
                        continue;
                    }
                    self.expect_op(")")?;
                    break;
                }
            }
            args.push(self.parse_expr()?);
            if self.eat_op(",") {
                continue;
            }
            self.expect_op(")")?;
            break;
        }
        Ok((args, kwargs))
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Name(n) if n == "True" || n == "False" || n == "None" => Ok(Expr::Keyword(n)),
            Token::Name(n) => Ok(Expr::Name(n)),
            Token::Num(v) => Ok(Expr::Num(v)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Op(o) if o == "(" => {
                if self.eat_op(")") {
                    return Ok(Expr::Sequence(vec![]));
                }
                let mut items = vec![self.parse_expr()?];
                while self.eat_op(",") {
                    if matches!(self.peek(), Token::Op(o) if o == ")") {
                        break;
                    }
                    items.push(self.parse_expr()?);
                }
                self.expect_op(")")?;
                if items.len() == 1 {
                    Ok(items.into_iter().next().unwrap())
                } else {
                    Ok(Expr::Sequence(items))
                }
            }
            Token::Op(o) if o == "[" => {
                let mut items = Vec::new();
                if !self.eat_op("]") {
                    items.push(self.parse_expr()?);
                    while self.eat_op(",") {
                        if matches!(self.peek(), Token::Op(o) if o == "]") {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                    self.expect_op("]")?;
                }
                Ok(Expr::Sequence(items))
            }
            Token::Op(o) if o == "-" => {
                // Unary minus on a number.
                match self.parse_primary()? {
                    Expr::Num(v) => Ok(Expr::Num(-v)),
                    other => Ok(Expr::BinOp {
                        left: Box::new(Expr::Num(0.0)),
                        right: Box::new(other),
                        op: "-".into(),
                    }),
                }
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_figure_2_snippet() {
        let src = "\
df = pd.read_csv('example.csv')
df_train, df_test = train_test_split(df)
X = df_train['X']
model = svm.SVC()
model.fit(X, df_train['Y'])
";
        let m = parse(src).unwrap();
        assert_eq!(m.body.len(), 5);
        match &m.body[1] {
            Stmt::Assign { targets, .. } => {
                assert_eq!(targets, &["df_train".to_string(), "df_test".to_string()])
            }
            other => panic!("expected tuple assign, got {other:?}"),
        }
        match &m.body[4] {
            Stmt::Expr {
                value: Expr::Call { func, args, .. },
                ..
            } => {
                assert_eq!(func.dotted_name().as_deref(), Some("model.fit"));
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call stmt, got {other:?}"),
        }
    }

    #[test]
    fn imports_and_aliases() {
        let m = parse(
            "import pandas as pd\nimport xgboost\nfrom sklearn.svm import SVC, LinearSVC as LSVC\n",
        )
        .unwrap();
        assert_eq!(
            m.body[0],
            Stmt::Import {
                module: "pandas".into(),
                alias: "pd".into()
            }
        );
        assert_eq!(
            m.body[1],
            Stmt::Import {
                module: "xgboost".into(),
                alias: "xgboost".into()
            }
        );
        match &m.body[2] {
            Stmt::FromImport { module, names } => {
                assert_eq!(module, "sklearn.svm");
                assert_eq!(
                    names,
                    &[
                        ("SVC".to_string(), "SVC".to_string()),
                        ("LinearSVC".to_string(), "LSVC".to_string())
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dotted_import_binds_root() {
        let m = parse("import sklearn.svm\n").unwrap();
        assert_eq!(
            m.body[0],
            Stmt::Import {
                module: "sklearn.svm".into(),
                alias: "sklearn".into()
            }
        );
    }

    #[test]
    fn kwargs_and_numbers() {
        let m = parse("m = RandomForestClassifier(n_estimators=100, max_depth=5.5)\n").unwrap();
        match &m.body[0] {
            Stmt::Assign {
                value: Expr::Call { kwargs, .. },
                ..
            } => {
                assert_eq!(kwargs[0].0, "n_estimators");
                assert_eq!(kwargs[0].1, Expr::Num(100.0));
                assert_eq!(kwargs[1].1, Expr::Num(5.5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_and_if_blocks() {
        let src = "\
for c in cols:
    df[c] = df[c] + 1
if ok:
    x = 1
else:
    x = 2
";
        let m = parse(src).unwrap();
        assert_eq!(m.body.len(), 2);
        match &m.body[0] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "c");
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        match &m.body[1] {
            Stmt::If { body, orelse, .. } => {
                assert_eq!(body.len(), 1);
                assert_eq!(orelse.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subscript_assignment_targets_base() {
        let m = parse("df['col'] = scaler.fit_transform(df)\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { targets, .. } => assert_eq!(targets, &["df".to_string()]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiline_call_via_parens() {
        let m = parse("m = XGBClassifier(\n    n_estimators=10,\n    max_depth=3)\n").unwrap();
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn list_and_tuple_literals() {
        let m = parse("x = [1, 2, 3]\ny = (a, b)\n").unwrap();
        match &m.body[0] {
            Stmt::Assign {
                value: Expr::Sequence(items),
                ..
            } => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_literal() {
        let m = parse("x = -2.5\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { value, .. } => assert_eq!(*value, Expr::Num(-2.5)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_error_carries_line() {
        let err = parse("x = 1\ny = =\n").unwrap_err();
        assert!(matches!(err, CodeGraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn slice_subscript() {
        let m = parse("x = data[1:5]\n").unwrap();
        assert_eq!(m.body.len(), 1);
    }
}
