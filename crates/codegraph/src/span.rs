//! Byte-span + line/column source locations.
//!
//! Every token, AST statement, and code-graph node carries a [`Span`]
//! locating it in the original script text. Spans are half-open byte
//! ranges (`start..end` into the UTF-8 source) plus the 1-based line and
//! column of the first byte, so diagnostics can be rendered either as
//! `line:col` (human) or as byte offsets (editor integrations).

use serde::{Deserialize, Serialize};

/// A half-open byte range into the source, plus the 1-based line/column
/// of its start. The zero span ([`Span::synthetic`]) marks nodes that do
/// not originate from source text (e.g. the Graph4ML dataset anchor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based source line of `start` (0 for synthetic spans).
    pub line: usize,
    /// 1-based source column of `start`, in characters (0 for synthetic).
    pub col: usize,
}

impl Span {
    /// Builds a span from explicit byte offsets and a line/column start.
    pub fn new(start: usize, end: usize, line: usize, col: usize) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A zero-width span anchored at the start of a 1-based line — used
    /// where only line granularity is known (e.g. hand-built graphs).
    pub fn at_line(line: usize) -> Span {
        Span {
            start: 0,
            end: 0,
            line,
            col: 1,
        }
    }

    /// The span of nodes with no source location (synthetic constructs
    /// such as dataset anchor nodes). Renders as `<synthetic>`.
    pub fn synthetic() -> Span {
        Span::default()
    }

    /// True when this span does not point into source text.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }

    /// The smallest span covering both `self` and `other`. Synthetic
    /// spans are absorbed by real ones.
    pub fn merge(&self, other: Span) -> Span {
        if self.is_synthetic() {
            return other;
        }
        if other.is_synthetic() {
            return *self;
        }
        let (line, col) = if (other.line, other.col) < (self.line, self.col) {
            (other.line, other.col)
        } else {
            (self.line, self.col)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line,
            col,
        }
    }

    /// Byte length of the spanned text.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True for zero-width spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The spanned slice of `source`, when the offsets are in bounds and
    /// on character boundaries.
    pub fn slice<'s>(&self, source: &'s str) -> Option<&'s str> {
        source.get(self.start..self.end)
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Span::new(4, 9, 2, 3).to_string(), "2:3");
        assert_eq!(Span::synthetic().to_string(), "<synthetic>");
    }

    #[test]
    fn merge_covers_both() {
        let a = Span::new(10, 14, 2, 5);
        let b = Span::new(3, 8, 1, 4);
        let m = a.merge(b);
        assert_eq!((m.start, m.end, m.line, m.col), (3, 14, 1, 4));
        assert_eq!(a.merge(Span::synthetic()), a);
        assert_eq!(Span::synthetic().merge(b), b);
    }

    #[test]
    fn slice_extracts_text() {
        let src = "x = read()";
        assert_eq!(Span::new(4, 8, 1, 5).slice(src), Some("read"));
        assert_eq!(Span::new(4, 99, 1, 5).slice(src), None);
    }

    #[test]
    fn synthetic_detection() {
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::at_line(7).is_synthetic());
        assert_eq!(Span::at_line(7).line, 7);
    }
}
