//! The canonical pipeline-op vocabulary shared between the graph filter,
//! Graph4ML, the graph generator, and skeleton extraction.
//!
//! Paper §3.4 restricts the filtered graphs to "the target ML libraries,
//! namely, Scikit-learn, XGBoost, and LGBM". Each retained call maps to one
//! canonical op below; the generator emits node types from this same
//! vocabulary, which is what lets generated graphs be decoded back into
//! pipeline skeletons.

use serde::{Deserialize, Serialize};

/// A canonical pipeline operation (node type of filtered graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PipelineOp {
    /// The dataset anchor node KGpip adds (Figure 4).
    Dataset,
    /// `pandas.read_csv` — the entry point of nearly every pipeline.
    ReadCsv,
    /// `sklearn.model_selection.train_test_split`.
    TrainTestSplit,
    /// A preprocessor; the payload is the canonical transformer name index
    /// into [`TRANSFORMER_NAMES`].
    Transformer(u8),
    /// An estimator; the payload indexes [`ESTIMATOR_NAMES`].
    Estimator(u8),
    /// `.fit(...)` on an estimator object.
    Fit,
    /// `.predict(...)` on an estimator object.
    Predict,
}

/// Canonical transformer names (must match
/// `kgpip_learners::TransformerKind::name`).
pub const TRANSFORMER_NAMES: [&str; 10] = [
    "simple_imputer",
    "standard_scaler",
    "min_max_scaler",
    "robust_scaler",
    "normalizer",
    "one_hot_encoder",
    "variance_threshold",
    "select_k_best",
    "pca",
    "polynomial_features",
];

/// Canonical estimator names (must match
/// `kgpip_learners::EstimatorKind::name`).
pub const ESTIMATOR_NAMES: [&str; 13] = [
    "logistic_regression",
    "linear_svm",
    "linear_regression",
    "ridge",
    "lasso",
    "knn",
    "gaussian_nb",
    "decision_tree",
    "random_forest",
    "extra_trees",
    "gradient_boost",
    "xgboost",
    "lgbm",
];

impl PipelineOp {
    /// Canonical snake_case name.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineOp::Dataset => "dataset",
            PipelineOp::ReadCsv => "read_csv",
            PipelineOp::TrainTestSplit => "train_test_split",
            PipelineOp::Transformer(i) => TRANSFORMER_NAMES[*i as usize],
            PipelineOp::Estimator(i) => ESTIMATOR_NAMES[*i as usize],
            PipelineOp::Fit => "fit",
            PipelineOp::Predict => "predict",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(name: &str) -> Option<PipelineOp> {
        match name {
            "dataset" => return Some(PipelineOp::Dataset),
            "read_csv" => return Some(PipelineOp::ReadCsv),
            "train_test_split" => return Some(PipelineOp::TrainTestSplit),
            "fit" => return Some(PipelineOp::Fit),
            "predict" => return Some(PipelineOp::Predict),
            _ => {}
        }
        if let Some(i) = TRANSFORMER_NAMES.iter().position(|n| *n == name) {
            return Some(PipelineOp::Transformer(i as u8));
        }
        ESTIMATOR_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| PipelineOp::Estimator(i as u8))
    }

    /// True for transformer ops.
    pub fn is_transformer(&self) -> bool {
        matches!(self, PipelineOp::Transformer(_))
    }

    /// True for estimator ops.
    pub fn is_estimator(&self) -> bool {
        matches!(self, PipelineOp::Estimator(_))
    }
}

impl std::fmt::Display for PipelineOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The fixed node-type vocabulary for the graph generator: every op gets a
/// dense integer id.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OpVocab {
    ops: Vec<PipelineOp>,
}

impl Default for OpVocab {
    fn default() -> Self {
        Self::new()
    }
}

impl OpVocab {
    /// Builds the full vocabulary in a stable order: dataset, read_csv,
    /// train_test_split, transformers, estimators, fit, predict.
    pub fn new() -> OpVocab {
        let mut ops = vec![
            PipelineOp::Dataset,
            PipelineOp::ReadCsv,
            PipelineOp::TrainTestSplit,
        ];
        for i in 0..TRANSFORMER_NAMES.len() {
            ops.push(PipelineOp::Transformer(i as u8));
        }
        for i in 0..ESTIMATOR_NAMES.len() {
            ops.push(PipelineOp::Estimator(i as u8));
        }
        ops.push(PipelineOp::Fit);
        ops.push(PipelineOp::Predict);
        OpVocab { ops }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when empty (never, for the standard vocabulary).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Dense id of an op.
    pub fn id(&self, op: PipelineOp) -> usize {
        self.ops
            .iter()
            .position(|o| *o == op)
            .expect("op is part of the fixed vocabulary")
    }

    /// Op for a dense id.
    pub fn op(&self, id: usize) -> PipelineOp {
        self.ops[id]
    }

    /// All ops in id order.
    pub fn ops(&self) -> &[PipelineOp] {
        &self.ops
    }
}

/// Maps a resolved dotted API path to its canonical pipeline op, if the
/// call belongs to the target ML libraries (paper §3.4). Returns `None`
/// for everything else (pandas manipulation, matplotlib, torch, ...).
pub fn canonical_op(api_path: &str) -> Option<PipelineOp> {
    let t = |i: usize| Some(PipelineOp::Transformer(i as u8));
    let e = |i: usize| Some(PipelineOp::Estimator(i as u8));
    match api_path {
        "pandas.read_csv" => Some(PipelineOp::ReadCsv),
        "sklearn.model_selection.train_test_split" => Some(PipelineOp::TrainTestSplit),
        "sklearn.impute.SimpleImputer" => t(0),
        "sklearn.preprocessing.StandardScaler" => t(1),
        "sklearn.preprocessing.MinMaxScaler" => t(2),
        "sklearn.preprocessing.RobustScaler" => t(3),
        "sklearn.preprocessing.Normalizer" => t(4),
        "sklearn.preprocessing.OneHotEncoder" => t(5),
        "sklearn.feature_selection.VarianceThreshold" => t(6),
        "sklearn.feature_selection.SelectKBest" => t(7),
        "sklearn.decomposition.PCA" => t(8),
        "sklearn.preprocessing.PolynomialFeatures" => t(9),
        "sklearn.linear_model.LogisticRegression" => e(0),
        "sklearn.svm.SVC"
        | "sklearn.svm.LinearSVC"
        | "sklearn.svm.SVR"
        | "sklearn.svm.LinearSVR" => e(1),
        "sklearn.linear_model.LinearRegression" => e(2),
        "sklearn.linear_model.Ridge" => e(3),
        "sklearn.linear_model.Lasso" => e(4),
        "sklearn.neighbors.KNeighborsClassifier" | "sklearn.neighbors.KNeighborsRegressor" => e(5),
        "sklearn.naive_bayes.GaussianNB" => e(6),
        "sklearn.tree.DecisionTreeClassifier" | "sklearn.tree.DecisionTreeRegressor" => e(7),
        "sklearn.ensemble.RandomForestClassifier" | "sklearn.ensemble.RandomForestRegressor" => {
            e(8)
        }
        "sklearn.ensemble.ExtraTreesClassifier" | "sklearn.ensemble.ExtraTreesRegressor" => e(9),
        "sklearn.ensemble.GradientBoostingClassifier"
        | "sklearn.ensemble.GradientBoostingRegressor" => e(10),
        "xgboost.XGBClassifier" | "xgboost.XGBRegressor" => e(11),
        "lightgbm.LGBMClassifier" | "lightgbm.LGBMRegressor" => e(12),
        _ => {
            // Method calls on pipeline objects: `<anything>.fit` / `.predict`
            // on a recognized estimator/transformer path.
            if let Some(stripped) = api_path.strip_suffix(".fit") {
                if canonical_op(stripped).is_some() {
                    return Some(PipelineOp::Fit);
                }
            }
            if let Some(stripped) = api_path.strip_suffix(".predict") {
                if canonical_op(stripped).is_some() {
                    return Some(PipelineOp::Predict);
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_is_stable_and_complete() {
        let v = OpVocab::new();
        assert_eq!(v.len(), 3 + 10 + 13 + 2);
        assert_eq!(v.id(PipelineOp::Dataset), 0);
        assert_eq!(v.id(PipelineOp::ReadCsv), 1);
        for id in 0..v.len() {
            assert_eq!(v.id(v.op(id)), id);
        }
    }

    #[test]
    fn name_roundtrip() {
        let v = OpVocab::new();
        for op in v.ops() {
            assert_eq!(PipelineOp::from_name(op.name()), Some(*op), "{op}");
        }
        assert_eq!(PipelineOp::from_name("transformers_xl"), None);
    }

    #[test]
    fn canonical_mapping() {
        assert_eq!(canonical_op("pandas.read_csv"), Some(PipelineOp::ReadCsv));
        assert_eq!(
            canonical_op("xgboost.XGBClassifier"),
            Some(PipelineOp::Estimator(11))
        );
        assert_eq!(
            canonical_op("sklearn.preprocessing.StandardScaler"),
            Some(PipelineOp::Transformer(1))
        );
        assert_eq!(canonical_op("matplotlib.pyplot.plot"), None);
        assert_eq!(canonical_op("torch.nn.Linear"), None);
        assert_eq!(canonical_op("sklearn.svm.SVC.fit"), Some(PipelineOp::Fit));
        assert_eq!(
            canonical_op("xgboost.XGBRegressor.predict"),
            Some(PipelineOp::Predict)
        );
        assert_eq!(canonical_op("pandas.DataFrame.describe"), None);
    }

    #[test]
    fn estimator_and_transformer_flags() {
        assert!(PipelineOp::Transformer(0).is_transformer());
        assert!(!PipelineOp::Transformer(0).is_estimator());
        assert!(PipelineOp::Estimator(3).is_estimator());
        assert!(!PipelineOp::Fit.is_estimator());
    }

    #[test]
    fn names_match_learner_crate_vocabulary() {
        // Guard against drift between the two crates' canonical names.
        assert_eq!(TRANSFORMER_NAMES[1], "standard_scaler");
        assert_eq!(ESTIMATOR_NAMES[11], "xgboost");
        assert_eq!(ESTIMATOR_NAMES[10], "gradient_boost");
    }
}
