//! Integration tests for the interprocedural pass and the recovering
//! front end: helper-wrapped preprocessing must yield the same pipeline
//! skeleton as its inlined equivalent, and malformed notebooks must
//! degrade to diagnostics instead of failures.

use kgpip_codegraph::{
    analyze, analyze_with_diagnostics, filter_graph, lint_pipeline_graph, NodeKind, PipelineOp,
    Severity,
};

/// A corpus-style script with the preprocessing chain inside a `def`
/// helper (the shape `CorpusConfig::helper_fraction` generates).
const HELPER_SCRIPT: &str = "\
import pandas as pd
import numpy as np
from sklearn.model_selection import train_test_split
from sklearn.preprocessing import StandardScaler
from sklearn.decomposition import PCA
from sklearn.ensemble import GradientBoostingClassifier
df = pd.read_csv('titanic.csv')
df.describe()
y = df['target']
X = df.drop('target', 1)
X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)
def preprocess(data, test):
    prep0 = StandardScaler()
    data2 = prep0.fit_transform(data)
    test2 = prep0.transform(test)
    prep1 = PCA(n_components=5)
    data22 = prep1.fit_transform(data2)
    test22 = prep1.transform(test2)
    return data22
X_train_p = preprocess(X_train, X_test)
model = GradientBoostingClassifier(n_estimators=100)
model.fit(X_train_p, y_train)
preds = model.predict(X_test)
print(preds)
";

/// The same pipeline with the helper body written inline.
const INLINED_SCRIPT: &str = "\
import pandas as pd
import numpy as np
from sklearn.model_selection import train_test_split
from sklearn.preprocessing import StandardScaler
from sklearn.decomposition import PCA
from sklearn.ensemble import GradientBoostingClassifier
df = pd.read_csv('titanic.csv')
df.describe()
y = df['target']
X = df.drop('target', 1)
X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)
prep0 = StandardScaler()
data2 = prep0.fit_transform(X_train)
test2 = prep0.transform(X_test)
prep1 = PCA(n_components=5)
data22 = prep1.fit_transform(data2)
test22 = prep1.transform(test2)
X_train_p = data22
model = GradientBoostingClassifier(n_estimators=100)
model.fit(X_train_p, y_train)
preds = model.predict(X_test)
print(preds)
";

#[test]
fn helper_script_produces_the_same_skeleton_as_its_inlined_equivalent() {
    let helper_raw = analyze(HELPER_SCRIPT).unwrap();
    let inlined_raw = analyze(INLINED_SCRIPT).unwrap();

    // Same resolved call sequence: the def is instantiated in place.
    let call_labels = |g: &kgpip_codegraph::CodeGraph| -> Vec<String> {
        g.nodes_of_kind(NodeKind::Call)
            .into_iter()
            .map(|i| g.nodes[i].label.to_string())
            .collect()
    };
    assert_eq!(call_labels(&helper_raw), call_labels(&inlined_raw));

    let helper_filtered = filter_graph(&helper_raw);
    let inlined_filtered = filter_graph(&inlined_raw);
    assert_eq!(helper_filtered.ops, inlined_filtered.ops);
    assert_eq!(
        helper_filtered.skeleton(),
        inlined_filtered.skeleton(),
        "helper-wrapped preprocessing must not change the skeleton"
    );
    let (transformers, estimator) = helper_filtered.skeleton().unwrap();
    assert_eq!(transformers, vec!["standard_scaler", "pca"]);
    assert_eq!(estimator, "gradient_boost");
    assert_eq!(lint_pipeline_graph(&helper_filtered), vec![]);
}

#[test]
fn helper_pipeline_contains_the_transformer_ops() {
    let filtered = filter_graph(&analyze(HELPER_SCRIPT).unwrap());
    assert!(filtered.ops.contains(&PipelineOp::ReadCsv));
    assert!(filtered.ops.contains(&PipelineOp::TrainTestSplit));
    assert!(filtered
        .ops
        .iter()
        .any(|op| matches!(op, PipelineOp::Transformer(_))));
}

#[test]
fn malformed_notebook_recovers_with_span_carrying_diagnostics() {
    let src = "\
import pandas as pd
from sklearn.svm import SVC
df = pd.read_csv('a.csv')
x = = broken
m = SVC()
m.fit(df, df)
";
    assert!(analyze(src).is_err(), "strict analysis must reject");
    let (graph, diags) = analyze_with_diagnostics(src);
    let errors: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].span.line, 4);
    assert!(errors[0].span.col >= 1);
    // The surrounding pipeline still analyzes and filters.
    let filtered = filter_graph(&graph);
    let (transformers, estimator) = filtered.skeleton().unwrap();
    assert!(transformers.is_empty());
    assert_eq!(estimator, "linear_svm");
}

#[test]
fn nested_helpers_are_instantiated_transitively() {
    let src = "\
import pandas as pd
from sklearn.preprocessing import StandardScaler
def scale(data):
    s = StandardScaler()
    out = s.fit_transform(data)
    return out
def prepare(data):
    cleaned = data.fillna(0)
    scaled = scale(cleaned)
    return scaled
df = pd.read_csv('a.csv')
x = prepare(df)
";
    let g = analyze(src).unwrap();
    let labels: Vec<String> = g
        .nodes_of_kind(NodeKind::Call)
        .into_iter()
        .map(|i| g.nodes[i].label.to_string())
        .collect();
    assert_eq!(
        labels,
        vec![
            "pandas.read_csv",
            "pandas.DataFrame.fillna",
            "sklearn.preprocessing.StandardScaler",
            "sklearn.preprocessing.StandardScaler.fit_transform",
        ]
    );
}
