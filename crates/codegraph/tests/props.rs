//! Property-based tests for the static-analysis substrate.

use kgpip_codegraph::lexer::tokenize;
use kgpip_codegraph::parser::parse;
use kgpip_codegraph::{
    analyze, analyze_with_diagnostics, filter_graph, lint_code_graph, lint_pipeline_graph,
    lint_reduction, parse_with_diagnostics, NodeKind, OpVocab, PipelineOp, Severity,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer is total: it returns Ok or Err but never panics, on
    /// arbitrary printable input.
    #[test]
    fn lexer_is_total(src in "[ -~\n]{0,200}") {
        let _ = tokenize(&src);
    }

    /// The parser is total over arbitrary printable input.
    #[test]
    fn parser_is_total(src in "[ -~\n]{0,200}") {
        let _ = parse(&src);
    }

    /// The recovering front end is total AND consistent with the strict
    /// one: strict parse fails exactly when recovery collected an
    /// error-severity diagnostic.
    #[test]
    fn recovering_parse_matches_strict_failure(src in "[ -~\n]{0,200}") {
        let (_module, diags) = parse_with_diagnostics(&src);
        let has_error = diags.iter().any(|d| d.severity == Severity::Error);
        prop_assert_eq!(parse(&src).is_err(), has_error);
    }

    /// The recovering analyzer never panics on arbitrary near-Python
    /// input and always produces a structurally valid graph.
    #[test]
    fn recovering_analysis_is_total_and_lints_clean(src in "[ -~\n]{0,300}") {
        let (graph, _diags) = analyze_with_diagnostics(&src);
        prop_assert!(lint_code_graph(&graph).is_empty());
        let filtered = filter_graph(&graph);
        prop_assert!(!kgpip_codegraph::lint::has_errors(&lint_pipeline_graph(&filtered)));
        prop_assert!(lint_reduction(&graph, &filtered).is_empty());
    }

    /// Analysis of syntactically valid assignment chains succeeds and
    /// produces one call node per call.
    #[test]
    fn analysis_counts_calls(n_calls in 1usize..15) {
        let mut src = String::from("import pandas as pd\ndf = pd.read_csv('x.csv')\n");
        for i in 0..n_calls {
            src.push_str(&format!("df_{i} = df.step_{i}()\n"));
        }
        let g = analyze(&src).unwrap();
        // read_csv + n_calls method calls.
        prop_assert_eq!(g.nodes_of_kind(NodeKind::Call).len(), 1 + n_calls);
        // Control flow chains them all.
        let cf = g.edges.iter()
            .filter(|e| e.kind == kgpip_codegraph::EdgeKind::ControlFlow)
            .count();
        prop_assert_eq!(cf, n_calls);
    }

    /// Filtering is monotone: the filtered graph never has more nodes than
    /// the raw graph has call nodes, and all its ops are canonical.
    #[test]
    fn filter_is_a_projection(
        n_noise in 0usize..10,
        with_estimator in proptest::bool::ANY,
    ) {
        let mut src = String::from("import pandas as pd\nfrom sklearn.svm import SVC\ndf = pd.read_csv('a.csv')\n");
        for _ in 0..n_noise {
            src.push_str("df.describe()\n");
        }
        if with_estimator {
            src.push_str("m = SVC()\nm.fit(df, df)\n");
        }
        let raw = analyze(&src).unwrap();
        let filtered = filter_graph(&raw);
        prop_assert!(filtered.num_nodes() <= raw.nodes_of_kind(NodeKind::Call).len());
        prop_assert_eq!(filtered.skeleton().is_some(), with_estimator);
        for &(f, t) in &filtered.edges {
            prop_assert!(f < filtered.num_nodes() && t < filtered.num_nodes());
        }
    }

    /// with_dataset_node is idempotent in node count growth and keeps all
    /// edges valid.
    #[test]
    fn dataset_node_attachment_shifts_consistently(
        ops_idx in proptest::collection::vec(0usize..28, 1..8),
    ) {
        let vocab = OpVocab::new();
        let ops: Vec<PipelineOp> = ops_idx.iter().map(|&i| vocab.op(i)).collect();
        let edges: Vec<(usize, usize)> =
            (0..ops.len().saturating_sub(1)).map(|i| (i, i + 1)).collect();
        let g = kgpip_codegraph::PipelineGraph { ops: ops.clone(), edges };
        let with = g.with_dataset_node();
        prop_assert_eq!(with.num_nodes(), g.num_nodes() + 1);
        prop_assert_eq!(with.ops[0], PipelineOp::Dataset);
        for &(f, t) in &with.edges {
            prop_assert!(f < with.num_nodes() && t < with.num_nodes());
        }
        // The dataset node reaches at least one other node.
        prop_assert!(with.edges.iter().any(|(f, _)| *f == 0));
    }

    /// Corpus scripts always analyze, whatever the seed and noise level.
    #[test]
    fn corpus_scripts_always_analyze(seed in 0u64..300, noise in 0usize..20) {
        use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
        let scripts = generate_corpus(
            &[DatasetProfile::new("prop_ds", seed % 2 == 0)],
            &CorpusConfig {
                scripts_per_dataset: 1,
                eda_noise: noise,
                unsupported_fraction: if seed % 3 == 0 { 1.0 } else { 0.0 },
                seed,
                ..CorpusConfig::default()
            },
        );
        for s in scripts {
            let g = analyze(&s.source).unwrap();
            prop_assert!(g.num_nodes() > 0);
        }
    }

    /// Every graph mined from a corpus — including helper-wrapped and
    /// malformed scripts — satisfies the lint invariants, at any seed.
    #[test]
    fn corpus_graphs_always_lint_clean(seed in 0u64..200) {
        use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
        use kgpip_codegraph::{lint_graph4ml, Graph4Ml};
        let mut profile = DatasetProfile::new("prop_lint", seed % 2 == 0);
        profile.has_missing = true;
        let scripts = generate_corpus(
            &[profile],
            &CorpusConfig {
                scripts_per_dataset: 4,
                unsupported_fraction: 0.2,
                helper_fraction: 0.5,
                malformed_fraction: 0.25,
                seed,
                ..CorpusConfig::default()
            },
        );
        let mut g4 = Graph4Ml::new();
        for s in &scripts {
            let (raw, _diags) = analyze_with_diagnostics(&s.source);
            prop_assert!(lint_code_graph(&raw).is_empty());
            let filtered = filter_graph(&raw);
            prop_assert!(lint_pipeline_graph(&filtered).is_empty());
            prop_assert!(lint_reduction(&raw, &filtered).is_empty());
            if filtered.skeleton().is_some() {
                g4.add_pipeline(&s.dataset, &filtered);
            }
        }
        prop_assert!(lint_graph4ml(&g4).is_empty());
    }
}
