//! The immutable serving artifact: everything the online workflow reads.
//!
//! [`Kgpip::train`] produces two kinds of state. *Train-time* state — the
//! assembled Graph4ML and the run's [`TrainingStats`] — exists for corpus
//! analyses and ablations and is never consulted while answering a
//! prediction. *Serve-time* state — generator parameters, the similarity
//! index, the op vocabulary, the per-dataset content embeddings, and the
//! conditioning center — is everything the paper's online path ("embed →
//! nearest neighbour → conditional generation → HPO") touches. The
//! [`TrainedModel`] is exactly that serve-time slice, split out as an
//! immutable value: every read path takes `&TrainedModel`, so one
//! `Arc<TrainedModel>` can be shared across any number of serving threads
//! without locks, and `kgpip-serve` hot-swaps whole models atomically by
//! replacing the `Arc`.
//!
//! [`Kgpip::train`]: crate::Kgpip::train
//! [`TrainingStats`]: crate::TrainingStats

use crate::train::KgpipConfig;
use crate::{KgpipError, Result};
use kgpip_codegraph::OpVocab;
use kgpip_embeddings::{table_embedding, HnswConfig, PqConfig, VectorIndex};
use kgpip_graphgen::GraphGenerator;
use kgpip_tabular::DataFrame;
use std::collections::HashMap;
use std::sync::Arc;

/// Amplification applied to centred conditioning embeddings.
pub(crate) const CONDITION_GAIN: f64 = 8.0;

/// The immutable trained-model artifact: the serve-time slice of a KGpip
/// training run. All prediction entry points ([`nearest_dataset`],
/// [`predict_skeletons`], [`run_k`], …) are methods on `&TrainedModel`,
/// so the artifact can be wrapped in an [`Arc`] and shared freely.
///
/// [`nearest_dataset`]: TrainedModel::nearest_dataset
/// [`predict_skeletons`]: TrainedModel::predict_skeletons
/// [`run_k`]: TrainedModel::run_k
#[derive(Clone)]
pub struct TrainedModel {
    pub(crate) config: KgpipConfig,
    /// Mean of the training-dataset embeddings. Raw table embeddings share
    /// large common components (type indicators, size features), leaving
    /// the between-dataset signal microscopic; the generator is therefore
    /// conditioned on centred, amplified embeddings instead.
    pub(crate) embedding_center: Vec<f64>,
    pub(crate) vocab: OpVocab,
    pub(crate) generator: GraphGenerator,
    pub(crate) index: VectorIndex,
    pub(crate) embeddings: HashMap<String, Vec<f64>>,
}

impl TrainedModel {
    /// The system configuration the model was trained with (plus any
    /// deployment overrides applied via [`TrainedModel::set_parallelism`]).
    pub fn config(&self) -> &KgpipConfig {
        &self.config
    }

    /// The op vocabulary.
    pub fn vocab(&self) -> &OpVocab {
        &self.vocab
    }

    /// The trained graph generator (read-only; exposed so tooling and
    /// tests can inspect parameters, e.g. for bit-level snapshot
    /// verification).
    pub fn generator(&self) -> &GraphGenerator {
        &self.generator
    }

    /// Content embedding of a training dataset, if known.
    pub fn embedding_of(&self, dataset: &str) -> Option<&[f64]> {
        self.embeddings.get(dataset).map(Vec::as_slice)
    }

    /// The conditioning center (mean training-dataset embedding).
    pub fn embedding_center(&self) -> &[f64] {
        &self.embedding_center
    }

    /// Number of training datasets in the similarity catalog.
    pub fn catalog_len(&self) -> usize {
        self.index.len()
    }

    /// The similarity index (read-only; exposed so tooling can inspect
    /// the active tier and export mapped catalog files).
    pub fn index(&self) -> &VectorIndex {
        &self.index
    }

    /// Registers an unseen dataset in the similarity catalog online:
    /// embeds `frame` by content, extends the active index tier
    /// incrementally (`VectorIndex::register` — an HNSW graph takes an
    /// insert, IVF assigns to its nearest centroid; no retrain), and
    /// stores the embedding for future conditional generation. Returns
    /// the stored embedding.
    ///
    /// The conditioning center is deliberately *not* recomputed: it is a
    /// training-time statistic, and shifting it would perturb generation
    /// for every existing dataset. Retraining refreshes it.
    ///
    /// Errors with [`KgpipError::DuplicateDataset`] when `name` is
    /// already cataloged. Note this mutates the model — serving stacks
    /// clone the current artifact, register, and hot-swap (see
    /// `kgpip-serve`'s `register_dataset`).
    pub fn register_dataset(&mut self, name: &str, frame: &DataFrame) -> Result<Vec<f64>> {
        if self.embeddings.contains_key(name) {
            return Err(KgpipError::DuplicateDataset(name.to_string()));
        }
        let embedding = table_embedding(frame);
        self.index.register(name, embedding.clone());
        self.embeddings.insert(name.to_string(), embedding.clone());
        Ok(embedding)
    }

    /// Builds (or rebuilds) an HNSW graph over the similarity catalog,
    /// promoting it to the active search tier regardless of catalog size
    /// — the manual override for deployments that register datasets
    /// online and want graph-tier lookups before the auto-tune threshold.
    pub fn build_hnsw_index(&mut self, config: HnswConfig) {
        self.index.build_hnsw(config);
    }

    /// Quantizes the similarity catalog's vector store
    /// ([`VectorIndex::quantize`]): tier scans switch to compact PQ codes
    /// with an exact re-rank, answers stay exact-ordered, and subsequent
    /// [`TrainedModel::register_dataset`] calls encode new vectors
    /// against the frozen codebooks. The manual override for deployments
    /// below the auto-tune threshold; `auto_tune` applies it
    /// automatically at catalog scale.
    pub fn quantize_index(&mut self, config: PqConfig) -> Result<()> {
        self.index
            .quantize(config)
            .map_err(KgpipError::InconsistentArtifact)
    }

    /// Overrides the run-time parallelism — a deployment knob, not a
    /// training artifact (clamped to ≥ 1). Applies to skeleton search,
    /// trial evaluation, and the generator's top-K sampling alike. Takes
    /// `&mut self`, so apply it *before* wrapping the model in an `Arc`.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.config.parallelism = parallelism.max(1);
        self.config.generator.parallelism = self.config.parallelism;
        self.generator.set_parallelism(self.config.parallelism);
    }

    /// Builder-style [`TrainedModel::set_parallelism`].
    pub fn with_parallelism(mut self, parallelism: usize) -> TrainedModel {
        self.set_parallelism(parallelism);
        self
    }

    /// Wraps a clone of the model in an [`Arc`] for lock-free sharing
    /// across serving threads.
    pub fn share(&self) -> Arc<TrainedModel> {
        Arc::new(self.clone())
    }

    /// Centres and amplifies an embedding for the conditioning pathway.
    pub(crate) fn condition_vector(&self, e: &[f64]) -> Vec<f64> {
        e.iter()
            .zip(&self.embedding_center)
            .map(|(x, c)| (x - c) * CONDITION_GAIN)
            .collect()
    }
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("datasets", &self.index.len())
            .field("generator_params", &self.generator.num_parameters())
            .field("embed_dim", &self.embedding_center.len())
            .finish()
    }
}
