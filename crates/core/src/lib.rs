//! KGpip — AutoML learner and transformer selection via graph generation
//! over mined pipelines.
//!
//! This crate is the system of the paper's Figure 1. It wires together the
//! substrates built in the sibling crates:
//!
//! **Offline (training) workflow**
//! 1. statically analyze a corpus of data-science scripts into code graphs
//!    (`kgpip-codegraph`, the GraphGen4Code substitute),
//! 2. filter each code graph to its ML-relevant subgraph and link it to
//!    its dataset node, assembling Graph4ML (§3.4),
//! 3. embed every training dataset by *content* (`kgpip-embeddings`) and
//!    index the embeddings for similarity search (§3.2),
//! 4. train the deep graph generator (`kgpip-graphgen`) on Graph4ML, with
//!    each pipeline conditioned on its dataset's content embedding (§3.5).
//!
//! **Online (prediction) workflow**
//! 1. embed the unseen dataset and retrieve its nearest seen dataset,
//! 2. conditionally generate the top-K pipeline graphs from the prefix
//!    `[dataset → read_csv]`, seeded with the neighbour's embedding,
//! 3. decode each graph into a pipeline *skeleton* (preprocessors + one
//!    estimator), validating it against the backend optimizer's JSON
//!    capability document (§3.6),
//! 4. give each skeleton `(T − t)/K` of the remaining time budget for
//!    hyperparameter optimization on the backend (FLAML-style or
//!    Auto-Sklearn-style engine from `kgpip-hpo`),
//! 5. return the best pipeline found, plus the full per-skeleton ranking
//!    (used by the paper's MRR and diversity analyses).
//!
//! ```no_run
//! use kgpip::prelude::*;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let scripts: Vec<kgpip_codegraph::corpus::ScriptRecord> = vec![];
//! # let tables: Vec<(String, DataFrame)> = vec![];
//! # let unseen: Dataset = todo!();
//! let config = KgpipConfig::default().with_k(5).with_seed(7).with_parallelism(4);
//! let model = Kgpip::train(&scripts, &tables, config)?;
//! let mut backend = Flaml::new(0);
//! let run = model.run(&unseen, &mut backend, TimeBudget::seconds(60.0))?;
//! println!("best: {} -> {:.3}", run.best().spec.describe(), run.best_score());
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod predict;
pub mod skeleton;
pub mod snapshot;
pub mod train;

pub use artifact::TrainedModel;
pub use kgpip_codegraph::{MineOutcome, MiningCache};
pub use predict::{KgpipRun, SkeletonResult};
pub use skeleton::{decode_skeleton, validate_against_capabilities};
pub use snapshot::Snapshot;
pub use train::{Kgpip, KgpipConfig, TrainingStats};

/// One-stop imports for driving KGpip end to end: the system types, the
/// HPO engines and their shared evaluation machinery, and the tabular
/// primitives every example needs.
pub mod prelude {
    pub use crate::{
        Kgpip, KgpipConfig, KgpipError, KgpipRun, MiningCache, SkeletonResult, Snapshot,
        TrainedModel, TrainingStats,
    };
    pub use kgpip_hpo::{
        Al, AutoSklearn, BudgetGate, Candidate, Evaluator, Flaml, HpoResult, Optimizer, Skeleton,
        TimeBudget, TrialOutcome,
    };
    pub use kgpip_learners::{EstimatorKind, TransformerKind};
    pub use kgpip_tabular::{train_test_split, Column, DataFrame, Dataset, Task};
}

/// Errors produced by the KGpip system.
#[derive(Debug)]
pub enum KgpipError {
    /// The training corpus yielded no usable pipelines after filtering.
    EmptyTrainingSet,
    /// The model's similarity catalog holds no training datasets, so
    /// nearest-neighbour retrieval cannot answer.
    EmptyCatalog,
    /// The request cannot yield a pipeline skeleton (currently: `k == 0`).
    NoValidSkeleton,
    /// A script failed static analysis.
    Analysis(kgpip_codegraph::CodeGraphError),
    /// The backend optimizer failed on every predicted skeleton.
    AllSkeletonsFailed,
    /// An underlying HPO failure outside skeleton search.
    Hpo(kgpip_hpo::HpoError),
    /// A tabular-layer failure.
    Tabular(kgpip_tabular::TabularError),
    /// Saving or loading a trained model failed.
    Persistence(String),
    /// The trained artifact's internal tables disagree with each other
    /// (e.g. the similarity index names a dataset the embedding store
    /// does not hold) — a corrupted or hand-edited model file.
    InconsistentArtifact(String),
    /// An online registration named a dataset the catalog already holds;
    /// re-registering would shadow the original's embedding.
    DuplicateDataset(String),
}

impl std::fmt::Display for KgpipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KgpipError::EmptyTrainingSet => {
                write!(f, "no valid pipelines survived filtering; cannot train")
            }
            KgpipError::EmptyCatalog => {
                write!(
                    f,
                    "the similarity catalog is empty; no neighbour to retrieve"
                )
            }
            KgpipError::NoValidSkeleton => {
                write!(f, "the request cannot produce a pipeline skeleton (k = 0)")
            }
            KgpipError::Analysis(e) => write!(f, "static analysis failed: {e}"),
            KgpipError::AllSkeletonsFailed => {
                write!(f, "every predicted skeleton failed hyperparameter search")
            }
            KgpipError::Hpo(e) => write!(f, "hpo failure: {e}"),
            KgpipError::Tabular(e) => write!(f, "tabular failure: {e}"),
            KgpipError::Persistence(m) => write!(f, "model persistence failure: {m}"),
            KgpipError::InconsistentArtifact(m) => {
                write!(f, "inconsistent trained artifact: {m}")
            }
            KgpipError::DuplicateDataset(name) => {
                write!(f, "dataset `{name}` is already in the similarity catalog")
            }
        }
    }
}

impl std::error::Error for KgpipError {}

impl From<kgpip_codegraph::CodeGraphError> for KgpipError {
    fn from(e: kgpip_codegraph::CodeGraphError) -> Self {
        KgpipError::Analysis(e)
    }
}

impl From<kgpip_hpo::HpoError> for KgpipError {
    fn from(e: kgpip_hpo::HpoError) -> Self {
        KgpipError::Hpo(e)
    }
}

impl From<kgpip_tabular::TabularError> for KgpipError {
    fn from(e: kgpip_tabular::TabularError) -> Self {
        KgpipError::Tabular(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, KgpipError>;
