//! The online KGpip workflow: embed → nearest neighbour → conditional
//! generation → skeleton decoding → `(T − t)/K` hyperparameter search.
//!
//! Every entry point is a method on [`&TrainedModel`](TrainedModel) — the
//! immutable serving artifact — so one `Arc<TrainedModel>` serves any
//! number of threads. [`Kgpip`] keeps thin delegations for callers that
//! hold a full training run. The pipeline is deliberately factored into
//! pure stages ([`TrainedModel::embed_table`] →
//! [`TrainedModel::predict_from_query_embedding`]) so a batching server
//! can interleave stages across requests and still produce bit-identical
//! answers to the direct [`TrainedModel::predict_skeletons`] call.

use crate::artifact::TrainedModel;
use crate::skeleton::{decode_skeleton, validate_against_capabilities};
use crate::train::Kgpip;
use crate::{KgpipError, Result};
use kgpip_embeddings::{table_embedding, table_embedding_chunked};
use kgpip_graphgen::effective_parallelism;
use kgpip_graphgen::model::TypedGraph;
use kgpip_hpo::{HpoResult, Optimizer, Skeleton, TimeBudget};
use kgpip_learners::EstimatorKind;
use kgpip_tabular::{ChunkedFrame, DataFrame, Dataset, Task};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::time::Duration;

/// Row-sample bound for chunked table embeddings: tables at or below this
/// many rows embed from every row (bit-identical to [`TrainedModel::embed_table`]);
/// larger tables embed from a deterministic bottom-k row sample so the
/// embedding cost stops growing with the table.
pub const EMBED_SAMPLE_BOUND: usize = 100_000;

/// Seed of the deterministic embedding row sample. Fixed so the same table
/// always embeds identically regardless of who asks.
pub const EMBED_SAMPLE_SEED: u64 = 0x006b_6770_6970; // "kgpip"

/// The outcome of HPO on one predicted skeleton.
#[derive(Debug)]
pub struct SkeletonResult {
    /// The predicted skeleton, in generation-score order (rank 0 = the
    /// generator's most probable pipeline).
    pub skeleton: Skeleton,
    /// The generator's log-probability score for the source graph.
    pub generation_score: f64,
    /// HPO outcome (`None` when the backend failed on this skeleton).
    pub hpo: Option<HpoResult>,
}

/// A complete KGpip run on one dataset.
#[derive(Debug)]
pub struct KgpipRun {
    /// Name of the nearest seen dataset used to seed generation.
    pub neighbour: String,
    /// Time consumed by generation + validation (the paper's `t`).
    pub generation_time: Duration,
    /// Per-skeleton results in generation-rank order.
    pub results: Vec<SkeletonResult>,
    /// Index into `results` of the best pipeline by validation score.
    pub best_index: usize,
}

impl KgpipRun {
    /// The best HPO result. (`run_k` only constructs a `KgpipRun` when at
    /// least one skeleton search succeeded, so `best_index` always points
    /// at a populated result.)
    pub fn best(&self) -> &HpoResult {
        // xlint: allow(panic-in-serve-path): run_k only builds a KgpipRun after at least one skeleton search succeeded, and sets best_index to that entry
        let best = &self.results[self.best_index];
        // xlint: allow(panic-in-serve-path): the same invariant: the entry at best_index always holds a populated hpo result
        best.hpo.as_ref().expect("populated at best_index")
    }

    /// The best validation score.
    pub fn best_score(&self) -> f64 {
        self.best().valid_score
    }

    /// Reciprocal rank of the eventual best pipeline in the generator's
    /// ranking (§4.5.2: "we measure where in our ranked list of predicted
    /// pipelines the best pipeline turned out to be ... MRR is 0.71").
    pub fn reciprocal_rank(&self) -> f64 {
        1.0 / (self.best_index + 1) as f64
    }

    /// Estimator kinds in generation-rank order (for the §4.5.3 diversity
    /// analysis and Figure 8).
    pub fn predicted_estimators(&self) -> Vec<EstimatorKind> {
        self.results.iter().map(|r| r.skeleton.estimator).collect()
    }
}

impl TrainedModel {
    /// Embeds an unseen table by content — the first stage of the online
    /// workflow, exposed separately so a batching server can embed a
    /// whole wave of tables before any generation runs.
    pub fn embed_table(&self, frame: &DataFrame) -> Vec<f64> {
        table_embedding(frame)
    }

    /// Embeds a chunked table without materializing it: column statistics
    /// accumulate chunk-by-chunk and the string trigram scan visits a
    /// deterministic row sample bounded by [`EMBED_SAMPLE_BOUND`]. At or
    /// below the bound the result is bit-identical to
    /// [`TrainedModel::embed_table`] on the assembled frame; above it the
    /// embedding is invariant to the chunk size, so out-of-core ingest and
    /// in-memory ingest answer the same query.
    pub fn embed_table_chunked(&self, frame: &ChunkedFrame) -> Vec<f64> {
        table_embedding_chunked(frame, EMBED_SAMPLE_BOUND, EMBED_SAMPLE_SEED)
    }

    /// [`TrainedModel::predict_table`] for a chunked (streamed-in) table —
    /// the larger-than-RAM serving path: embed from chunk statistics and a
    /// bounded row sample, then run the usual nearest-neighbour →
    /// generation stages on the query embedding.
    pub fn predict_table_chunked(
        &self,
        frame: &ChunkedFrame,
        task: Task,
        k: usize,
        capabilities_json: &str,
        seed: u64,
    ) -> Result<(Vec<(Skeleton, f64)>, String)> {
        let query = self.embed_table_chunked(frame);
        self.predict_from_query_embedding(&query, task, k, capabilities_json, seed)
    }

    /// Finds the nearest training dataset `(name, similarity)` for an
    /// already-computed query embedding, through whichever similarity
    /// tier `Kgpip::train`'s auto-tuning selected for the catalog size:
    /// exact scan below `VectorIndex::IVF_AUTO_THRESHOLD`, IVF probing
    /// up to `VectorIndex::HNSW_AUTO_THRESHOLD`, and the deterministic
    /// HNSW graph beyond it (`VectorIndex::search` dispatches).
    ///
    /// Errors with [`KgpipError::EmptyCatalog`] when the model has no
    /// training datasets — a state a server must report, not panic on.
    pub fn nearest_by_embedding(&self, embedding: &[f64]) -> Result<(String, f64)> {
        self.index
            .search(embedding, 1)
            .into_iter()
            .next()
            .ok_or(KgpipError::EmptyCatalog)
    }

    /// Embeds an unseen dataset and finds its nearest training dataset
    /// (name, similarity) by content.
    pub fn nearest_dataset(&self, ds: &Dataset) -> Result<(String, f64)> {
        self.nearest_by_embedding(&self.embed_table(&ds.features))
    }

    /// Predicts up to `k` pipeline skeletons for an unseen dataset,
    /// without running HPO — the paper notes this step is near-instant
    /// ("if the user desires only to know what learners would work best
    /// for their dataset, KGpip can do that almost instantaneously").
    /// Returns `(skeletons with scores, nearest-neighbour name)`.
    pub fn predict_skeletons(
        &self,
        ds: &Dataset,
        k: usize,
        capabilities_json: &str,
        seed: u64,
    ) -> Result<(Vec<(Skeleton, f64)>, String)> {
        let query = self.embed_table(&ds.features);
        self.predict_from_query_embedding(&query, ds.task, k, capabilities_json, seed)
    }

    /// [`TrainedModel::predict_skeletons`] for a table without labels —
    /// the serving layer's entry point, where requests carry a bare table
    /// and a task kind.
    pub fn predict_table(
        &self,
        frame: &DataFrame,
        task: Task,
        k: usize,
        capabilities_json: &str,
        seed: u64,
    ) -> Result<(Vec<(Skeleton, f64)>, String)> {
        let query = self.embed_table(frame);
        self.predict_from_query_embedding(&query, task, k, capabilities_json, seed)
    }

    /// Second stage of the online workflow: nearest-neighbour lookup and
    /// conditional generation from an already-computed query embedding.
    /// `predict_skeletons` ≡ `embed_table` + this method, which is what
    /// lets `kgpip-serve` batch the embedding stage across requests while
    /// staying bit-identical to the direct call.
    pub fn predict_from_query_embedding(
        &self,
        query: &[f64],
        task: Task,
        k: usize,
        capabilities_json: &str,
        seed: u64,
    ) -> Result<(Vec<(Skeleton, f64)>, String)> {
        let (neighbour, _) = self.nearest_by_embedding(query)?;
        // Seed generation with the *neighbour's* stored content embedding
        // (§3.5: generation starts from "the closest seen dataset node —
        // more specifically, its content embedding"). The index and the
        // embedding store are built together by `Kgpip::train`, but a
        // hand-edited model file can desynchronize them — a state a
        // server must report, not panic on.
        let embedding = self
            .embeddings
            .get(&neighbour)
            .ok_or_else(|| {
                KgpipError::InconsistentArtifact(format!(
                    "similarity index returned dataset `{neighbour}` but the embedding store has no entry for it"
                ))
            })?
            .clone();
        let skeletons =
            self.predict_with_embedding(&embedding, task, k, capabilities_json, seed)?;
        Ok((skeletons, neighbour))
        // (predict_with_embedding centres the vector; passing the raw
        // stored embedding here keeps the two paths consistent.)
    }

    /// Like [`TrainedModel::predict_skeletons`] but with an explicit
    /// conditioning embedding — the hook for the content-vs-random
    /// conditioning ablation (DESIGN.md).
    ///
    /// Errors with [`KgpipError::NoValidSkeleton`] when `k == 0` — the
    /// one request shape that cannot produce a pipeline (for `k ≥ 1` the
    /// corpus-dominant fallback guarantees a result).
    pub fn predict_with_embedding(
        &self,
        embedding: &[f64],
        task: Task,
        k: usize,
        capabilities_json: &str,
        seed: u64,
    ) -> Result<Vec<(Skeleton, f64)>> {
        if k == 0 {
            return Err(KgpipError::NoValidSkeleton);
        }
        let prefix = TypedGraph::conditioning_prefix(&self.vocab);
        let conditioned = self.condition_vector(embedding);
        // Oversample: generated graphs can be invalid or unsupported.
        let candidates = self.generator.generate_top_k(
            &conditioned,
            &prefix,
            k * 3,
            self.config.temperature,
            seed,
        );
        let mut out: Vec<(Skeleton, f64)> = Vec::new();
        for c in candidates {
            let graph = c.graph.decode(&self.vocab);
            let Some(skeleton) = decode_skeleton(&graph, task) else {
                continue;
            };
            if !validate_against_capabilities(&skeleton, capabilities_json) {
                continue;
            }
            if out.iter().any(|(s, _)| *s == skeleton) {
                continue;
            }
            out.push((skeleton, c.log_prob));
            if out.len() >= k {
                break;
            }
        }
        if out.is_empty() {
            // Fallback: the corpus' dominant learner with no transformers
            // (boosting, which supports both tasks). Deliberately not
            // gated on the capability document — a backend that cannot
            // run it will fail the skeleton search and report that,
            // which beats serving nothing.
            out.push((Skeleton::bare(EstimatorKind::XgBoost), f64::NEG_INFINITY));
        }
        Ok(out)
    }

    /// Runs the full KGpip workflow on one dataset: predict K skeletons,
    /// split the remaining budget `(T − t)/K`, run backend HPO per
    /// skeleton, return everything. Uses the configured `top_k`.
    pub fn run(
        &self,
        train: &Dataset,
        backend: &mut dyn Optimizer,
        budget: TimeBudget,
    ) -> Result<KgpipRun> {
        self.run_k(train, backend, budget, self.config.top_k)
    }

    /// [`TrainedModel::run`] with an explicit K (Figure 7 sweeps
    /// K ∈ {3, 5, 7}).
    ///
    /// With `config.parallelism == 1` skeletons are searched one after the
    /// other, each getting `(T − t)/K` of the *remaining* budget (unused
    /// share rolls forward). With `parallelism > 1` skeletons run on
    /// concurrent lanes, each with an upfront `(T − t)/K` sub-budget drawn
    /// from the same shared trial pool, so the global cap stays exact.
    pub fn run_k(
        &self,
        train: &Dataset,
        backend: &mut dyn Optimizer,
        budget: TimeBudget,
        k: usize,
    ) -> Result<KgpipRun> {
        #[allow(clippy::disallowed_methods)]
        // xlint: allow(wall-clock-in-compute): measures the paper's generation time `t`, reported in KgpipRun; budget accounting lives in TimeBudget
        let started = std::time::Instant::now();
        backend.set_trial_cache(!self.config.disable_trial_cache);
        let capabilities = backend.capabilities();
        let (skeletons, neighbour) =
            self.predict_skeletons(train, k, &capabilities, self.config.seed)?;
        let generation_time = started.elapsed();

        let total = skeletons.len();
        // Clamp at the use site: directly-constructed configs can carry
        // `parallelism: 0`, bypassing the builder's `.max(1)` — and a
        // config asking for more workers than the host has CPUs must take
        // the sequential path rather than pay pool overhead for nothing
        // (the 1-CPU-container regression).
        let workers = effective_parallelism(self.config.parallelism);
        let results: Vec<SkeletonResult> = if workers <= 1 {
            let mut results = Vec::with_capacity(total);
            for (i, (skeleton, generation_score)) in skeletons.into_iter().enumerate() {
                // Sequential (T - t)/K split over both time and trials;
                // the divisor shrinks as skeletons complete, so unused
                // share rolls forward.
                let sub = budget.sub_budget_k(total - i);
                let hpo = backend.optimize_skeleton(train, &skeleton, &sub).ok();
                results.push(SkeletonResult {
                    skeleton,
                    generation_score,
                    hpo,
                });
            }
            results
        } else {
            self.run_skeletons_parallel(train, backend, &budget, skeletons, workers)
        };
        let best_index = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.hpo.as_ref().map(|h| (i, h.valid_score)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .ok_or(KgpipError::AllSkeletonsFailed)?;
        Ok(KgpipRun {
            neighbour,
            generation_time,
            results,
            best_index,
        })
    }

    /// Parallel lanes for the per-skeleton `(T − t)/K` searches: each
    /// skeleton gets a fresh engine clone (configuration only, no search
    /// state) and a sub-budget sharing the parent's trial pool. The
    /// effective parallelism is split across lanes, with the remainder
    /// given to each lane's own trial evaluation.
    fn run_skeletons_parallel(
        &self,
        train: &Dataset,
        backend: &dyn Optimizer,
        budget: &TimeBudget,
        skeletons: Vec<(Skeleton, f64)>,
        workers: usize,
    ) -> Vec<SkeletonResult> {
        let total = skeletons.len();
        // Re-clamp at the fan-out site: `workers` already passed through
        // the caller's clamp, but re-applying is idempotent and keeps
        // this function safe to call from new paths.
        let workers = effective_parallelism(workers);
        let lanes = workers.min(total).max(1);
        let per_engine = (workers / lanes).max(1);
        let engines: Vec<Mutex<Box<dyn Optimizer + Send>>> = (0..total)
            .map(|_| {
                let mut engine = backend.clone_boxed();
                engine.set_parallelism(per_engine);
                Mutex::new(engine)
            })
            .collect();
        let sub_budgets: Vec<TimeBudget> = (0..total).map(|_| budget.sub_budget_k(total)).collect();
        let work: Vec<(usize, Skeleton, f64)> = skeletons
            .into_iter()
            .enumerate()
            .map(|(i, (s, g))| (i, s, g))
            .collect();
        let run_lane = |(i, skeleton, generation_score): &(usize, Skeleton, f64)| {
            // xlint: allow(panic-in-serve-path): i < total by construction and both vectors are built with len total
            let (engine, sub) = (&engines[*i], &sub_budgets[*i]);
            let hpo = engine.lock().optimize_skeleton(train, skeleton, sub).ok();
            SkeletonResult {
                skeleton: skeleton.clone(),
                generation_score: *generation_score,
                hpo,
            }
        };
        match rayon::ThreadPoolBuilder::new().num_threads(lanes).build() {
            Ok(pool) => pool.install(|| work.par_iter().map(run_lane).collect()),
            // Pool construction only fails on thread-resource exhaustion;
            // the lanes are order-independent and each carries its own
            // upfront sub-budget, so running them sequentially returns
            // the same results rather than killing the serving thread.
            Err(_) => work.iter().map(run_lane).collect(),
        }
    }
}

/// Thin delegations so a full training run answers predictions without
/// first extracting its artifact.
impl Kgpip {
    /// See [`TrainedModel::nearest_dataset`].
    pub fn nearest_dataset(&self, ds: &Dataset) -> Result<(String, f64)> {
        self.artifact.nearest_dataset(ds)
    }

    /// See [`TrainedModel::predict_skeletons`].
    pub fn predict_skeletons(
        &self,
        ds: &Dataset,
        k: usize,
        capabilities_json: &str,
        seed: u64,
    ) -> Result<(Vec<(Skeleton, f64)>, String)> {
        self.artifact
            .predict_skeletons(ds, k, capabilities_json, seed)
    }

    /// See [`TrainedModel::predict_with_embedding`].
    pub fn predict_with_embedding(
        &self,
        embedding: &[f64],
        task: Task,
        k: usize,
        capabilities_json: &str,
        seed: u64,
    ) -> Result<Vec<(Skeleton, f64)>> {
        self.artifact
            .predict_with_embedding(embedding, task, k, capabilities_json, seed)
    }

    /// See [`TrainedModel::run`].
    pub fn run(
        &self,
        train: &Dataset,
        backend: &mut dyn Optimizer,
        budget: TimeBudget,
    ) -> Result<KgpipRun> {
        self.artifact.run(train, backend, budget)
    }

    /// See [`TrainedModel::run_k`].
    pub fn run_k(
        &self,
        train: &Dataset,
        backend: &mut dyn Optimizer,
        budget: TimeBudget,
        k: usize,
    ) -> Result<KgpipRun> {
        self.artifact.run_k(train, backend, budget, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::KgpipConfig;
    use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
    use kgpip_graphgen::GeneratorConfig;
    use kgpip_hpo::Flaml;
    use kgpip_tabular::{Column, DataFrame, Task};

    fn table_like(offset: f64, n: usize) -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "f0".to_string(),
                Column::from_f64((0..n).map(|i| offset + (i % 10) as f64).collect::<Vec<_>>()),
            ),
            (
                "f1".to_string(),
                Column::from_f64((0..n).map(|i| offset + (i % 7) as f64).collect::<Vec<_>>()),
            ),
        ])
        .unwrap()
    }

    fn trained_model() -> Kgpip {
        let profiles = vec![
            DatasetProfile::new("alpha", false),
            DatasetProfile::new("beta", false),
        ];
        let scripts = generate_corpus(
            &profiles,
            &CorpusConfig {
                scripts_per_dataset: 8,
                unsupported_fraction: 0.0,
                ..CorpusConfig::default()
            },
        );
        let tables = vec![
            ("alpha".to_string(), table_like(0.0, 30)),
            ("beta".to_string(), table_like(500.0, 30)),
        ];
        Kgpip::train(
            &scripts,
            &tables,
            KgpipConfig {
                generator: GeneratorConfig {
                    hidden: 12,
                    prop_rounds: 1,
                    epochs: 6,
                    ..GeneratorConfig::default()
                },
                ..KgpipConfig::default()
            },
        )
        .unwrap()
    }

    fn unseen_dataset(n: usize) -> Dataset {
        let f = table_like(1.0, n);
        let y: Vec<f64> = (0..n).map(|i| f64::from(i % 10 > 4)).collect();
        Dataset::new("unseen", f, y, Task::Binary).unwrap()
    }

    #[test]
    fn predicts_valid_skeletons_quickly() {
        let model = trained_model();
        let ds = unseen_dataset(100);
        let backend = Flaml::new(0);
        use kgpip_hpo::Optimizer as _;
        let caps = backend.capabilities();
        #[allow(clippy::disallowed_methods)]
        let started = std::time::Instant::now();
        let (skeletons, neighbour) = model.predict_skeletons(&ds, 3, &caps, 0).unwrap();
        assert!(!skeletons.is_empty());
        assert!(skeletons.len() <= 3);
        assert!(neighbour == "alpha" || neighbour == "beta");
        for (s, _) in &skeletons {
            assert!(s.estimator.supports(Task::Binary));
        }
        // "almost instantaneously" — generation without HPO is fast.
        assert!(started.elapsed().as_secs_f64() < 5.0);
    }

    #[test]
    fn artifact_predictions_match_the_training_run() {
        let model = trained_model();
        let ds = unseen_dataset(80);
        let artifact = model.artifact();
        let caps = {
            use kgpip_hpo::Optimizer as _;
            Flaml::new(0).capabilities()
        };
        let (via_run, n1) = model.predict_skeletons(&ds, 3, &caps, 7).unwrap();
        let (via_artifact, n2) = artifact.predict_skeletons(&ds, 3, &caps, 7).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(via_run.len(), via_artifact.len());
        for ((s1, g1), (s2, g2)) in via_run.iter().zip(&via_artifact) {
            assert_eq!(s1, s2);
            assert_eq!(g1.to_bits(), g2.to_bits());
        }
        // Staged path (embed, then generate) is bit-identical too — the
        // contract the batching server relies on.
        let query = artifact.embed_table(&ds.features);
        let (staged, n3) = artifact
            .predict_from_query_embedding(&query, ds.task, 3, &caps, 7)
            .unwrap();
        assert_eq!(n2, n3);
        for ((s1, g1), (s2, g2)) in via_artifact.iter().zip(&staged) {
            assert_eq!(s1, s2);
            assert_eq!(g1.to_bits(), g2.to_bits());
        }
    }

    #[test]
    fn chunked_prediction_matches_the_in_memory_path() {
        let model = trained_model();
        let artifact = model.artifact();
        let frame = table_like(1.0, 80);
        let caps = {
            use kgpip_hpo::Optimizer as _;
            Flaml::new(0).capabilities()
        };
        let (dense, n1) = artifact
            .predict_table(&frame, Task::Binary, 3, &caps, 7)
            .unwrap();
        for chunk_rows in [1, 7, 100] {
            let chunked_frame = kgpip_tabular::ChunkedFrame::from_frame(&frame, chunk_rows);
            // 80 rows is far below EMBED_SAMPLE_BOUND: the chunked
            // embedding — and everything downstream — must be
            // bit-identical to the in-memory path.
            assert_eq!(
                artifact.embed_table(&frame),
                artifact.embed_table_chunked(&chunked_frame),
                "chunk_rows {chunk_rows}"
            );
            let (chunked, n2) = artifact
                .predict_table_chunked(&chunked_frame, Task::Binary, 3, &caps, 7)
                .unwrap();
            assert_eq!(n1, n2);
            assert_eq!(dense.len(), chunked.len());
            for ((s1, g1), (s2, g2)) in dense.iter().zip(&chunked) {
                assert_eq!(s1, s2);
                assert_eq!(g1.to_bits(), g2.to_bits());
            }
        }
    }

    #[test]
    fn zero_k_is_a_typed_error() {
        let model = trained_model();
        let ds = unseen_dataset(40);
        let err = model.predict_skeletons(&ds, 0, "{}", 0).unwrap_err();
        assert!(matches!(err, KgpipError::NoValidSkeleton));
    }

    #[test]
    fn empty_catalog_is_a_typed_error() {
        let model = trained_model();
        let mut artifact = model.into_artifact();
        artifact.index = kgpip_embeddings::VectorIndex::new();
        let ds = unseen_dataset(40);
        let err = artifact.nearest_dataset(&ds).unwrap_err();
        assert!(matches!(err, KgpipError::EmptyCatalog));
        let err = artifact.predict_skeletons(&ds, 3, "{}", 0).unwrap_err();
        assert!(matches!(err, KgpipError::EmptyCatalog));
    }

    #[test]
    fn full_run_returns_ranked_results() {
        let model = trained_model();
        let ds = unseen_dataset(150);
        let mut backend = Flaml::new(1);
        let run = model
            .run(&ds, &mut backend, TimeBudget::seconds(3.0))
            .unwrap();
        assert!(!run.results.is_empty());
        assert!(run.best_score() > 0.5, "score {}", run.best_score());
        assert!(run.reciprocal_rank() > 0.0 && run.reciprocal_rank() <= 1.0);
        assert!(!run.predicted_estimators().is_empty());
        // Generation scores are in descending rank order (fallbacks aside).
        for pair in run.results.windows(2) {
            assert!(pair[0].generation_score >= pair[1].generation_score);
        }
    }

    #[test]
    fn nearest_dataset_picks_the_similar_table() {
        let model = trained_model();
        // Unseen table built exactly like "alpha" (offset 0).
        let ds = unseen_dataset(60);
        let (name, sim) = model.nearest_dataset(&ds).unwrap();
        assert!(name == "alpha" || name == "beta");
        assert!(sim > 0.5);
    }

    /// The `nearest_dataset` lookup runs through `VectorIndex::search`;
    /// above the auto-tune threshold, the trained IVF partitioning must
    /// choose the same neighbour as an exact scan on a synthetic dataset
    /// catalog.
    #[test]
    fn ivf_lookup_agrees_with_exact_on_synthetic_catalog() {
        use kgpip_embeddings::{table_embedding, IndexTier, VectorIndex};
        let catalog = VectorIndex::IVF_AUTO_THRESHOLD + 22;
        let mut index = VectorIndex::new();
        for d in 0..catalog {
            let e = table_embedding(&table_like(d as f64 * 3.0, 24 + d % 9));
            index.add(format!("ds{d}"), e);
        }
        assert_eq!(
            index.auto_tune(0),
            IndexTier::Ivf,
            "catalog exceeds the IVF threshold"
        );
        for q in 0..24 {
            let query = table_embedding(&table_like(q as f64 * 19.0 + 1.5, 31));
            let exact = index.top_k(&query, 1);
            let ivf = index.search(&query, 1);
            assert_eq!(
                exact[0].0, ivf[0].0,
                "query {q}: IVF neighbour diverged from exact"
            );
        }
    }
}
