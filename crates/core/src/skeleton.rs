//! Decoding generated graphs into pipeline skeletons and validating them
//! against a backend's capability document (§3.6).

use kgpip_codegraph::PipelineGraph;
use kgpip_hpo::{parse_capabilities, Skeleton};
use kgpip_learners::{EstimatorKind, TransformerKind};
use kgpip_tabular::Task;

/// Decodes a generated pipeline graph into a [`Skeleton`].
///
/// A graph is a *valid* pipeline when it contains exactly one estimator
/// family (the first is used) whose kind supports the task; transformers
/// are kept in graph order with duplicates removed. Graphs with no
/// estimator — what the paper's Table 3 calls failing "to generate any
/// valid ML pipeline" — decode to `None`.
pub fn decode_skeleton(graph: &PipelineGraph, task: Task) -> Option<Skeleton> {
    let (transformer_names, estimator_name) = graph.skeleton()?;
    let estimator = EstimatorKind::from_name(estimator_name)?;
    if !estimator.supports(task) {
        return None;
    }
    let mut transformers = Vec::new();
    for name in transformer_names {
        if let Some(kind) = TransformerKind::from_name(name) {
            if !transformers.contains(&kind) {
                transformers.push(kind);
            }
        }
    }
    Some(Skeleton {
        transformers,
        estimator,
    })
}

/// Validates a skeleton against a backend's JSON capability document:
/// the estimator and every transformer must be supported. This is the
/// §3.6 integration contract ("a JSON document of the particular
/// preprocessors and estimators supported by the hyperparameter
/// optimizer").
pub fn validate_against_capabilities(skeleton: &Skeleton, capabilities_json: &str) -> bool {
    let Some((estimators, preprocessors)) = parse_capabilities(capabilities_json) else {
        return false;
    };
    estimators.contains(&skeleton.estimator)
        && skeleton
            .transformers
            .iter()
            .all(|t| preprocessors.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_codegraph::PipelineOp;
    use kgpip_hpo::space::capabilities_json;

    fn graph(ops: Vec<PipelineOp>) -> PipelineGraph {
        let edges = (0..ops.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        PipelineGraph { ops, edges }
    }

    #[test]
    fn decodes_standard_chain() {
        let g = graph(vec![
            PipelineOp::Dataset,
            PipelineOp::ReadCsv,
            PipelineOp::Transformer(1), // standard_scaler
            PipelineOp::Estimator(11),  // xgboost
            PipelineOp::Fit,
        ]);
        let s = decode_skeleton(&g, Task::Binary).unwrap();
        assert_eq!(s.estimator, EstimatorKind::XgBoost);
        assert_eq!(s.transformers, vec![TransformerKind::StandardScaler]);
    }

    #[test]
    fn rejects_estimatorless_graph() {
        let g = graph(vec![PipelineOp::Dataset, PipelineOp::ReadCsv]);
        assert_eq!(decode_skeleton(&g, Task::Binary), None);
    }

    #[test]
    fn rejects_task_mismatch() {
        let g = graph(vec![
            PipelineOp::Dataset,
            PipelineOp::ReadCsv,
            PipelineOp::Estimator(0), // logistic_regression
        ]);
        assert!(decode_skeleton(&g, Task::Binary).is_some());
        assert_eq!(decode_skeleton(&g, Task::Regression), None);
    }

    #[test]
    fn deduplicates_transformers() {
        let g = graph(vec![
            PipelineOp::Dataset,
            PipelineOp::ReadCsv,
            PipelineOp::Transformer(1),
            PipelineOp::Transformer(1),
            PipelineOp::Transformer(8),
            PipelineOp::Estimator(12),
        ]);
        let s = decode_skeleton(&g, Task::Binary).unwrap();
        assert_eq!(
            s.transformers,
            vec![TransformerKind::StandardScaler, TransformerKind::Pca]
        );
    }

    #[test]
    fn capability_validation() {
        let s = Skeleton {
            transformers: vec![TransformerKind::Pca],
            estimator: EstimatorKind::Lgbm,
        };
        let full = capabilities_json("x", &[EstimatorKind::Lgbm]);
        assert!(validate_against_capabilities(&s, &full));
        let narrow = capabilities_json("x", &[EstimatorKind::Knn]);
        assert!(!validate_against_capabilities(&s, &narrow));
        assert!(!validate_against_capabilities(&s, "garbage"));
    }
}
