//! The versioned binary snapshot format for [`TrainedModel`] artifacts.
//!
//! JSON persistence (the [`Kgpip::save`] compatibility path) re-parses
//! every parameter scalar through a text representation — fine for
//! reproduction runs, wrong for a serving fleet that reloads models behind
//! traffic. The snapshot format is a flat, little-endian, single-pass
//! layout:
//!
//! ```text
//! magic  b"KGPS"                      (4 bytes)
//! u32    format version               (currently 3)
//! then length-prefixed sections until end of input:
//!   u32 tag, u64 payload length, payload bytes
//!     tag 1  system config            (KgpipConfig, JSON — tiny)
//!     tag 2  conditioning center      (u64 dim + f64 each)
//!     tag 3  op vocabulary            (u64 count + length-prefixed names)
//!     tag 4  generator                (JSON GeneratorConfig + raw f32
//!                                      parameter tensors in registration
//!                                      order)
//!     tag 5  similarity index         (VectorIndex::to_bytes payload)
//!     tag 6  per-dataset embeddings   (u64 count + name + f64 vector)
//! ```
//!
//! Versioning rules: readers accept exactly the versions they know;
//! *unknown section tags* within a known version are skipped (room for
//! additive sections without a version bump), while any layout change to
//! an existing section requires bumping [`Snapshot::FORMAT_VERSION`]. The
//! vocabulary section exists purely as a guard — type ids in the generator
//! parameters are meaningless if the op vocabulary ever drifts, so loading
//! fails loudly instead of decoding garbage pipelines.
//!
//! Version history: v2 extended the tag-5 index payload with an optional
//! trailing HNSW graph block; v3 appended an optional product-quantized
//! store (codebooks + code matrix) after it. `VectorIndex::from_bytes`
//! tolerates each tail's absence, so this build still reads v1 and v2
//! snapshots; it always writes v3.
//!
//! [`Kgpip::save`]: crate::Kgpip::save

use crate::artifact::TrainedModel;
use crate::train::{Kgpip, KgpipConfig};
use crate::{KgpipError, Result};
use kgpip_codegraph::OpVocab;
use kgpip_embeddings::VectorIndex;
use kgpip_graphgen::{GeneratorConfig, GraphGenerator};
use kgpip_nn::Tensor;
use std::collections::HashMap;

const TAG_CONFIG: u32 = 1;
const TAG_CENTER: u32 = 2;
const TAG_VOCAB: u32 = 3;
const TAG_GENERATOR: u32 = 4;
const TAG_INDEX: u32 = 5;
const TAG_EMBEDDINGS: u32 = 6;

/// A parsed model snapshot: the format version it was written with plus
/// the decoded artifact.
#[derive(Debug)]
pub struct Snapshot {
    /// Format version of the source bytes.
    pub version: u32,
    /// The decoded model.
    pub model: TrainedModel,
}

impl Snapshot {
    /// File magic identifying a KGpip binary snapshot.
    pub const MAGIC: [u8; 4] = *b"KGPS";
    /// The snapshot format version this build writes.
    pub const FORMAT_VERSION: u32 = 3;
    /// The oldest snapshot format version this build still reads (v1
    /// lacks the HNSW tail in the index section and v2 lacks the PQ tail
    /// after it; the index decoder tolerates both absences).
    pub const MIN_READ_VERSION: u32 = 1;

    /// Parses a snapshot from bytes produced by
    /// [`TrainedModel::snapshot_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != Self::MAGIC {
            return Err(persist("not a KGpip snapshot (bad magic)"));
        }
        let version = r.u32()?;
        if !(Self::MIN_READ_VERSION..=Self::FORMAT_VERSION).contains(&version) {
            return Err(persist(format!(
                "unsupported snapshot format version {version} (this build reads {}..={})",
                Self::MIN_READ_VERSION,
                Self::FORMAT_VERSION
            )));
        }

        let mut config: Option<KgpipConfig> = None;
        let mut center: Option<Vec<f64>> = None;
        let mut vocab_names: Option<Vec<String>> = None;
        let mut generator: Option<GraphGenerator> = None;
        let mut index: Option<VectorIndex> = None;
        let mut embeddings: Option<HashMap<String, Vec<f64>>> = None;
        while !r.at_end() {
            let tag = r.u32()?;
            let len = r.u64()? as usize;
            let payload = r.take(len)?;
            let mut s = Reader::new(payload);
            match tag {
                TAG_CONFIG => {
                    let json = std::str::from_utf8(payload).map_err(persist)?;
                    config = Some(serde_json::from_str(json).map_err(persist)?);
                }
                TAG_CENTER => {
                    center = Some(s.f64s()?);
                    s.expect_end("conditioning center")?;
                }
                TAG_VOCAB => {
                    let n = s.u64()? as usize;
                    let mut names = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        names.push(s.str()?);
                    }
                    s.expect_end("vocabulary")?;
                    vocab_names = Some(names);
                }
                TAG_GENERATOR => {
                    let cfg_len = s.u64()? as usize;
                    let cfg_json = std::str::from_utf8(s.take(cfg_len)?).map_err(persist)?;
                    let cfg: GeneratorConfig = serde_json::from_str(cfg_json).map_err(persist)?;
                    let count = s.u64()? as usize;
                    let mut params = Vec::with_capacity(count.min(1 << 16));
                    for _ in 0..count {
                        let _name = s.str()?;
                        let rows = s.u32()? as usize;
                        let cols = s.u32()? as usize;
                        let mut data = Vec::with_capacity((rows * cols).min(1 << 24));
                        for _ in 0..rows * cols {
                            data.push(f32::from_le_bytes(s.array()?));
                        }
                        params.push(Tensor::from_vec(data, rows, cols).map_err(persist)?);
                    }
                    s.expect_end("generator")?;
                    generator = Some(GraphGenerator::from_params(cfg, params).map_err(persist)?);
                }
                TAG_INDEX => {
                    index = Some(VectorIndex::from_bytes(payload).map_err(persist)?);
                }
                TAG_EMBEDDINGS => {
                    let n = s.u64()? as usize;
                    let mut map = HashMap::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        let name = s.str()?;
                        let vector = s.f64s()?;
                        map.insert(name, vector);
                    }
                    s.expect_end("embeddings")?;
                    embeddings = Some(map);
                }
                // Unknown additive section from a newer writer of the same
                // format version: skip.
                _ => {}
            }
        }

        let vocab = OpVocab::new();
        let stored =
            vocab_names.ok_or_else(|| persist("snapshot is missing the vocabulary section"))?;
        let current: Vec<&str> = vocab.ops().iter().map(|op| op.name()).collect();
        if stored != current {
            return Err(persist(format!(
                "snapshot vocabulary ({} ops) does not match this build ({} ops); \
                 the model cannot be decoded safely",
                stored.len(),
                current.len()
            )));
        }
        let model = TrainedModel {
            config: config.ok_or_else(|| persist("snapshot is missing the config section"))?,
            embedding_center: center
                .ok_or_else(|| persist("snapshot is missing the conditioning-center section"))?,
            vocab,
            generator: generator
                .ok_or_else(|| persist("snapshot is missing the generator section"))?,
            index: index.ok_or_else(|| persist("snapshot is missing the index section"))?,
            embeddings: embeddings
                .ok_or_else(|| persist("snapshot is missing the embeddings section"))?,
        };
        Ok(Snapshot { version, model })
    }

    /// Reads a snapshot file written by [`TrainedModel::snapshot`].
    pub fn read(path: impl AsRef<std::path::Path>) -> Result<Snapshot> {
        let bytes = std::fs::read(path).map_err(persist)?;
        Snapshot::from_bytes(&bytes)
    }
}

impl TrainedModel {
    /// Serializes the artifact into the binary snapshot format.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        out.extend_from_slice(&Snapshot::MAGIC);
        out.extend_from_slice(&Snapshot::FORMAT_VERSION.to_le_bytes());

        let config_json = serde_json::to_string(&self.config).map_err(persist)?;
        section(&mut out, TAG_CONFIG, config_json.as_bytes());

        let mut center = Vec::new();
        write_f64s(&mut center, &self.embedding_center);
        section(&mut out, TAG_CENTER, &center);

        let mut vocab = Vec::new();
        write_u64(&mut vocab, self.vocab.ops().len() as u64);
        for op in self.vocab.ops() {
            write_str(&mut vocab, op.name());
        }
        section(&mut out, TAG_VOCAB, &vocab);

        let mut generator = Vec::new();
        let cfg_json = serde_json::to_string(self.generator.config()).map_err(persist)?;
        write_u64(&mut generator, cfg_json.len() as u64);
        generator.extend_from_slice(cfg_json.as_bytes());
        let params: Vec<_> = self.generator.params().collect();
        write_u64(&mut generator, params.len() as u64);
        for (name, tensor) in params {
            write_str(&mut generator, name);
            generator.extend_from_slice(&(tensor.rows() as u32).to_le_bytes());
            generator.extend_from_slice(&(tensor.cols() as u32).to_le_bytes());
            for x in tensor.as_slice() {
                generator.extend_from_slice(&x.to_le_bytes());
            }
        }
        section(&mut out, TAG_GENERATOR, &generator);

        section(&mut out, TAG_INDEX, &self.index.to_bytes());

        // Embeddings are written in catalog (index) order so identical
        // models produce identical snapshot bytes.
        let mut embeddings = Vec::new();
        write_u64(&mut embeddings, self.embeddings.len() as u64);
        let mut written = 0usize;
        for i in 0..self.index.len() {
            let name = self.index.name(i);
            if let Some(vector) = self.embeddings.get(name) {
                write_str(&mut embeddings, name);
                write_f64s(&mut embeddings, vector);
                written += 1;
            }
        }
        debug_assert_eq!(written, self.embeddings.len(), "catalog covers embeddings");
        section(&mut out, TAG_EMBEDDINGS, &embeddings);

        Ok(out)
    }

    /// Writes the artifact to a snapshot file (see [`Snapshot`] for the
    /// format).
    pub fn snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.snapshot_bytes()?).map_err(persist)
    }

    /// Opens a model artifact from disk, accepting either a binary
    /// snapshot (sniffed by magic) or a JSON-era [`Kgpip::save`] file —
    /// the single loader deployments should use.
    ///
    /// [`Kgpip::save`]: crate::Kgpip::save
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<TrainedModel> {
        let bytes = std::fs::read(path).map_err(persist)?;
        if bytes.get(..4).is_some_and(|magic| magic == Snapshot::MAGIC) {
            return Ok(Snapshot::from_bytes(&bytes)?.model);
        }
        let json = std::str::from_utf8(&bytes)
            .map_err(|_| persist("file is neither a KGPS snapshot nor UTF-8 JSON"))?;
        Ok(Kgpip::from_wire_json(json)?.into_artifact())
    }
}

fn persist(e: impl ToString) -> KgpipError {
    KgpipError::Persistence(e.to_string())
}

fn section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    write_u64(out, xs.len() as u64);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| persist(format!("snapshot truncated at byte {}", self.pos)))?;
        // xlint: allow(panic-in-serve-path): end was bounds-checked against bytes.len() on the line above
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads exactly `N` bytes into an array, with the same truncation
    /// error as [`Reader::take`] — the panic-free alternative to
    /// `take(N)?.try_into().unwrap()` on the serve/load path.
    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u64()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(persist)
    }

    fn f64s(&mut self) -> Result<Vec<f64>> {
        let len = self.u64()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(f64::from_le_bytes(self.array()?));
        }
        Ok(out)
    }

    fn expect_end(&self, what: &str) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(persist(format!(
                "trailing bytes in {what} section ({} of {})",
                self.pos,
                self.bytes.len()
            )))
        }
    }
}
