//! The offline KGpip workflow: corpus → code graphs → filtered Graph4ML →
//! dataset embeddings → trained graph generator.

use crate::artifact::TrainedModel;
use crate::{KgpipError, Result};
use kgpip_codegraph::corpus::ScriptRecord;
use kgpip_codegraph::{
    mine_script, source_fingerprint, Graph4Ml, MineOutcome, MiningCache, OpVocab,
};
use kgpip_embeddings::{table_embeddings, VectorIndex};
use kgpip_graphgen::model::TypedGraph;
use kgpip_graphgen::{effective_parallelism, GeneratorConfig, GraphGenerator, TrainExample};
use kgpip_tabular::DataFrame;
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// KGpip system configuration.
///
/// Build one fluently from the defaults:
///
/// ```
/// use kgpip::KgpipConfig;
///
/// let config = KgpipConfig::default()
///     .with_k(5)
///     .with_seed(7)
///     .with_parallelism(4);
/// assert_eq!(config.top_k, 5);
/// assert_eq!(config.parallelism, 4);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KgpipConfig {
    /// Number of pipeline graphs to predict per dataset (the paper's K;
    /// Figure 7 sweeps 3/5/7).
    pub top_k: usize,
    /// Sampling temperature for graph generation (>1 = more diverse
    /// pipelines across runs, §4.5.3).
    pub temperature: f64,
    /// Generator hyperparameters.
    pub generator: GeneratorConfig,
    /// Seed for prediction-time sampling.
    pub seed: u64,
    /// Worker threads for the `(T − t)/K` skeleton searches and their
    /// trial evaluation (1 = fully sequential, the historical behaviour).
    pub parallelism: usize,
    /// Disables trial caching (pre-encoded datasets + transformer-prefix
    /// memoization) in the HPO backends. Off (caching on) by default;
    /// caching changes trial cost, never trial values. Stored inverted so
    /// configs serialized before this field existed keep caching on.
    #[serde(default)]
    pub disable_trial_cache: bool,
}

impl Default for KgpipConfig {
    fn default() -> Self {
        KgpipConfig {
            top_k: 3,
            temperature: 1.2,
            generator: GeneratorConfig::default(),
            seed: 0,
            parallelism: 1,
            disable_trial_cache: false,
        }
    }
}

impl KgpipConfig {
    /// Sets the number of predicted skeletons per dataset (the paper's K).
    pub fn with_k(mut self, top_k: usize) -> KgpipConfig {
        self.top_k = top_k;
        self
    }

    /// Sets the generation sampling temperature.
    pub fn with_temperature(mut self, temperature: f64) -> KgpipConfig {
        self.temperature = temperature;
        self
    }

    /// Sets the generator hyperparameters.
    pub fn with_generator(mut self, generator: GeneratorConfig) -> KgpipConfig {
        self.generator = generator;
        self
    }

    /// Sets the prediction-time sampling seed.
    pub fn with_seed(mut self, seed: u64) -> KgpipConfig {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for skeleton search, trial
    /// evaluation, and the generator's training/sampling loops (clamped
    /// to ≥ 1).
    pub fn with_parallelism(mut self, parallelism: usize) -> KgpipConfig {
        self.parallelism = parallelism.max(1);
        self.generator.parallelism = self.parallelism;
        self
    }

    /// Enables or disables trial caching in the HPO backends (on by
    /// default).
    pub fn with_trial_cache(mut self, enabled: bool) -> KgpipConfig {
        self.disable_trial_cache = !enabled;
        self
    }
}

/// Statistics of one training run (reported by the Table-3 ablation).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainingStats {
    /// Scripts in the input corpus.
    pub scripts: usize,
    /// Scripts that survived filtering with a valid pipeline (the paper's
    /// 11.7K → 2,046 selection).
    pub valid_pipelines: usize,
    /// Scripts that failed static analysis entirely (skipped, as the
    /// paper's mining pipeline skips unusable notebooks).
    pub unparsable: usize,
    /// Scripts skipped because they reference a dataset with no table in
    /// the training catalog (previously a silent `continue`).
    #[serde(default)]
    pub skipped_unknown_dataset: usize,
    /// Datasets with at least one valid pipeline.
    pub datasets: usize,
    /// Total nodes across the filtered training graphs.
    pub total_nodes: usize,
    /// Total edges across the filtered training graphs.
    pub total_edges: usize,
    /// Wall-clock seconds spent embedding the training tables.
    #[serde(default)]
    pub embedding_secs: f64,
    /// Wall-clock seconds spent mining scripts into the Graph4ML
    /// (fingerprinting, cache probes, static analysis, assembly).
    #[serde(default)]
    pub mining_secs: f64,
    /// Wall-clock seconds spent training the generator.
    pub training_secs: f64,
    /// Eligible scripts whose mining outcome was served from the
    /// [`MiningCache`] — including intra-corpus duplicates, which are
    /// analyzed once and replayed for every later occurrence.
    #[serde(default)]
    pub mining_cache_hits: u64,
    /// Eligible scripts that actually went through static analysis this
    /// run (unique sources absent from the cache).
    #[serde(default)]
    pub mining_cache_misses: u64,
    /// Per-epoch generator losses.
    pub epoch_losses: Vec<f32>,
}

/// A trained KGpip training *run*: the immutable serving artifact (the
/// [`TrainedModel`]) plus train-time state — the assembled Graph4ML and
/// the run's [`TrainingStats`] — kept for corpus analyses and ablations.
///
/// Prediction entry points remain available on `Kgpip` as thin
/// delegations, but the artifact is the canonical home of the online
/// workflow: call [`Kgpip::artifact`] (or [`Kgpip::into_artifact`]) to
/// extract it for serving.
pub struct Kgpip {
    pub(crate) artifact: TrainedModel,
    pub(crate) graph4ml: Graph4Ml,
    pub(crate) stats: TrainingStats,
}

/// The JSON wire layout of the original monolithic `Kgpip` struct, kept
/// verbatim so models saved by earlier builds keep loading (and new JSON
/// saves stay readable by them). Binary snapshots do not go through this.
#[derive(serde::Serialize, serde::Deserialize)]
struct KgpipWire {
    config: KgpipConfig,
    embedding_center: Vec<f64>,
    vocab: OpVocab,
    generator: GraphGenerator,
    index: VectorIndex,
    embeddings: HashMap<String, Vec<f64>>,
    graph4ml: Graph4Ml,
    stats: TrainingStats,
}

impl Kgpip {
    /// Trains KGpip from a script corpus and the content of the training
    /// datasets (`tables` maps dataset name → its table, used for content
    /// embeddings; scripts referencing unknown datasets are skipped).
    ///
    /// Mining and embedding run on `config.parallelism` workers; results
    /// are merged in input order, so the trained model is bit-for-bit
    /// identical at any worker count. Script analysis is memoized in a
    /// run-local [`MiningCache`]; use [`Kgpip::train_with_cache`] to
    /// share (or persist) the cache across training runs.
    pub fn train(
        scripts: &[ScriptRecord],
        tables: &[(String, DataFrame)],
        config: KgpipConfig,
    ) -> Result<Kgpip> {
        Kgpip::train_with_cache(scripts, tables, config, &MiningCache::default())
    }

    /// [`Kgpip::train`] with a caller-owned [`MiningCache`]: script
    /// analysis outcomes are looked up by source fingerprint before any
    /// static analysis runs, so re-training, K-sweeps, and ablations over
    /// the same corpus skip mining entirely. The cache may only change
    /// what mining costs, never what it produces — warm and cold runs are
    /// bit-for-bit identical (proven by `tests/mining_determinism.rs`).
    pub fn train_with_cache(
        scripts: &[ScriptRecord],
        tables: &[(String, DataFrame)],
        config: KgpipConfig,
        cache: &MiningCache,
    ) -> Result<Kgpip> {
        // Directly-constructed configs can carry `parallelism: 0`,
        // bypassing the builder's clamp; treat that as sequential. The
        // clamp also caps at the CPUs actually available, so an
        // over-provisioned config on a small host takes the sequential
        // path instead of paying pool overhead.
        let workers = effective_parallelism(config.parallelism);
        let vocab = OpVocab::new();

        // Content embeddings + similarity index over training datasets,
        // computed in parallel and registered in catalog order.
        #[allow(clippy::disallowed_methods)]
        // xlint: allow(wall-clock-in-compute): stage timing feeds TrainingStats only, never a computed value
        let embedding_started = std::time::Instant::now();
        let vectors = table_embeddings(tables, workers);
        let mut embeddings: HashMap<String, Vec<f64>> = HashMap::new();
        let mut index = VectorIndex::new();
        for ((name, _), e) in tables.iter().zip(vectors) {
            index.add(name.clone(), e.clone());
            embeddings.insert(name.clone(), e);
        }
        // Large catalogs get an IVF partitioning so the nearest-dataset
        // lookup in `predict` stays sublinear; small ones stay exact.
        index.auto_tune(config.seed);
        let embedding_secs = embedding_started.elapsed().as_secs_f64();

        // Static analysis + filtering → Graph4ML. Mining an individual
        // script is pure in its source, so the corpus is deduplicated by
        // source fingerprint, probed against the cache in first-occurrence
        // order, and only the unique misses are analyzed — on a rayon pool
        // when `workers > 1`, merged back in submission order. Assembly
        // then walks the corpus in input order, so the Graph4ML, indices,
        // and stats are identical to the historical sequential loop.
        #[allow(clippy::disallowed_methods)]
        // xlint: allow(wall-clock-in-compute): stage timing feeds TrainingStats only, never a computed value
        let mining_started = std::time::Instant::now();
        let mut skipped_unknown_dataset = 0usize;
        let mut fingerprints: Vec<Option<u64>> = Vec::with_capacity(scripts.len());
        let mut outcomes: HashMap<u64, MineOutcome> = HashMap::new();
        let mut pending: HashSet<u64> = HashSet::new();
        let mut to_mine: Vec<(u64, &str)> = Vec::new();
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        for record in scripts {
            if !embeddings.contains_key(&record.dataset) {
                skipped_unknown_dataset += 1;
                fingerprints.push(None);
                continue;
            }
            let fp = source_fingerprint(&record.source);
            fingerprints.push(Some(fp));
            if outcomes.contains_key(&fp) || pending.contains(&fp) {
                // Intra-corpus duplicate: analyzed once, replayed here.
                cache_hits += 1;
                continue;
            }
            match cache.get(fp) {
                Some(outcome) => {
                    cache_hits += 1;
                    outcomes.insert(fp, outcome);
                }
                None => {
                    cache_misses += 1;
                    pending.insert(fp);
                    to_mine.push((fp, record.source.as_str()));
                }
            }
        }
        // Mining is lenient: a notebook the analyzer cannot cleanly
        // handle is skipped with a warning count, exactly as the paper's
        // pipeline drops unusable scripts, rather than failing the whole
        // training run.
        let mined: Vec<MineOutcome> = if workers > 1 && to_mine.len() > 1 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .expect("thread pool construction");
            pool.install(|| {
                to_mine
                    .par_iter()
                    .map(|(_, src)| mine_script(src))
                    .collect()
            })
        } else {
            to_mine.iter().map(|(_, src)| mine_script(src)).collect()
        };
        for ((fp, _), outcome) in to_mine.iter().zip(mined) {
            cache.insert(*fp, outcome.clone());
            outcomes.insert(*fp, outcome);
        }
        let mut graph4ml = Graph4Ml::new();
        let mut valid_pipelines = 0usize;
        let mut unparsable = 0usize;
        for (record, fp) in scripts.iter().zip(&fingerprints) {
            let Some(fp) = fp else { continue };
            match &outcomes[fp] {
                MineOutcome::Unparsable => unparsable += 1,
                MineOutcome::NoSkeleton => {} // EDA-only or unsupported framework
                MineOutcome::Pipeline(filtered) => {
                    graph4ml.add_pipeline(&record.dataset, filtered);
                    valid_pipelines += 1;
                }
            }
        }
        let mining_secs = mining_started.elapsed().as_secs_f64();
        if graph4ml.pipelines().is_empty() {
            return Err(KgpipError::EmptyTrainingSet);
        }

        // Whitening for the conditioning pathway (see
        // `TrainedModel::embedding_center`). The mean is accumulated over
        // distinct datasets in catalog order: float addition is
        // order-sensitive and HashMap iteration order is not
        // deterministic, so summing `embeddings.values()` would leak
        // run-to-run noise into every conditioned embedding (enforced by
        // xlint's `nondeterministic-iteration` rule). The width probe
        // also goes through the catalog rather than map order.
        let dim = tables
            .first()
            .and_then(|(name, _)| embeddings.get(name))
            .map(Vec::len)
            .unwrap_or(0);
        let mut embedding_center = vec![0.0f64; dim];
        let mut seen: HashSet<&str> = HashSet::new();
        for (name, _) in tables {
            if seen.insert(name.as_str()) {
                for (c, x) in embedding_center.iter_mut().zip(&embeddings[name]) {
                    *c += x;
                }
            }
        }
        for c in &mut embedding_center {
            *c /= embeddings.len().max(1) as f64;
        }

        let condition = |e: &[f64]| -> Vec<f64> {
            e.iter()
                .zip(&embedding_center)
                .map(|(x, c)| (x - c) * crate::artifact::CONDITION_GAIN)
                .collect()
        };

        // Training examples: each pipeline conditioned on its dataset's
        // centred content embedding.
        let examples: Vec<TrainExample> = graph4ml
            .pipelines()
            .iter()
            .map(|(ds_idx, graph)| {
                let name = &graph4ml.datasets()[*ds_idx];
                TrainExample {
                    dataset_embedding: condition(&embeddings[name]),
                    graph: TypedGraph::encode(graph, &vocab),
                }
            })
            .collect();

        let mut generator = GraphGenerator::new(config.generator.clone());
        #[allow(clippy::disallowed_methods)]
        // xlint: allow(wall-clock-in-compute): generator training is timed for TrainingStats only
        let started = std::time::Instant::now();
        let epoch_losses = generator.train(&examples);
        let training_secs = started.elapsed().as_secs_f64();

        let stats = TrainingStats {
            scripts: scripts.len(),
            valid_pipelines,
            unparsable,
            skipped_unknown_dataset,
            datasets: graph4ml.datasets().len(),
            total_nodes: graph4ml.total_nodes(),
            total_edges: graph4ml.total_edges(),
            embedding_secs,
            mining_secs,
            training_secs,
            mining_cache_hits: cache_hits,
            mining_cache_misses: cache_misses,
            epoch_losses,
        };
        Ok(Kgpip {
            artifact: TrainedModel {
                config,
                embedding_center,
                vocab,
                generator,
                index,
                embeddings,
            },
            graph4ml,
            stats,
        })
    }

    /// The immutable serving artifact of this run, borrowed.
    pub fn artifact(&self) -> &TrainedModel {
        &self.artifact
    }

    /// Consumes the run and returns the serving artifact, dropping the
    /// train-time state (Graph4ML, stats).
    pub fn into_artifact(self) -> TrainedModel {
        self.artifact
    }

    /// Wraps a clone of the serving artifact in an [`Arc`] for lock-free
    /// sharing across threads.
    pub fn share(&self) -> Arc<TrainedModel> {
        self.artifact.share()
    }

    /// Training statistics.
    pub fn stats(&self) -> &TrainingStats {
        &self.stats
    }

    /// The system configuration.
    pub fn config(&self) -> &KgpipConfig {
        self.artifact.config()
    }

    /// Overrides the run-time parallelism of a trained (or loaded) model
    /// — a deployment knob, not a training artifact (clamped to ≥ 1).
    /// Applies to skeleton search, trial evaluation, and the generator's
    /// top-K sampling alike.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.artifact.set_parallelism(parallelism);
    }

    /// The assembled Graph4ML (for corpus analyses like Figure 9).
    pub fn graph4ml(&self) -> &Graph4Ml {
        &self.graph4ml
    }

    /// The op vocabulary.
    pub fn vocab(&self) -> &OpVocab {
        self.artifact.vocab()
    }

    /// Content embedding of a training dataset, if known.
    pub fn embedding_of(&self, dataset: &str) -> Option<&[f64]> {
        self.artifact.embedding_of(dataset)
    }
}

impl Kgpip {
    /// Serializes the full training run (serving artifact + Graph4ML +
    /// stats) to the JSON-era wire format.
    #[deprecated(note = "use TrainedModel::snapshot/open for the serving artifact")]
    pub fn to_json(&self) -> Result<String> {
        self.wire_json()
    }

    /// Restores a training run from [`Kgpip::to_json`] output.
    #[deprecated(note = "use TrainedModel::snapshot/open for the serving artifact")]
    pub fn from_json(json: &str) -> Result<Kgpip> {
        Kgpip::from_wire_json(json)
    }

    /// Saves the training run to a JSON file.
    #[deprecated(note = "use TrainedModel::snapshot/open for the serving artifact")]
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.wire_json()?).map_err(|e| KgpipError::Persistence(e.to_string()))
    }

    /// Loads a training run from a file produced by [`Kgpip::save`].
    #[deprecated(note = "use TrainedModel::snapshot/open for the serving artifact")]
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Kgpip> {
        let json =
            std::fs::read_to_string(path).map_err(|e| KgpipError::Persistence(e.to_string()))?;
        Kgpip::from_wire_json(&json)
    }

    /// Non-deprecated implementation shared by the shims above (and the
    /// CLI's compatibility path).
    pub(crate) fn wire_json(&self) -> Result<String> {
        // The vendored serde_derive cannot derive on borrowing structs, so
        // the deprecated JSON path pays one clone into the owned wire
        // layout; binary snapshots serialize without copies.
        let wire = KgpipWire {
            config: self.artifact.config.clone(),
            embedding_center: self.artifact.embedding_center.clone(),
            vocab: self.artifact.vocab.clone(),
            generator: self.artifact.generator.clone(),
            index: self.artifact.index.clone(),
            embeddings: self.artifact.embeddings.clone(),
            graph4ml: self.graph4ml.clone(),
            stats: self.stats.clone(),
        };
        serde_json::to_string(&wire).map_err(|e| KgpipError::Persistence(e.to_string()))
    }

    /// Non-deprecated implementation of [`Kgpip::from_json`]; also the
    /// JSON fallback of [`TrainedModel::open`].
    pub(crate) fn from_wire_json(json: &str) -> Result<Kgpip> {
        let wire: KgpipWire =
            serde_json::from_str(json).map_err(|e| KgpipError::Persistence(e.to_string()))?;
        Ok(Kgpip {
            artifact: TrainedModel {
                config: wire.config,
                embedding_center: wire.embedding_center,
                vocab: wire.vocab,
                generator: wire.generator,
                index: wire.index,
                embeddings: wire.embeddings,
            },
            graph4ml: wire.graph4ml,
            stats: wire.stats,
        })
    }
}

impl std::fmt::Debug for Kgpip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kgpip")
            .field("datasets", &self.graph4ml.datasets().len())
            .field("pipelines", &self.graph4ml.pipelines().len())
            .field(
                "generator_params",
                &self.artifact.generator.num_parameters(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
    use kgpip_tabular::Column;

    fn tiny_table(offset: f64) -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "a".to_string(),
                Column::from_f64((0..20).map(|i| offset + i as f64).collect::<Vec<_>>()),
            ),
            (
                "target".to_string(),
                Column::from_f64((0..20).map(|i| (i % 2) as f64).collect::<Vec<_>>()),
            ),
        ])
        .unwrap()
    }

    fn tiny_setup() -> (Vec<ScriptRecord>, Vec<(String, DataFrame)>) {
        let profiles = vec![
            DatasetProfile::new("alpha", false),
            DatasetProfile::new("beta", false),
        ];
        let scripts = generate_corpus(
            &profiles,
            &CorpusConfig {
                scripts_per_dataset: 6,
                unsupported_fraction: 0.2,
                ..CorpusConfig::default()
            },
        );
        let tables = vec![
            ("alpha".to_string(), tiny_table(0.0)),
            ("beta".to_string(), tiny_table(100.0)),
        ];
        (scripts, tables)
    }

    fn fast_config() -> KgpipConfig {
        KgpipConfig {
            generator: GeneratorConfig {
                hidden: 8,
                prop_rounds: 1,
                epochs: 2,
                ..GeneratorConfig::default()
            },
            ..KgpipConfig::default()
        }
    }

    #[test]
    fn trains_end_to_end_on_synthetic_corpus() {
        let (scripts, tables) = tiny_setup();
        let model = Kgpip::train(&scripts, &tables, fast_config()).unwrap();
        let stats = model.stats();
        assert_eq!(stats.scripts, 12);
        assert!(stats.valid_pipelines >= 6, "most sklearn scripts survive");
        assert!(
            stats.valid_pipelines < 12,
            "torch/keras scripts are dropped"
        );
        assert_eq!(stats.datasets, 2);
        assert!(stats.total_nodes > 0);
        assert_eq!(stats.epoch_losses.len(), 2);
        assert!(model.embedding_of("alpha").is_some());
        assert!(model.embedding_of("nope").is_none());
    }

    #[test]
    fn empty_corpus_errors() {
        let tables = vec![("alpha".to_string(), tiny_table(0.0))];
        let err = Kgpip::train(&[], &tables, fast_config()).unwrap_err();
        assert!(matches!(err, KgpipError::EmptyTrainingSet));
    }

    #[test]
    fn scripts_for_unknown_datasets_are_skipped() {
        let (scripts, _) = tiny_setup();
        // Provide only one of the two tables.
        let tables = vec![("alpha".to_string(), tiny_table(0.0))];
        let model = Kgpip::train(&scripts, &tables, fast_config()).unwrap();
        assert_eq!(model.stats().datasets, 1);
    }

    #[test]
    fn artifact_extraction_preserves_the_model() {
        let (scripts, tables) = tiny_setup();
        let model = Kgpip::train(&scripts, &tables, fast_config()).unwrap();
        let borrowed_params = model.artifact().generator.num_parameters();
        let shared = model.share();
        assert_eq!(shared.catalog_len(), 2);
        let artifact = model.into_artifact();
        assert_eq!(artifact.generator.num_parameters(), borrowed_params);
        assert!(artifact.embedding_of("alpha").is_some());
    }
}
