//! Parallel mining and the MiningCache may only change what training
//! *costs*, never what it produces: the assembled Graph4ML, the stats,
//! and the generator's training trajectory must be bit-for-bit
//! identical at any worker count, with a cold or a warm cache, and
//! whether the cache came from this process or from a serialized
//! snapshot.

use kgpip::{Kgpip, KgpipConfig, MiningCache, TrainingStats};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile, ScriptRecord};
use kgpip_graphgen::GeneratorConfig;
use kgpip_tabular::{Column, DataFrame};

fn table(offset: f64) -> DataFrame {
    DataFrame::from_columns(vec![
        (
            "a".to_string(),
            Column::from_f64((0..20).map(|i| offset + i as f64).collect::<Vec<_>>()),
        ),
        (
            "target".to_string(),
            Column::from_f64((0..20).map(|i| (i % 2) as f64).collect::<Vec<_>>()),
        ),
    ])
    .unwrap()
}

/// Three-dataset corpus with malformed and helper-wrapped scripts, but
/// only two tables in the catalog — so every skip path (unknown
/// dataset, unparsable, no skeleton) is exercised.
fn setup() -> (Vec<ScriptRecord>, Vec<(String, DataFrame)>) {
    let profiles = vec![
        DatasetProfile::new("alpha", false),
        DatasetProfile::new("beta", false),
        DatasetProfile::new("gamma", false),
    ];
    let scripts = generate_corpus(
        &profiles,
        &CorpusConfig {
            scripts_per_dataset: 8,
            unsupported_fraction: 0.2,
            helper_fraction: 0.25,
            malformed_fraction: 0.1,
            ..CorpusConfig::default()
        },
    );
    let tables = vec![
        ("alpha".to_string(), table(0.0)),
        ("beta".to_string(), table(100.0)),
    ];
    (scripts, tables)
}

fn config(parallelism: usize) -> KgpipConfig {
    KgpipConfig {
        generator: GeneratorConfig {
            hidden: 8,
            prop_rounds: 1,
            epochs: 2,
            ..GeneratorConfig::default()
        },
        parallelism,
        ..KgpipConfig::default()
    }
}

/// Everything a training run produces, minus wall-clock timings (the
/// only fields allowed to differ between runs).
fn fingerprint(model: &Kgpip) -> (String, Vec<u32>, Vec<u64>) {
    let graph = serde_json::to_string(model.graph4ml()).expect("graph4ml serializes");
    let losses: Vec<u32> = model
        .stats()
        .epoch_losses
        .iter()
        .map(|l| l.to_bits())
        .collect();
    let s = model.stats();
    let counters = vec![
        s.scripts as u64,
        s.valid_pipelines as u64,
        s.unparsable as u64,
        s.skipped_unknown_dataset as u64,
        s.datasets as u64,
        s.total_nodes as u64,
        s.total_edges as u64,
    ];
    (graph, losses, counters)
}

#[test]
fn parallel_mining_is_bit_identical_across_worker_counts() {
    let (scripts, tables) = setup();
    let baseline = Kgpip::train(&scripts, &tables, config(1)).unwrap();
    let base = fingerprint(&baseline);
    for parallelism in [2usize, 4] {
        let model = Kgpip::train(&scripts, &tables, config(parallelism)).unwrap();
        assert_eq!(
            fingerprint(&model),
            base,
            "parallelism {parallelism} diverged from the sequential path"
        );
        assert_eq!(
            model.stats().mining_cache_hits,
            baseline.stats().mining_cache_hits,
            "cache counters must not depend on worker count"
        );
        assert_eq!(
            model.stats().mining_cache_misses,
            baseline.stats().mining_cache_misses
        );
    }
}

#[test]
fn warm_cache_rerun_is_bit_identical_and_skips_analysis() {
    let (scripts, tables) = setup();
    let cache = MiningCache::default();
    let cold = Kgpip::train_with_cache(&scripts, &tables, config(2), &cache).unwrap();
    let warm = Kgpip::train_with_cache(&scripts, &tables, config(2), &cache).unwrap();
    assert_eq!(fingerprint(&cold), fingerprint(&warm));

    let eligible = (cold.stats().scripts - cold.stats().skipped_unknown_dataset) as u64;
    assert!(cold.stats().mining_cache_misses > 0, "cold run analyzes");
    assert_eq!(
        warm.stats().mining_cache_hits,
        eligible,
        "warm run serves every eligible script from the cache"
    );
    assert_eq!(warm.stats().mining_cache_misses, 0);
}

#[test]
fn persisted_cache_stays_warm_across_restore() {
    let (scripts, tables) = setup();
    let cache = MiningCache::default();
    let cold = Kgpip::train_with_cache(&scripts, &tables, config(1), &cache).unwrap();
    let json = cache.to_json().unwrap();
    let restored = MiningCache::from_json(&json).unwrap();
    let warm = Kgpip::train_with_cache(&scripts, &tables, config(4), &restored).unwrap();
    assert_eq!(fingerprint(&cold), fingerprint(&warm));
    assert_eq!(
        warm.stats().mining_cache_misses,
        0,
        "a restored snapshot must be as warm as the original cache"
    );
}

#[test]
fn zero_parallelism_is_clamped_to_sequential() {
    let (scripts, tables) = setup();
    // Direct construction bypasses the builder's `.max(1)` clamp.
    let zero = Kgpip::train(&scripts, &tables, config(0)).unwrap();
    let one = Kgpip::train(&scripts, &tables, config(1)).unwrap();
    assert_eq!(fingerprint(&zero), fingerprint(&one));
}

#[test]
fn unknown_dataset_scripts_are_counted_not_silently_dropped() {
    let (scripts, tables) = setup();
    let model = Kgpip::train(&scripts, &tables, config(1)).unwrap();
    let stats = model.stats();
    assert_eq!(
        stats.skipped_unknown_dataset, 8,
        "all gamma scripts reference a dataset with no table"
    );
    assert_eq!(stats.datasets, 2);
    assert!(stats.embedding_secs >= 0.0 && stats.mining_secs >= 0.0);
}

#[test]
fn pre_upgrade_stats_json_loads_with_defaulted_fields() {
    // A TrainingStats serialized before the mining/embedding instrumentation
    // existed: the new fields must default instead of failing the load.
    let old = r#"{"scripts":4,"valid_pipelines":3,"unparsable":1,"datasets":2,
        "total_nodes":10,"total_edges":9,"training_secs":0.5,"epoch_losses":[1.0,0.5]}"#;
    let stats: TrainingStats = serde_json::from_str(old).unwrap();
    assert_eq!(stats.scripts, 4);
    assert_eq!(stats.skipped_unknown_dataset, 0);
    assert_eq!(stats.mining_cache_hits, 0);
    assert_eq!(stats.mining_cache_misses, 0);
    assert_eq!(stats.mining_secs, 0.0);
    assert_eq!(stats.embedding_secs, 0.0);
}

#[test]
#[allow(deprecated)]
fn model_json_roundtrips_after_label_interning() {
    // Label interning changed CodeGraph's in-memory representation; the
    // serialized model (which embeds the Graph4ML built from those
    // graphs) must round-trip unchanged.
    let (scripts, tables) = setup();
    let model = Kgpip::train(&scripts, &tables, config(1)).unwrap();
    let json = model.to_json().unwrap();
    let restored = Kgpip::from_json(&json).unwrap();
    assert_eq!(fingerprint(&model), fingerprint(&restored));
    assert_eq!(
        serde_json::to_string(restored.graph4ml()).unwrap(),
        serde_json::to_string(model.graph4ml()).unwrap()
    );
}
