//! The binary snapshot format must round-trip a trained artifact
//! bit-for-bit: every generator parameter, every stored embedding, the
//! conditioning center, and — as the behavioural consequence — every
//! prediction.

use kgpip::prelude::*;
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
use kgpip_graphgen::GeneratorConfig;
use kgpip_tabular::{Column, DataFrame};

fn table_like(offset: f64, n: usize) -> DataFrame {
    DataFrame::from_columns(vec![
        (
            "f0".to_string(),
            Column::from_f64((0..n).map(|i| offset + (i % 10) as f64).collect::<Vec<_>>()),
        ),
        (
            "f1".to_string(),
            Column::from_f64((0..n).map(|i| offset + (i % 7) as f64).collect::<Vec<_>>()),
        ),
    ])
    .unwrap()
}

fn trained_artifact() -> TrainedModel {
    let profiles = vec![
        DatasetProfile::new("alpha", false),
        DatasetProfile::new("beta", false),
        DatasetProfile::new("gamma", true),
    ];
    let scripts = generate_corpus(
        &profiles,
        &CorpusConfig {
            scripts_per_dataset: 6,
            unsupported_fraction: 0.0,
            ..CorpusConfig::default()
        },
    );
    let tables = vec![
        ("alpha".to_string(), table_like(0.0, 30)),
        ("beta".to_string(), table_like(500.0, 30)),
        ("gamma".to_string(), table_like(77.0, 24)),
    ];
    Kgpip::train(
        &scripts,
        &tables,
        KgpipConfig {
            generator: GeneratorConfig {
                hidden: 10,
                prop_rounds: 1,
                epochs: 3,
                ..GeneratorConfig::default()
            },
            ..KgpipConfig::default()
        },
    )
    .unwrap()
    .into_artifact()
}

fn unseen(n: usize) -> Dataset {
    let f = table_like(1.0, n);
    let y: Vec<f64> = (0..n).map(|i| f64::from(i % 10 > 4)).collect();
    Dataset::new("unseen", f, y, Task::Binary).unwrap()
}

#[test]
fn snapshot_bytes_roundtrip_is_bitwise() {
    let artifact = trained_artifact();
    let bytes = artifact.snapshot_bytes().unwrap();
    let snapshot = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snapshot.version, Snapshot::FORMAT_VERSION);
    let restored = snapshot.model;

    // Generator parameters: bit-for-bit, in registration order.
    let original: Vec<_> = artifact.generator().params().collect();
    let reloaded: Vec<_> = restored.generator().params().collect();
    assert_eq!(original.len(), reloaded.len());
    assert!(!original.is_empty());
    for ((name_a, t_a), (name_b, t_b)) in original.iter().zip(&reloaded) {
        assert_eq!(name_a, name_b);
        assert_eq!(t_a.rows(), t_b.rows(), "{name_a}");
        assert_eq!(t_a.cols(), t_b.cols(), "{name_a}");
        for (x, y) in t_a.as_slice().iter().zip(t_b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name_a}");
        }
    }

    // Embeddings and conditioning center: bit-for-bit.
    assert_eq!(artifact.catalog_len(), restored.catalog_len());
    for name in ["alpha", "beta", "gamma"] {
        let a = artifact.embedding_of(name).unwrap();
        let b = restored.embedding_of(name).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}");
        }
    }
    for (x, y) in artifact
        .embedding_center()
        .iter()
        .zip(restored.embedding_center())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    // Behavioural consequence: identical predictions.
    let caps = Flaml::new(0).capabilities();
    let ds = unseen(60);
    let (a, na) = artifact.predict_skeletons(&ds, 3, &caps, 11).unwrap();
    let (b, nb) = restored.predict_skeletons(&ds, 3, &caps, 11).unwrap();
    assert_eq!(na, nb);
    assert_eq!(a.len(), b.len());
    for ((s1, g1), (s2, g2)) in a.iter().zip(&b) {
        assert_eq!(s1, s2);
        assert_eq!(g1.to_bits(), g2.to_bits());
    }
}

#[test]
fn snapshot_file_roundtrip_via_open() {
    let artifact = trained_artifact();
    let dir = std::env::temp_dir().join("kgpip_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.kgps");
    artifact.snapshot(&path).unwrap();
    let restored = TrainedModel::open(&path).unwrap();
    assert_eq!(restored.catalog_len(), artifact.catalog_len());
    let caps = Flaml::new(0).capabilities();
    let ds = unseen(40);
    let (a, _) = artifact.predict_skeletons(&ds, 3, &caps, 5).unwrap();
    let (b, _) = restored.predict_skeletons(&ds, 3, &caps, 5).unwrap();
    assert_eq!(a, b);
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_bytes_are_deterministic() {
    let artifact = trained_artifact();
    assert_eq!(
        artifact.snapshot_bytes().unwrap(),
        artifact.snapshot_bytes().unwrap(),
        "same model must serialize to identical bytes"
    );
}

#[test]
fn from_bytes_rejects_malformed_payloads() {
    let artifact = trained_artifact();
    let bytes = artifact.snapshot_bytes().unwrap();

    // Truncations anywhere must error, never panic.
    for cut in [0, 3, 4, 7, 8, 20, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(Snapshot::from_bytes(&bad).is_err());
    // Unknown future version.
    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&99u32.to_le_bytes());
    let err = Snapshot::from_bytes(&future).unwrap_err();
    assert!(
        err.to_string().contains("version"),
        "unexpected error: {err}"
    );
    // Trailing garbage after the last section.
    let mut trailing = bytes.clone();
    trailing.push(0xAB);
    assert!(Snapshot::from_bytes(&trailing).is_err());
}

#[test]
fn snapshot_roundtrips_hnsw_graph_bitwise() {
    use kgpip_embeddings::HnswConfig;
    let mut artifact = trained_artifact();
    artifact.build_hnsw_index(HnswConfig::default());
    assert!(artifact.index().has_hnsw());
    let bytes = artifact.snapshot_bytes().unwrap();
    let restored = Snapshot::from_bytes(&bytes).unwrap().model;
    assert!(
        restored.index().has_hnsw(),
        "the HNSW graph must survive the snapshot"
    );
    assert_eq!(
        restored.snapshot_bytes().unwrap(),
        bytes,
        "re-serializing the restored model must be bit-identical"
    );
    let caps = Flaml::new(0).capabilities();
    let ds = unseen(60);
    let (a, na) = artifact.predict_skeletons(&ds, 3, &caps, 11).unwrap();
    let (b, nb) = restored.predict_skeletons(&ds, 3, &caps, 11).unwrap();
    assert_eq!(na, nb);
    assert_eq!(a, b);
}

/// A v1 snapshot is a v2 snapshot whose index section stops right after
/// the IVF block. Rewrite a fresh snapshot into that shape and check this
/// build still opens it.
#[test]
fn reader_accepts_version_1_snapshots() {
    let artifact = trained_artifact();
    let bytes = artifact.snapshot_bytes().unwrap();
    let mut v1 = Vec::with_capacity(bytes.len());
    v1.extend_from_slice(&bytes[..4]);
    v1.extend_from_slice(&1u32.to_le_bytes());
    let mut pos = 8usize;
    while pos < bytes.len() {
        let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let payload = &bytes[pos + 12..pos + 12 + len];
        let payload = if tag == 5 {
            // Drop the trailing PQ and HNSW tag bytes (0 = absent, 0 =
            // no graph) to recover the v1 index layout.
            assert_eq!(
                &payload[len - 2..],
                &[0, 0],
                "fixture expects no graph and no PQ store"
            );
            &payload[..len - 2]
        } else {
            payload
        };
        v1.extend_from_slice(&tag.to_le_bytes());
        v1.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v1.extend_from_slice(payload);
        pos += 12 + len;
    }
    let snapshot = Snapshot::from_bytes(&v1).unwrap();
    assert_eq!(snapshot.version, 1);
    assert!(!snapshot.model.index().has_hnsw());
    assert_eq!(snapshot.model.catalog_len(), artifact.catalog_len());
}

#[test]
fn quantized_artifacts_snapshot_roundtrip() {
    use kgpip_embeddings::PqConfig;
    let mut artifact = trained_artifact();
    // Tiny catalog, tiny geometry — the round-trip mechanics are what's
    // under test, not recall.
    artifact
        .quantize_index(PqConfig {
            m: 4,
            rerank: 8,
            seed: 0,
        })
        .unwrap();
    assert!(artifact.index().is_quantized());
    let bytes = artifact.snapshot_bytes().unwrap();
    let snapshot = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snapshot.version, Snapshot::FORMAT_VERSION);
    assert!(snapshot.model.index().is_quantized());
    assert_eq!(
        snapshot.model.snapshot_bytes().unwrap(),
        bytes,
        "quantized snapshots must round-trip bit-for-bit"
    );
    // The quantized catalog answers nearest-dataset lookups identically:
    // with rerank × k covering the 3-entry catalog, answers are exact.
    let frame = table_like(900.0, 28);
    let direct = artifact.register_dataset("delta", &frame).unwrap();
    let (name, _) = artifact.nearest_by_embedding(&direct).unwrap();
    assert_eq!(name, "delta", "registered vector is served from codes");
}

#[test]
fn register_dataset_grows_the_catalog_online() {
    let mut artifact = trained_artifact();
    let before = artifact.catalog_len();
    let frame = table_like(900.0, 28);
    let embedding = artifact.register_dataset("delta", &frame).unwrap();
    assert_eq!(artifact.catalog_len(), before + 1);
    assert_eq!(artifact.embedding_of("delta").unwrap(), &embedding[..]);
    // The new dataset is retrievable as its own nearest neighbour.
    let (name, sim) = artifact.nearest_by_embedding(&embedding).unwrap();
    assert_eq!(name, "delta");
    assert!(sim > 0.999);
    // Duplicate registration is refused, catalog unchanged.
    let err = artifact.register_dataset("delta", &frame).unwrap_err();
    assert!(matches!(err, KgpipError::DuplicateDataset(_)));
    assert_eq!(artifact.catalog_len(), before + 1);
    // The grown model still snapshots and reloads.
    let restored = Snapshot::from_bytes(&artifact.snapshot_bytes().unwrap())
        .unwrap()
        .model;
    assert_eq!(restored.catalog_len(), before + 1);
    assert!(restored.embedding_of("delta").is_some());
}

#[test]
fn open_rejects_files_that_are_neither_format() {
    let dir = std::env::temp_dir().join("kgpip_snapshot_garbage_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.bin");
    std::fs::write(&path, [0xDEu8, 0xAD, 0xBE, 0xEF, 0x00]).unwrap();
    assert!(TrainedModel::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}
