//! Column-level content embeddings.
//!
//! Layout of the `EMBED_DIM`-dimensional vector:
//!
//! * `[0, 12)`  — numeric distribution sketch: log-magnitude of the mean
//!   and spread (value ranges are content), higher moments, standardized
//!   quantiles, missing/cardinality ratios. Captures both the *scale* and
//!   the *shape* of a numeric column.
//! * `[12, 44)` — signed hashed character trigrams over string values
//!   (categorical labels and text), L2-normalized. Captures content
//!   similarity of label vocabularies, as the deep distribution embeddings
//!   of Mueller & Smola (2019) do for KGLac.
//! * `[44, 48)` — column-kind indicator plus token-shape features.

use kgpip_tabular::{fnv1a, Column, ColumnKind, ColumnStats};

/// Dimensionality of column (and pooled table) embeddings.
pub const EMBED_DIM: usize = 48;

const NGRAM_OFFSET: usize = 12;
const NGRAM_DIMS: usize = 32;
const KIND_OFFSET: usize = 44;

/// Embeds a single column from its content.
pub fn column_embedding(column: &Column) -> [f64; EMBED_DIM] {
    let stats = ColumnStats::compute(column);
    let strings = (0..column.len()).filter_map(|r| column.as_string(r));
    column_embedding_parts(column.kind(), &stats, strings)
}

/// Embeds a column from precomputed summary statistics plus a row-order
/// iterator over its present string views. This is the shared core of
/// [`column_embedding`] and the chunk-streaming sampled variant: the
/// numeric sketch reads only `stats`, the trigram sketch folds over
/// `strings` in the order given. Feeding it `ColumnStats::compute` and the
/// full row-order string sequence reproduces [`column_embedding`] to the
/// bit; a chunked caller passes streamed stats and a bounded sample of
/// string views instead.
pub fn column_embedding_parts<I>(
    kind: ColumnKind,
    stats: &ColumnStats,
    strings: I,
) -> [f64; EMBED_DIM]
where
    I: IntoIterator<Item = String>,
{
    let mut v = [0.0f64; EMBED_DIM];

    // --- numeric distribution sketch ---
    if kind == ColumnKind::Numeric {
        let scale = stats.std.max(1e-9);
        // Magnitude features: value ranges are content (a revenue column
        // and an age column genuinely live at different scales); without
        // them, all-numeric tables collapse to near-identical embeddings.
        v[0] = squash((1.0 + stats.mean.abs()).ln() / 6.0) * stats.mean.signum();
        v[1] = squash((1.0 + stats.std).ln() / 6.0);
        v[2] = squash(stats.skewness / 3.0);
        v[3] = squash(stats.kurtosis / 10.0);
        for (i, q) in stats.quantiles.iter().enumerate() {
            // Standardized quantiles: shape of the CDF.
            v[4 + i] = squash((q - stats.mean) / (3.0 * scale));
        }
        v[9] = stats.missing_ratio();
        v[10] = (stats.cardinality as f64 / stats.len.max(1) as f64).min(1.0);
        v[11] = squash((stats.len as f64).ln() / 15.0);
    }

    // --- hashed character trigrams over string values ---
    if kind != ColumnKind::Numeric {
        let mut count = 0usize;
        for s in strings {
            let lowered = s.to_lowercase();
            let bytes = lowered.as_bytes();
            if bytes.len() < 3 {
                let h = fnv1a(bytes);
                bump(&mut v, h);
                count += 1;
                continue;
            }
            for w in bytes.windows(3) {
                bump(&mut v, fnv1a(w));
                count += 1;
            }
        }
        if count > 0 {
            let norm = v[NGRAM_OFFSET..NGRAM_OFFSET + NGRAM_DIMS]
                .iter()
                .map(|x| x * x)
                .sum::<f64>()
                .sqrt()
                .max(1e-12);
            for x in &mut v[NGRAM_OFFSET..NGRAM_OFFSET + NGRAM_DIMS] {
                *x /= norm;
            }
        }
    }

    // --- kind indicator + token shape ---
    match kind {
        ColumnKind::Numeric => v[KIND_OFFSET] = 1.0,
        ColumnKind::Categorical => v[KIND_OFFSET + 1] = 1.0,
        ColumnKind::Text => v[KIND_OFFSET + 2] = 1.0,
    }
    v[KIND_OFFSET + 3] = squash(stats.mean_tokens / 10.0);
    v
}

fn bump(v: &mut [f64; EMBED_DIM], h: u64) {
    let bucket = NGRAM_OFFSET + (h % NGRAM_DIMS as u64) as usize;
    let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
    v[bucket] += sign;
}

fn squash(x: f64) -> f64 {
    x.tanh()
}

/// Cosine similarity of two embedding vectors.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric(values: Vec<f64>) -> Column {
        Column::from_f64(values)
    }

    #[test]
    fn embedding_is_finite_and_deterministic() {
        let c = Column::categorical(vec![Some("red"), Some("green"), Some("blue")]);
        let a = column_embedding(&c);
        let b = column_embedding(&c);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn shape_and_scale_both_shape_the_embedding() {
        // Same shape and nearly the same scale: uniform [0,100] vs [0,110].
        let a = numeric((0..200).map(|i| i as f64 / 2.0).collect());
        let b = numeric((0..200).map(|i| i as f64 * 0.55).collect());
        // Same rough magnitude but a heavy right tail.
        let c = numeric((0..200).map(|i| (i as f64 / 30.0).exp()).collect());
        // Same shape but a very different magnitude.
        let d = numeric((0..200).map(|i| i as f64 * 500.0).collect());
        let (ea, eb, ec, ed) = (
            column_embedding(&a),
            column_embedding(&b),
            column_embedding(&c),
            column_embedding(&d),
        );
        assert!(
            cosine(&ea, &eb) > cosine(&ea, &ec),
            "same shape+scale {} should beat different shape {}",
            cosine(&ea, &eb),
            cosine(&ea, &ec)
        );
        assert!(
            cosine(&ea, &eb) > cosine(&ea, &ed),
            "same scale {} should beat distant scale {}",
            cosine(&ea, &eb),
            cosine(&ea, &ed)
        );
    }

    #[test]
    fn shared_vocabulary_embeds_close() {
        let colors1 = Column::categorical(vec![Some("red"), Some("blue"), Some("green")]);
        let colors2 = Column::categorical(vec![Some("blue"), Some("red"), Some("red")]);
        let cities = Column::categorical(vec![Some("paris"), Some("tokyo"), Some("lima")]);
        let e1 = column_embedding(&colors1);
        let e2 = column_embedding(&colors2);
        let e3 = column_embedding(&cities);
        assert!(cosine(&e1, &e2) > cosine(&e1, &e3));
    }

    #[test]
    fn kind_indicator_separates_types() {
        let num = column_embedding(&numeric(vec![1.0, 2.0]));
        let cat = column_embedding(&Column::categorical(vec![Some("a")]));
        let text = column_embedding(&Column::text(vec![Some("hello world this is text")]));
        assert_eq!(num[KIND_OFFSET], 1.0);
        assert_eq!(cat[KIND_OFFSET + 1], 1.0);
        assert_eq!(text[KIND_OFFSET + 2], 1.0);
    }

    #[test]
    fn missing_ratio_is_encoded() {
        let dense = numeric(vec![1.0; 10]);
        let sparse = Column::numeric((0..10).map(|i| if i < 5 { Some(1.0) } else { None }));
        assert_eq!(column_embedding(&dense)[9], 0.0);
        assert!((column_embedding(&sparse)[9] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }
}
