//! Deterministic HNSW: the graph-based approximate-nearest-neighbor tier
//! for catalogs beyond IVF's reach.
//!
//! A Hierarchical Navigable Small World graph (Malkov & Yashunin, 2016)
//! answers top-k cosine queries in roughly logarithmic time: each vector
//! is a node in a layered proximity graph, queries greedily descend from
//! a sparse top layer to the dense bottom layer, and a best-first beam
//! (`ef`) over layer 0 collects the candidates. This is FAISS's
//! `IndexHNSWFlat` counterpart, sized for the 100K–1M-table catalogs the
//! platform roadmap targets — where the exact scan pays one cosine per
//! catalog entry per query and IVF's coarse partitions either under-recall
//! or degenerate into near-exact scans.
//!
//! # Determinism rules
//!
//! Stock HNSW draws levels from an RNG and breaks score ties by heap
//! arrival order, so two builds of the same data can answer differently.
//! This implementation is **bit-identical for a given `(seed, insertion
//! order)`**:
//!
//! * level assignment hashes `(seed, node id)` through SplitMix64 — no
//!   shared RNG stream, so levels are a pure function of identity,
//! * every ordered structure (candidate heap, beam, neighbor lists,
//!   final ranking) orders by `(score via total_cmp, node id)` — ties
//!   cannot reorder across builds,
//! * incremental insertion *is* the build procedure: `build` = insert 0..n
//!   in order, so registering a dataset online then querying is
//!   bit-identical to rebuilding from scratch with the same order.
//!
//! The graph stores adjacency only; vectors stay in the owning store
//! (an owned [`VectorIndex`] or a mapped, read-only catalog), abstracted
//! behind [`VectorSource`] so the same search code serves both.
//!
//! [`VectorIndex`]: crate::VectorIndex

use crate::column::cosine;
use crate::index::{write_u64, Reader};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Hard cap on assigned levels; `P(level ≥ 32)` is ~`2^-110` at `m = 16`,
/// so the cap exists only to bound the serialized format.
const MAX_LEVEL: usize = 31;

/// Tuning parameters of an HNSW graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HnswConfig {
    /// Links created per node per layer (layer 0 keeps up to `2m`).
    pub m: usize,
    /// Beam width while inserting (higher = better graph, slower build).
    pub ef_construction: usize,
    /// Default beam width while querying (raised to `k` when `k` is
    /// larger).
    pub ef_search: usize,
    /// Seed for the level-assignment hash.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> HnswConfig {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0,
        }
    }
}

/// Read-only access to the vectors an [`Hnsw`] graph indexes. Implemented
/// by the owned `Vec<Vec<f64>>` store and by the zero-copy mapped catalog
/// ([`MappedIndex`]); both must compute cosine with the exact operation
/// order of [`cosine`] so the two answer bit-identically.
///
/// [`MappedIndex`]: crate::mapped::MappedIndex
pub trait VectorSource {
    /// Number of stored vectors.
    fn count(&self) -> usize;
    /// Cosine similarity between stored vector `i` and an external query.
    /// Out-of-range `i` returns `0.0` (never panics: this runs on the
    /// serving path).
    fn similarity(&self, i: usize, query: &[f64]) -> f64;
    /// Cosine similarity between two stored vectors (used by neighbor
    /// selection and pruning). Out-of-range indices return `0.0`.
    fn pair_similarity(&self, i: usize, j: usize) -> f64;
}

/// [`VectorSource`] over a borrowed slice of owned vectors.
pub struct SliceSource<'a>(pub &'a [Vec<f64>]);

impl VectorSource for SliceSource<'_> {
    fn count(&self) -> usize {
        self.0.len()
    }

    fn similarity(&self, i: usize, query: &[f64]) -> f64 {
        self.0.get(i).map_or(0.0, |v| cosine(query, v))
    }

    fn pair_similarity(&self, i: usize, j: usize) -> f64 {
        match (self.0.get(i), self.0.get(j)) {
            (Some(a), Some(b)) => cosine(b, a),
            _ => 0.0,
        }
    }
}

/// One node's adjacency: `levels[l]` holds the neighbor ids at layer `l`,
/// for `l` in `0..=node_level`.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
struct HnswNode {
    levels: Vec<Vec<u32>>,
}

/// A deterministic HNSW graph over an external vector store. See the
/// module docs for the determinism rules; see [`Hnsw::insert`] for the
/// id/insertion-order contract.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Hnsw {
    config: HnswConfig,
    /// Entry point: the id of a node on the highest populated layer
    /// (`None` while empty).
    entry: Option<u32>,
    nodes: Vec<HnswNode>,
}

/// `(score, id)` with the house total order: higher score first, then
/// lower id — `total_cmp` so NaN cannot poison a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f64,
    id: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Scored) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Scored) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Stamp-based visited set, reused across layers of one operation so an
/// insert does not re-allocate per layer.
struct Visited {
    stamps: Vec<u32>,
    generation: u32,
}

impl Visited {
    fn new(n: usize) -> Visited {
        Visited {
            stamps: vec![0; n],
            generation: 0,
        }
    }

    fn next_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    /// Marks `i`; returns true when it was already visited this
    /// generation. Out-of-range ids read as visited, so a truncated store
    /// can never be probed.
    fn check_and_mark(&mut self, i: u32) -> bool {
        match self.stamps.get_mut(i as usize) {
            Some(stamp) if *stamp == self.generation => true,
            Some(stamp) => {
                *stamp = self.generation;
                false
            }
            None => true,
        }
    }
}

impl Hnsw {
    /// Creates an empty graph.
    pub fn new(config: HnswConfig) -> Hnsw {
        Hnsw {
            config: HnswConfig {
                m: config.m.max(2),
                ef_construction: config.ef_construction.max(config.m.max(2)),
                ef_search: config.ef_search.max(1),
                seed: config.seed,
            },
            entry: None,
            nodes: Vec::new(),
        }
    }

    /// Builds a graph over `source` by inserting `0..source.count()` in
    /// order — the canonical build is literally repeated insertion, which
    /// is what makes online registration bit-identical to a rebuild.
    pub fn build(config: HnswConfig, source: &impl VectorSource) -> Hnsw {
        let mut hnsw = Hnsw::new(config);
        for _ in 0..source.count() {
            hnsw.insert(source);
        }
        hnsw
    }

    /// The tuning parameters.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of populated layers (0 while empty).
    pub fn num_layers(&self) -> usize {
        self.entry
            .and_then(|e| self.nodes.get(e as usize))
            .map_or(0, |n| n.levels.len())
    }

    /// Total directed links across all layers (a size/health statistic).
    pub fn num_links(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.levels.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Inserts the next node. The new node's id is the current
    /// [`Hnsw::len`], and `source` must already hold its vector at that
    /// index (callers push the vector first, then insert). Returns the
    /// assigned id.
    pub fn insert(&mut self, source: &impl VectorSource) -> usize {
        let id = self.nodes.len();
        let level = assigned_level(self.config.seed, id as u64, self.config.m);
        self.nodes.push(HnswNode {
            levels: vec![Vec::new(); level + 1],
        });
        let Some(entry) = self.entry else {
            self.entry = Some(id as u32);
            return id;
        };
        let entry_level = self.node_level(entry);
        let sim = |x: usize| source.pair_similarity(x, id);

        // Greedy descent through the layers above the new node's level.
        let mut cur = entry;
        for l in (level + 1..=entry_level).rev() {
            cur = self.greedy_closest(cur, l, &sim);
        }

        // Beam search + neighbor selection on each shared layer.
        let mut visited = Visited::new(self.nodes.len());
        let mut eps = vec![cur];
        for l in (0..=level.min(entry_level)).rev() {
            let candidates =
                self.search_layer(&eps, l, self.config.ef_construction, &sim, &mut visited);
            let selected = self.select_neighbors(&candidates, self.config.m, source);
            if let Some(node) = self.nodes.get_mut(id) {
                if let Some(list) = node.levels.get_mut(l) {
                    *list = selected.clone();
                }
            }
            let allowed = self.allowed_links(l);
            for n in selected {
                self.link(n, id as u32, l, allowed, source);
            }
            eps = candidates.iter().map(|c| c.id).collect();
        }
        if level > entry_level {
            self.entry = Some(id as u32);
        }
        id
    }

    /// Approximate top-k by cosine similarity: `(id, score)` pairs in
    /// `(score desc, id asc)` order. `ef` is raised to `max(ef_search,
    /// k)`; scores are computed by `source` with the exact operation
    /// order of [`cosine`], so owned and mapped stores answer
    /// bit-identically.
    pub fn search(&self, query: &[f64], k: usize, source: &impl VectorSource) -> Vec<(usize, f64)> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let sim = |x: usize| source.similarity(x, query);
        let mut cur = entry;
        for l in (1..=self.node_level(entry)).rev() {
            cur = self.greedy_closest(cur, l, &sim);
        }
        let ef = self.config.ef_search.max(k);
        let mut visited = Visited::new(self.nodes.len());
        let mut best = self.search_layer(&[cur], 0, ef, &sim, &mut visited);
        best.truncate(k);
        best.into_iter().map(|s| (s.id as usize, s.score)).collect()
    }

    /// The level of node `n` (0 when unknown — never panics).
    fn node_level(&self, n: u32) -> usize {
        self.nodes
            .get(n as usize)
            .map_or(0, |node| node.levels.len().saturating_sub(1))
    }

    /// Neighbor list of node `n` at `level` (empty when out of range).
    fn neighbors(&self, n: u32, level: usize) -> &[u32] {
        self.nodes
            .get(n as usize)
            .and_then(|node| node.levels.get(level))
            .map_or(&[], Vec::as_slice)
    }

    /// Max links a node may keep at `level` (the standard `2m` on the
    /// dense bottom layer).
    fn allowed_links(&self, level: usize) -> usize {
        if level == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Greedy hill-climb on one layer: follow the first strictly-better
    /// neighbor sweep until no neighbor improves. Neighbor lists are in
    /// deterministic order, so the walk is too.
    fn greedy_closest(&self, start: u32, level: usize, sim: &impl Fn(usize) -> f64) -> u32 {
        let mut cur = start;
        let mut cur_score = sim(cur as usize);
        loop {
            let mut improved = false;
            for &n in self.neighbors(cur, level) {
                let score = sim(n as usize);
                if score > cur_score {
                    cur = n;
                    cur_score = score;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Best-first beam search on one layer: returns up to `ef` results in
    /// `(score desc, id asc)` order. Deterministic: both heaps order by
    /// [`Scored`]'s total order.
    fn search_layer(
        &self,
        entries: &[u32],
        level: usize,
        ef: usize,
        sim: &impl Fn(usize) -> f64,
        visited: &mut Visited,
    ) -> Vec<Scored> {
        visited.next_generation();
        let ef = ef.max(1);
        // `candidates` pops the best unexpanded node; `best` keeps the ef
        // strongest results with the weakest on top (via Reverse).
        let mut candidates: BinaryHeap<Scored> = BinaryHeap::new();
        let mut best: BinaryHeap<std::cmp::Reverse<Scored>> = BinaryHeap::new();
        for &e in entries {
            if visited.check_and_mark(e) {
                continue;
            }
            let s = Scored {
                score: sim(e as usize),
                id: e,
            };
            candidates.push(s);
            best.push(std::cmp::Reverse(s));
            if best.len() > ef {
                best.pop();
            }
        }
        while let Some(cand) = candidates.pop() {
            if best.len() >= ef {
                if let Some(std::cmp::Reverse(worst)) = best.peek() {
                    if cand < *worst {
                        break;
                    }
                }
            }
            for &n in self.neighbors(cand.id, level) {
                if visited.check_and_mark(n) {
                    continue;
                }
                let s = Scored {
                    score: sim(n as usize),
                    id: n,
                };
                let admit = match best.peek() {
                    Some(std::cmp::Reverse(worst)) => best.len() < ef || s > *worst,
                    None => true,
                };
                if admit {
                    candidates.push(s);
                    best.push(std::cmp::Reverse(s));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = best.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// The Malkov relative-neighborhood heuristic with kept-pruned
    /// fill-up: walk candidates best-first, keep one when it is closer to
    /// the query than to every already-kept neighbor (diversity beats
    /// raw proximity on clustered data), then fill remaining slots from
    /// the rejects in order. Input must be `(score desc, id asc)` sorted;
    /// output order is the selection order, which is deterministic.
    fn select_neighbors(
        &self,
        candidates: &[Scored],
        m: usize,
        source: &impl VectorSource,
    ) -> Vec<u32> {
        let mut selected: Vec<Scored> = Vec::with_capacity(m);
        let mut rejected: Vec<u32> = Vec::new();
        for &c in candidates {
            if selected.len() >= m {
                break;
            }
            let diverse = selected
                .iter()
                .all(|s| c.score > source.pair_similarity(c.id as usize, s.id as usize));
            if diverse {
                selected.push(c);
            } else {
                rejected.push(c.id);
            }
        }
        let mut out: Vec<u32> = selected.into_iter().map(|s| s.id).collect();
        for id in rejected {
            if out.len() >= m {
                break;
            }
            out.push(id);
        }
        out
    }

    /// Adds `from → to` at `level`, re-selecting `from`'s list with the
    /// same heuristic when it overflows `allowed`.
    fn link(
        &mut self,
        from: u32,
        to: u32,
        level: usize,
        allowed: usize,
        source: &impl VectorSource,
    ) {
        let Some(list) = self
            .nodes
            .get_mut(from as usize)
            .and_then(|node| node.levels.get_mut(level))
        else {
            return;
        };
        if list.contains(&to) {
            return;
        }
        list.push(to);
        if list.len() <= allowed {
            return;
        }
        let current = std::mem::take(list);
        let mut scored: Vec<Scored> = current
            .into_iter()
            .map(|x| Scored {
                score: source.pair_similarity(x as usize, from as usize),
                id: x,
            })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        let kept = self.select_neighbors(&scored, allowed, source);
        if let Some(list) = self
            .nodes
            .get_mut(from as usize)
            .and_then(|node| node.levels.get_mut(level))
        {
            *list = kept;
        }
    }

    /// Serializes the graph (config, entry point, adjacency) to the
    /// little-endian payload embedded in [`VectorIndex::to_bytes`] and in
    /// mapped catalog files. Round-trips bit-for-bit through
    /// [`Hnsw::from_bytes`].
    ///
    /// [`VectorIndex::to_bytes`]: crate::VectorIndex::to_bytes
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_u64(&mut out, self.config.m as u64);
        write_u64(&mut out, self.config.ef_construction as u64);
        write_u64(&mut out, self.config.ef_search as u64);
        write_u64(&mut out, self.config.seed);
        match self.entry {
            None => out.push(0),
            Some(e) => {
                out.push(1);
                write_u64(&mut out, e as u64);
            }
        }
        write_u64(&mut out, self.nodes.len() as u64);
        for node in &self.nodes {
            write_u64(&mut out, node.levels.len() as u64);
            for level in &node.levels {
                write_u64(&mut out, level.len() as u64);
                for &n in level {
                    out.extend_from_slice(&n.to_le_bytes());
                }
            }
        }
        out
    }

    /// Restores a graph from [`Hnsw::to_bytes`] output. Strict: truncated
    /// or trailing bytes fail; ids and the entry point are bounds-checked
    /// against the node count so a corrupt file cannot produce a graph
    /// that probes out of range.
    pub fn from_bytes(bytes: &[u8]) -> Result<Hnsw, String> {
        let mut r = Reader::new(bytes);
        let config = HnswConfig {
            m: r.u64()? as usize,
            ef_construction: r.u64()? as usize,
            ef_search: r.u64()? as usize,
            seed: r.u64()?,
        };
        let entry = match r.u8()? {
            0 => None,
            1 => Some(r.u64()? as u32),
            tag => return Err(format!("unknown HNSW entry tag {tag}")),
        };
        let n = r.u64()? as usize;
        let mut nodes = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let num_levels = r.u64()? as usize;
            let mut levels = Vec::with_capacity(num_levels.min(MAX_LEVEL + 1));
            for _ in 0..num_levels {
                let len = r.u64()? as usize;
                let mut list = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    let id = r.u32()?;
                    if id as usize >= n {
                        return Err(format!("HNSW link {id} out of range (n = {n})"));
                    }
                    list.push(id);
                }
                levels.push(list);
            }
            nodes.push(HnswNode { levels });
        }
        r.expect_end("HNSW")?;
        if let Some(e) = entry {
            if e as usize >= n {
                return Err(format!("HNSW entry point {e} out of range (n = {n})"));
            }
        }
        Ok(Hnsw {
            config,
            entry,
            nodes,
        })
    }
}

/// Deterministic level assignment: hash `(seed, id)` through SplitMix64,
/// map to `(0, 1]`, and apply the standard exponential level rule
/// `⌊−ln(u) · 1/ln(m)⌋`. A pure function of identity — no RNG stream to
/// share or replay.
fn assigned_level(seed: u64, id: u64, m: usize) -> usize {
    let mut x = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // SplitMix64 finalizer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // 53 uniform bits → u in (0, 1].
    let u = ((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let ml = 1.0 / (m.max(2) as f64).ln();
    ((-u.ln()) * ml).floor().min(MAX_LEVEL as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| {
                        let x = assigned_level(7, (i * dim + d) as u64, 2) as f64;
                        (i as f64 * 0.37 + d as f64 * 1.13 + x).sin()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton() {
        let vecs = vectors(1, 4);
        let mut h = Hnsw::new(HnswConfig::default());
        assert!(h.is_empty());
        assert!(h.search(&vecs[0], 3, &SliceSource(&vecs)).is_empty());
        h.insert(&SliceSource(&vecs));
        assert_eq!(h.len(), 1);
        let hits = h.search(&vecs[0], 3, &SliceSource(&vecs));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn finds_exact_neighbors_on_small_catalog() {
        let vecs = vectors(60, 8);
        let source = SliceSource(&vecs);
        let h = Hnsw::build(HnswConfig::default(), &source);
        for (q, query) in vecs.iter().enumerate().take(10) {
            let hits = h.search(query, 1, &source);
            assert_eq!(hits[0].0, q, "self-query must find itself");
            assert!((hits[0].1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let vecs = vectors(200, 6);
        let source = SliceSource(&vecs);
        let a = Hnsw::build(HnswConfig::default(), &source);
        let b = Hnsw::build(HnswConfig::default(), &source);
        assert_eq!(a.to_bytes(), b.to_bytes());
        let c = Hnsw::build(
            HnswConfig {
                seed: 5,
                ..HnswConfig::default()
            },
            &source,
        );
        assert_ne!(a.to_bytes(), c.to_bytes(), "seed changes the graph");
    }

    #[test]
    fn byte_roundtrip_is_bitwise() {
        let vecs = vectors(120, 5);
        let source = SliceSource(&vecs);
        let h = Hnsw::build(HnswConfig::default(), &source);
        let restored = Hnsw::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(restored.to_bytes(), h.to_bytes());
        let q = &vecs[17];
        assert_eq!(h.search(q, 5, &source), restored.search(q, 5, &source));
    }

    #[test]
    fn from_bytes_rejects_malformed() {
        let vecs = vectors(10, 3);
        let h = Hnsw::build(HnswConfig::default(), &SliceSource(&vecs));
        let bytes = h.to_bytes();
        assert!(Hnsw::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(9);
        assert!(Hnsw::from_bytes(&trailing).is_err());
        assert!(Hnsw::from_bytes(&[0u8; 3]).is_err());
    }

    #[test]
    fn levels_are_identity_pure_and_bounded() {
        for id in 0..10_000u64 {
            let a = assigned_level(3, id, 16);
            assert_eq!(a, assigned_level(3, id, 16));
            assert!(a <= MAX_LEVEL);
        }
        // The exponential rule produces mostly level-0 nodes.
        let zero = (0..10_000u64)
            .filter(|&id| assigned_level(3, id, 16) == 0)
            .count();
        assert!(zero > 9_000, "{zero} of 10000 at level 0");
    }
}
