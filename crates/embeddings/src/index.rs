//! Vector similarity index — the FAISS substitute.
//!
//! Exact cosine top-k by default; an IVF (inverted file) mode partitions
//! vectors with k-means and probes only the nearest partitions, the same
//! accuracy/speed trade FAISS's `IndexIVFFlat` makes.

use crate::column::cosine;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A named-vector index with exact and IVF-approximate top-k search.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct VectorIndex {
    names: Vec<String>,
    vectors: Vec<Vec<f64>>,
    /// IVF state: centroid vectors and per-partition member lists.
    ivf: Option<Ivf>,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Ivf {
    centroids: Vec<Vec<f64>>,
    members: Vec<Vec<usize>>,
    nprobe: usize,
}

impl VectorIndex {
    /// Catalog size at which [`VectorIndex::auto_tune`] switches the
    /// nearest-dataset lookup from exact scan to IVF probing. Below this,
    /// an exact scan is both faster and trivially correct.
    pub const IVF_AUTO_THRESHOLD: usize = 128;

    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named vector. Invalidates any trained IVF partitioning.
    pub fn add(&mut self, name: impl Into<String>, vector: Vec<f64>) {
        self.names.push(name.into());
        self.vectors.push(vector);
        self.ivf = None;
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the index stores nothing.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Name of the i-th stored vector.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Exact top-k by cosine similarity: `(name, similarity)` descending.
    pub fn top_k(&self, query: &[f64], k: usize) -> Vec<(String, f64)> {
        let mut scored: Vec<(usize, f64)> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine(query, v)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, s)| (self.names[i].clone(), s))
            .collect()
    }

    /// Trains an IVF partitioning with `nlist` k-means partitions, probing
    /// `nprobe` partitions at query time.
    pub fn train_ivf(&mut self, nlist: usize, nprobe: usize, seed: u64) {
        let n = self.vectors.len();
        if n == 0 {
            return;
        }
        let nlist = nlist.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        // k-means++ style init: random distinct seeds.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f64>> = order[..nlist]
            .iter()
            .map(|&i| self.vectors[i].clone())
            .collect();
        let mut assignment = vec![0usize; n];
        for _iter in 0..20 {
            let mut changed = false;
            for (i, v) in self.vectors.iter().enumerate() {
                let best = centroids
                    .iter()
                    .enumerate()
                    .max_by(|a, b| cosine(v, a.1).partial_cmp(&cosine(v, b.1)).unwrap())
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Recompute centroids as member means.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
                if members.is_empty() {
                    continue;
                }
                let dim = centroid.len();
                let mut mean = vec![0.0; dim];
                for &m in &members {
                    for (s, x) in mean.iter_mut().zip(&self.vectors[m]) {
                        *s += x;
                    }
                }
                for s in &mut mean {
                    *s /= members.len() as f64;
                }
                *centroid = mean;
            }
            if !changed {
                break;
            }
        }
        let mut members = vec![Vec::new(); nlist];
        for (i, &c) in assignment.iter().enumerate() {
            members[c].push(i);
        }
        self.ivf = Some(Ivf {
            centroids,
            members,
            nprobe: nprobe.clamp(1, nlist),
        });
    }

    /// True when an IVF partitioning is currently trained.
    pub fn has_ivf(&self) -> bool {
        self.ivf.is_some()
    }

    /// Trains IVF automatically for large catalogs: when the index holds
    /// at least [`VectorIndex::IVF_AUTO_THRESHOLD`] vectors, builds
    /// `√n` partitions probing `max(1, √n/4)` of them (the standard IVF
    /// sizing rule) and returns `true`; smaller catalogs are left on the
    /// exact path and return `false`.
    pub fn auto_tune(&mut self, seed: u64) -> bool {
        let n = self.vectors.len();
        if n < Self::IVF_AUTO_THRESHOLD {
            return false;
        }
        let nlist = (n as f64).sqrt().round().max(1.0) as usize;
        let nprobe = (nlist / 4).max(1);
        self.train_ivf(nlist, nprobe, seed);
        true
    }

    /// Serializes the index (names, vectors, and any trained IVF state)
    /// to a self-contained little-endian binary payload — the section
    /// format used inside KGpip model snapshots. Round-trips bit-for-bit
    /// through [`VectorIndex::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_u64(&mut out, self.names.len() as u64);
        for (name, vector) in self.names.iter().zip(&self.vectors) {
            write_str(&mut out, name);
            write_f64s(&mut out, vector);
        }
        match &self.ivf {
            None => out.push(0),
            Some(ivf) => {
                out.push(1);
                write_u64(&mut out, ivf.centroids.len() as u64);
                for centroid in &ivf.centroids {
                    write_f64s(&mut out, centroid);
                }
                for members in &ivf.members {
                    write_u64(&mut out, members.len() as u64);
                    for &m in members {
                        write_u64(&mut out, m as u64);
                    }
                }
                write_u64(&mut out, ivf.nprobe as u64);
            }
        }
        out
    }

    /// Restores an index from [`VectorIndex::to_bytes`] output. Strict:
    /// trailing bytes, truncation, or malformed UTF-8 all fail rather
    /// than producing a partially-loaded index.
    pub fn from_bytes(bytes: &[u8]) -> Result<VectorIndex, String> {
        let mut r = Reader { bytes, pos: 0 };
        let n = r.u64()? as usize;
        let mut names = Vec::with_capacity(n.min(1 << 20));
        let mut vectors = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            names.push(r.str()?);
            vectors.push(r.f64s()?);
        }
        let ivf = match r.u8()? {
            0 => None,
            1 => {
                let nlist = r.u64()? as usize;
                let mut centroids = Vec::with_capacity(nlist.min(1 << 20));
                for _ in 0..nlist {
                    centroids.push(r.f64s()?);
                }
                let mut members = Vec::with_capacity(nlist.min(1 << 20));
                for _ in 0..nlist {
                    let len = r.u64()? as usize;
                    let mut list = Vec::with_capacity(len.min(1 << 20));
                    for _ in 0..len {
                        list.push(r.u64()? as usize);
                    }
                    members.push(list);
                }
                let nprobe = r.u64()? as usize;
                Some(Ivf {
                    centroids,
                    members,
                    nprobe,
                })
            }
            tag => return Err(format!("unknown IVF tag {tag}")),
        };
        if r.pos != bytes.len() {
            return Err(format!(
                "trailing bytes after index payload ({} of {} consumed)",
                r.pos,
                bytes.len()
            ));
        }
        Ok(VectorIndex {
            names,
            vectors,
            ivf,
        })
    }

    /// IVF-approximate top-k: probes the `nprobe` partitions whose
    /// centroids are most similar to the query. Falls back to exact search
    /// when IVF has not been trained.
    pub fn top_k_ivf(&self, query: &[f64], k: usize) -> Vec<(String, f64)> {
        let Some(ivf) = &self.ivf else {
            return self.top_k(query, k);
        };
        let mut parts: Vec<(usize, f64)> = ivf
            .centroids
            .iter()
            .enumerate()
            .map(|(c, v)| (c, cosine(query, v)))
            .collect();
        parts.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let mut scored: Vec<(usize, f64)> = Vec::new();
        for &(c, _) in parts.iter().take(ivf.nprobe) {
            for &i in &ivf.members[c] {
                scored.push((i, cosine(query, &self.vectors[i])));
            }
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, s)| (self.names[i].clone(), s))
            .collect()
    }
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    write_u64(out, xs.len() as u64);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor for [`VectorIndex::from_bytes`].
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("index payload truncated at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u64()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|e| e.to_string())
    }

    fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let len = self.u64()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(f64::from_le_bytes(self.take(8)?.try_into().unwrap()));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dir: usize, dim: usize) -> Vec<f64> {
        let mut v = vec![0.0; dim];
        v[dir] = 1.0;
        v
    }

    #[test]
    fn exact_top_k_orders_by_similarity() {
        let mut idx = VectorIndex::new();
        idx.add("x", unit(0, 4));
        idx.add("y", unit(1, 4));
        idx.add("xy", vec![0.7, 0.7, 0.0, 0.0]);
        let hits = idx.top_k(&unit(0, 4), 2);
        assert_eq!(hits[0].0, "x");
        assert!((hits[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(hits[1].0, "xy");
    }

    #[test]
    fn top_k_caps_at_len() {
        let mut idx = VectorIndex::new();
        idx.add("only", unit(0, 2));
        assert_eq!(idx.top_k(&unit(0, 2), 10).len(), 1);
        assert!(VectorIndex::new().top_k(&unit(0, 2), 3).is_empty());
    }

    #[test]
    fn ivf_with_full_probe_matches_exact() {
        let mut idx = VectorIndex::new();
        for i in 0..40 {
            let mut v = vec![0.0; 8];
            v[i % 8] = 1.0;
            v[(i + 1) % 8] = 0.3;
            idx.add(format!("v{i}"), v);
        }
        let exact = idx.top_k(&unit(3, 8), 5);
        idx.train_ivf(4, 4, 7);
        let approx = idx.top_k_ivf(&unit(3, 8), 5);
        assert_eq!(
            exact.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            approx.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ivf_narrow_probe_still_finds_near_cluster() {
        let mut idx = VectorIndex::new();
        // Two tight clusters along axes 0 and 5.
        for i in 0..20 {
            let mut v = vec![0.0; 8];
            v[0] = 1.0;
            v[1] = 0.01 * i as f64;
            idx.add(format!("a{i}"), v);
            let mut w = vec![0.0; 8];
            w[5] = 1.0;
            w[6] = 0.01 * i as f64;
            idx.add(format!("b{i}"), w);
        }
        idx.train_ivf(2, 1, 3);
        let hits = idx.top_k_ivf(&unit(0, 8), 3);
        assert!(hits.iter().all(|(n, _)| n.starts_with('a')));
    }

    #[test]
    fn auto_tune_respects_threshold() {
        let mut small = VectorIndex::new();
        for i in 0..VectorIndex::IVF_AUTO_THRESHOLD - 1 {
            small.add(format!("v{i}"), unit(i % 8, 8));
        }
        assert!(!small.auto_tune(0), "below threshold stays exact");
        assert!(!small.has_ivf());
        small.add("last", unit(0, 8));
        assert!(small.auto_tune(0), "at threshold trains IVF");
        assert!(small.has_ivf());
    }

    #[test]
    fn byte_roundtrip_preserves_index_bitwise() {
        let mut idx = VectorIndex::new();
        for i in 0..40 {
            let mut v = vec![0.125 * i as f64; 8];
            v[i % 8] = 1.0 + i as f64 * 0.001;
            idx.add(format!("v{i}"), v);
        }
        idx.train_ivf(4, 2, 9);
        let restored = VectorIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(restored.names, idx.names);
        for (a, b) in idx.vectors.iter().zip(&restored.vectors) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
        assert!(restored.has_ivf());
        let q = unit(3, 8);
        let before: Vec<_> = idx.top_k_ivf(&q, 5);
        let after: Vec<_> = restored.top_k_ivf(&q, 5);
        assert_eq!(before.len(), after.len());
        for ((na, sa), (nb, sb)) in before.iter().zip(&after) {
            assert_eq!(na, nb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }

    #[test]
    fn from_bytes_rejects_malformed_payloads() {
        let mut idx = VectorIndex::new();
        idx.add("a", unit(0, 4));
        let bytes = idx.to_bytes();
        assert!(VectorIndex::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(VectorIndex::from_bytes(&trailing).is_err());
        assert!(VectorIndex::from_bytes(&[0xff; 4]).is_err());
        let empty = VectorIndex::new();
        let restored = VectorIndex::from_bytes(&empty.to_bytes()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn adding_invalidates_ivf() {
        let mut idx = VectorIndex::new();
        idx.add("a", unit(0, 4));
        idx.train_ivf(1, 1, 0);
        idx.add("b", unit(1, 4));
        // Falls back to exact search and still sees the new vector.
        let hits = idx.top_k_ivf(&unit(1, 4), 1);
        assert_eq!(hits[0].0, "b");
    }
}
