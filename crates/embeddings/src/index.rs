//! Vector similarity index — the FAISS substitute.
//!
//! Three tiers, auto-selected by catalog size ([`VectorIndex::auto_tune`]):
//! exact cosine top-k for small catalogs; an IVF (inverted file) mode that
//! partitions vectors with k-means and probes only the nearest partitions
//! (FAISS's `IndexIVFFlat`); and a deterministic HNSW graph
//! ([`crate::hnsw`], FAISS's `IndexHNSWFlat`) for the 100K–1M-vector
//! catalogs where even coarse IVF probes pay a near-linear scan.
//! [`VectorIndex::search`] dispatches to the active tier;
//! [`VectorIndex::register`] grows the catalog online without retraining
//! whichever tier is active.

use crate::column::cosine;
use crate::hnsw::{Hnsw, HnswConfig, SliceSource};
use crate::pq::{par_map_indices, AdcSource, Pq, PqConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which search structure a [`VectorIndex`] currently answers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexTier {
    /// Linear scan — trivially correct, fastest below ~hundreds.
    Exact,
    /// k-means partitions with `nprobe` probing.
    Ivf,
    /// Hierarchical navigable small-world graph.
    Hnsw,
}

impl std::fmt::Display for IndexTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexTier::Exact => write!(f, "exact"),
            IndexTier::Ivf => write!(f, "ivf"),
            IndexTier::Hnsw => write!(f, "hnsw"),
        }
    }
}

/// Resident byte accounting for a vector index, per storage component —
/// so the PQ memory win is a tracked number, not a claim. Reported by
/// `kgpip-cli index stats` and the embeddings bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// The active search tier.
    pub tier: IndexTier,
    /// True when a product-quantized store backs the tier's scans.
    pub quantized: bool,
    /// Catalog size.
    pub count: usize,
    /// Embedding dimensionality (of the first vector; 0 when empty).
    pub dim: usize,
    /// Bytes of the full-precision `f64` vector block.
    pub vector_bytes: usize,
    /// Bytes of IVF state (centroids + member lists).
    pub ivf_bytes: usize,
    /// Bytes of the HNSW adjacency (serialized size — the graph stores
    /// no vectors).
    pub hnsw_bytes: usize,
    /// Bytes of the PQ state (code matrix + codebooks) — the block a
    /// quantized scan actually reads.
    pub pq_bytes: usize,
}

impl IndexStats {
    /// Total resident bytes across all components.
    pub fn resident_bytes(&self) -> usize {
        self.vector_bytes + self.ivf_bytes + self.hnsw_bytes + self.pq_bytes
    }

    /// Bytes the active tier's candidate scan touches per full pass: the
    /// code matrix when quantized, the `f64` block otherwise.
    pub fn scan_bytes(&self) -> usize {
        if self.quantized {
            self.pq_bytes
        } else {
            self.vector_bytes
        }
    }
}

/// A named-vector index with exact, IVF-approximate, and HNSW-approximate
/// top-k search.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct VectorIndex {
    pub(crate) names: Vec<String>,
    pub(crate) vectors: Vec<Vec<f64>>,
    /// IVF state: centroid vectors and per-partition member lists.
    ivf: Option<Ivf>,
    /// HNSW state: the layered proximity graph (adjacency only; vectors
    /// stay in `vectors`). Absent in pre-HNSW serialized indexes.
    #[serde(default)]
    pub(crate) hnsw: Option<Hnsw>,
    /// Product-quantization state: per-subspace codebooks plus the `u8`
    /// code matrix. A storage/scoring layer under the tiers, not a tier —
    /// when present, beam/list scans read codes and the top `rerank × k`
    /// candidates are re-ranked with exact cosine. Absent in pre-PQ
    /// serialized indexes.
    #[serde(default)]
    pub(crate) pq: Option<Pq>,
    /// Requested worker count for k-means assignment and PQ encoding
    /// (clamped through `effective_parallelism`; 0 means sequential).
    /// Ephemeral build-time state — any value produces bit-identical
    /// results, so round-tripping it is harmless.
    #[serde(default)]
    parallelism: usize,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Ivf {
    centroids: Vec<Vec<f64>>,
    members: Vec<Vec<usize>>,
    nprobe: usize,
}

impl VectorIndex {
    /// Catalog size at which [`VectorIndex::auto_tune`] switches the
    /// nearest-dataset lookup from exact scan to IVF probing. Below this,
    /// an exact scan is both faster and trivially correct.
    pub const IVF_AUTO_THRESHOLD: usize = 128;

    /// Catalog size at which [`VectorIndex::auto_tune`] switches from IVF
    /// to the HNSW graph. At √n-list sizing, IVF probes ~n/4 vectors per
    /// query; past a few thousand entries the graph's near-logarithmic
    /// descent wins.
    pub const HNSW_AUTO_THRESHOLD: usize = 4096;

    /// Catalog size at which [`VectorIndex::auto_tune`] additionally
    /// quantizes the vector store ([`PqConfig::default`]): below this the
    /// full-`f64` block fits comfortably in cache and PQ's codebook
    /// training isn't worth the build time; at and above it the compact
    /// code matrix keeps beam scans cache-resident.
    pub const PQ_AUTO_THRESHOLD: usize = 100_000;

    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named vector at build time. Invalidates any trained IVF
    /// partitioning or HNSW graph — callers retune once after bulk adds.
    /// For online growth that *extends* the current tier instead, use
    /// [`VectorIndex::register`].
    pub fn add(&mut self, name: impl Into<String>, vector: Vec<f64>) {
        self.names.push(name.into());
        self.vectors.push(vector);
        self.ivf = None;
        self.hnsw = None;
        self.pq = None;
    }

    /// Sets the requested worker count for k-means assignment and PQ
    /// encoding (clamped through `effective_parallelism`; 0 or 1 means
    /// sequential). Parallelism changes build *cost* only — results are
    /// bit-identical at any setting.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers;
    }

    /// The requested build worker count (0 means sequential).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Registers a named vector online, extending whichever tier is
    /// active instead of invalidating it: HNSW gets an incremental
    /// [`Hnsw::insert`] (bit-identical to a from-scratch rebuild with the
    /// same order), IVF assigns the vector to its nearest centroid
    /// without re-running k-means, and the exact tier just appends. A
    /// quantized store encodes the new vector against the frozen
    /// codebooks — no retrain.
    pub fn register(&mut self, name: impl Into<String>, vector: Vec<f64>) {
        self.names.push(name.into());
        self.vectors.push(vector);
        if let Some(mut hnsw) = self.hnsw.take() {
            hnsw.insert(&SliceSource(&self.vectors));
            self.hnsw = Some(hnsw);
        }
        if let (Some(pq), Some(v)) = (&mut self.pq, self.vectors.last()) {
            pq.append(v);
        }
        let id = self.vectors.len() - 1;
        if let (Some(ivf), Some(v)) = (&mut self.ivf, self.vectors.last()) {
            let best = ivf
                .centroids
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    cosine(v, a.1)
                        .total_cmp(&cosine(v, b.1))
                        .then_with(|| b.0.cmp(&a.0))
                })
                .map(|(c, _)| c);
            if let Some(members) = best.and_then(|c| ivf.members.get_mut(c)) {
                members.push(id);
            }
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the index stores nothing.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Name of the i-th stored vector.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// The i-th stored vector, when in range.
    pub fn vector(&self, i: usize) -> Option<&[f64]> {
        self.vectors.get(i).map(Vec::as_slice)
    }

    /// Exact top-k by cosine similarity: `(name, similarity)` descending.
    /// Ties order by insertion id via `(score, id)` `total_cmp`, so equal
    /// scores (and NaN-scored entries) rank identically across rebuilds.
    pub fn top_k(&self, query: &[f64], k: usize) -> Vec<(String, f64)> {
        let mut scored: Vec<(usize, f64)> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine(query, v)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, s)| (self.names[i].clone(), s))
            .collect()
    }

    /// Trains an IVF partitioning with `nlist` k-means partitions, probing
    /// `nprobe` partitions at query time.
    pub fn train_ivf(&mut self, nlist: usize, nprobe: usize, seed: u64) {
        let n = self.vectors.len();
        if n == 0 {
            return;
        }
        let nlist = nlist.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        // k-means++ style init: random distinct seeds.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f64>> = order[..nlist]
            .iter()
            .map(|&i| self.vectors[i].clone())
            .collect();
        let vectors = &self.vectors;
        let mut assignment = vec![0usize; n];
        for _iter in 0..20 {
            // Assignment is embarrassingly parallel: each vector's best
            // centroid is independent, and `par_map_indices` reduces in
            // input order, so any worker count is bit-identical to the
            // sequential scan.
            let next: Vec<usize> = par_map_indices(n, self.parallelism, |i| {
                vectors.get(i).map_or(0, |v| {
                    centroids
                        .iter()
                        .enumerate()
                        .max_by(|a, b| {
                            cosine(v, a.1)
                                .total_cmp(&cosine(v, b.1))
                                .then_with(|| b.0.cmp(&a.0))
                        })
                        .map(|(c, _)| c)
                        .unwrap_or(0)
                })
            });
            let changed = next != assignment;
            assignment = next;
            // Recompute centroids as member means in one pass over the
            // catalog: per-centroid sums accumulate in ascending id order
            // (the same fold order as a per-centroid member walk), so the
            // result is bit-identical to the old O(nlist·n) recompute.
            let mut sums: Vec<Vec<f64>> = centroids.iter().map(|c| vec![0.0; c.len()]).collect();
            let mut counts = vec![0usize; centroids.len()];
            for (i, &c) in assignment.iter().enumerate() {
                if let (Some(sum), Some(v)) = (sums.get_mut(c), vectors.get(i)) {
                    for (s, x) in sum.iter_mut().zip(v) {
                        *s += x;
                    }
                }
                if let Some(cnt) = counts.get_mut(c) {
                    *cnt += 1;
                }
            }
            for ((centroid, sum), &cnt) in centroids.iter_mut().zip(sums).zip(&counts) {
                if cnt == 0 {
                    continue;
                }
                for (dst, s) in centroid.iter_mut().zip(sum) {
                    *dst = s / cnt as f64;
                }
            }
            if !changed {
                break;
            }
        }
        let mut members = vec![Vec::new(); nlist];
        for (i, &c) in assignment.iter().enumerate() {
            members[c].push(i);
        }
        self.ivf = Some(Ivf {
            centroids,
            members,
            nprobe: nprobe.clamp(1, nlist),
        });
    }

    /// True when an IVF partitioning is currently trained.
    pub fn has_ivf(&self) -> bool {
        self.ivf.is_some()
    }

    /// True when an HNSW graph is currently built.
    pub fn has_hnsw(&self) -> bool {
        self.hnsw.is_some()
    }

    /// The search structure [`VectorIndex::search`] currently dispatches
    /// to: HNSW when built, else IVF when trained, else the exact scan.
    pub fn tier(&self) -> IndexTier {
        if self.hnsw.is_some() {
            IndexTier::Hnsw
        } else if self.ivf.is_some() {
            IndexTier::Ivf
        } else {
            IndexTier::Exact
        }
    }

    /// The HNSW graph, when built — for stats reporting and mapped-file
    /// export.
    pub fn hnsw(&self) -> Option<&Hnsw> {
        self.hnsw.as_ref()
    }

    /// Builds (or rebuilds) the HNSW graph over the current catalog by
    /// inserting vectors in id order; replaces any IVF partitioning as
    /// the active tier.
    pub fn build_hnsw(&mut self, config: HnswConfig) {
        self.hnsw = Some(Hnsw::build(config, &SliceSource(&self.vectors)));
    }

    /// Selects and trains the search tier for the current catalog size:
    /// `n < 128` stays exact, `128 ≤ n < 4096` trains `√n`-list IVF
    /// probing `max(1, √n/4)` partitions (the standard sizing rule), and
    /// `n ≥ 4096` builds a default-parameter HNSW graph seeded with
    /// `seed`. Returns the chosen tier. The losing tiers are dropped so
    /// [`VectorIndex::tier`] always reflects the policy's pick.
    ///
    /// Orthogonally, catalogs of [`VectorIndex::PQ_AUTO_THRESHOLD`] or
    /// more vectors also get a product-quantized vector store
    /// ([`PqConfig::default`] geometry, this `seed`) so the tier's scans
    /// read compact codes; smaller catalogs drop any quantization.
    pub fn auto_tune(&mut self, seed: u64) -> IndexTier {
        let n = self.vectors.len();
        let tier = if n >= Self::HNSW_AUTO_THRESHOLD {
            self.ivf = None;
            self.build_hnsw(HnswConfig {
                seed,
                ..HnswConfig::default()
            });
            IndexTier::Hnsw
        } else if n >= Self::IVF_AUTO_THRESHOLD {
            self.hnsw = None;
            let nlist = (n as f64).sqrt().round().max(1.0) as usize;
            let nprobe = (nlist / 4).max(1);
            self.train_ivf(nlist, nprobe, seed);
            IndexTier::Ivf
        } else {
            self.hnsw = None;
            self.ivf = None;
            IndexTier::Exact
        };
        self.pq = None;
        if n >= Self::PQ_AUTO_THRESHOLD {
            // Mixed-dimension catalogs cannot quantize (the flat codebook
            // layout needs one geometry); they keep full vectors.
            let _ = self.quantize(PqConfig {
                seed,
                ..PqConfig::default()
            });
        }
        tier
    }

    /// Quantizes the vector store: trains per-subspace codebooks over the
    /// current catalog and encodes every vector into the `u8` code
    /// matrix. The active tier is unchanged — its scans switch to ADC
    /// over codes with an exact re-rank ([`VectorIndex::search`]).
    /// Full-precision vectors are retained for the re-rank, graph
    /// maintenance, and mapped export.
    pub fn quantize(&mut self, config: PqConfig) -> Result<(), String> {
        self.pq = Some(Pq::fit(&self.vectors, &config, self.parallelism)?);
        Ok(())
    }

    /// Drops any product-quantized store; scans return to full precision.
    pub fn dequantize(&mut self) {
        self.pq = None;
    }

    /// True when a product-quantized store is active.
    pub fn is_quantized(&self) -> bool {
        self.pq.is_some()
    }

    /// The product-quantized store, when trained — for stats reporting
    /// and mapped-file export.
    pub fn pq(&self) -> Option<&Pq> {
        self.pq.as_ref()
    }

    /// Resident byte accounting per storage component.
    pub fn stats(&self) -> IndexStats {
        let vector_bytes: usize = self.vectors.iter().map(|v| v.len() * 8).sum();
        let ivf_bytes = self.ivf.as_ref().map_or(0, |ivf| {
            let cents: usize = ivf.centroids.iter().map(|c| c.len() * 8).sum();
            let members: usize = ivf.members.iter().map(|m| m.len() * 8).sum();
            cents + members
        });
        let hnsw_bytes = self.hnsw.as_ref().map_or(0, |h| h.to_bytes().len());
        let pq_bytes = self.pq.as_ref().map_or(0, Pq::resident_bytes);
        IndexStats {
            tier: self.tier(),
            quantized: self.pq.is_some(),
            count: self.vectors.len(),
            dim: self.vectors.first().map_or(0, Vec::len),
            vector_bytes,
            ivf_bytes,
            hnsw_bytes,
            pq_bytes,
        }
    }

    /// Top-k through the active tier — the serve-path entry point.
    /// Results are `(name, similarity)` in `(score desc, id asc)` order
    /// for every tier. When the store is quantized, the tier's scan reads
    /// PQ codes and the answer is re-ranked with exact cosine
    /// ([`VectorIndex::search_quantized`]); the reported similarities are
    /// always exact.
    pub fn search(&self, query: &[f64], k: usize) -> Vec<(String, f64)> {
        if let Some(pq) = &self.pq {
            return self.search_quantized(pq, query, k);
        }
        match self.tier() {
            IndexTier::Hnsw => self.top_k_hnsw(query, k),
            IndexTier::Ivf => self.top_k_ivf(query, k),
            IndexTier::Exact => self.top_k(query, k),
        }
    }

    /// Top-k over the quantized store: the active tier's candidate scan
    /// (HNSW beam, IVF probed lists, or the full scan) scores PQ codes
    /// via one per-query ADC table, then the top `rerank × k` candidates
    /// are re-scored with exact [`cosine`] over the retained
    /// full-precision vectors and ordered `(score desc, id asc)` —
    /// compression changes what a query costs, never what it returns.
    /// Whenever the rerank window covers the candidate pool the answer is
    /// bit-identical to the unquantized index.
    ///
    /// [`cosine`]: crate::column::cosine
    fn search_quantized(&self, pq: &Pq, query: &[f64], k: usize) -> Vec<(String, f64)> {
        if k == 0 || self.vectors.is_empty() {
            return Vec::new();
        }
        let table = pq.adc_table(query);
        let fetch = k.saturating_mul(pq.rerank());
        let candidates: Vec<usize> = match (&self.hnsw, &self.ivf) {
            (Some(hnsw), _) => {
                // The beam descends over codes: `AdcSource::similarity`
                // reads the prebuilt table, never the f64 block. The
                // graph itself was built over full-precision vectors, so
                // it is the same graph an unquantized index searches.
                let source = AdcSource { pq, table: &table };
                hnsw.search(query, fetch, &source)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect()
            }
            (None, Some(ivf)) => {
                // Probe selection stays full-precision (centroids are
                // few); member scans read codes.
                let mut parts: Vec<(usize, f64)> = ivf
                    .centroids
                    .iter()
                    .enumerate()
                    .map(|(c, v)| (c, cosine(query, v)))
                    .collect();
                parts.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                let mut scored: Vec<(usize, f64)> = parts
                    .iter()
                    .take(ivf.nprobe)
                    .filter_map(|&(c, _)| ivf.members.get(c))
                    .flatten()
                    .map(|&i| (i, pq.score(&table, i)))
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scored.into_iter().take(fetch).map(|(i, _)| i).collect()
            }
            (None, None) => {
                let mut scored: Vec<(usize, f64)> = (0..self.vectors.len())
                    .map(|i| (i, pq.score(&table, i)))
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scored.into_iter().take(fetch).map(|(i, _)| i).collect()
            }
        };
        let mut reranked: Vec<(usize, f64)> = candidates
            .into_iter()
            .map(|i| (i, self.vectors.get(i).map_or(0.0, |v| cosine(query, v))))
            .collect();
        reranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        reranked
            .into_iter()
            .take(k)
            .filter_map(|(i, s)| self.names.get(i).map(|n| (n.clone(), s)))
            .collect()
    }

    /// HNSW-approximate top-k. Falls back to exact search when no graph
    /// has been built.
    pub fn top_k_hnsw(&self, query: &[f64], k: usize) -> Vec<(String, f64)> {
        let Some(hnsw) = &self.hnsw else {
            return self.top_k(query, k);
        };
        hnsw.search(query, k, &SliceSource(&self.vectors))
            .into_iter()
            .filter_map(|(i, s)| self.names.get(i).map(|n| (n.clone(), s)))
            .collect()
    }

    /// Serializes the index (names, vectors, and any trained IVF state)
    /// to a self-contained little-endian binary payload — the section
    /// format used inside KGpip model snapshots. Round-trips bit-for-bit
    /// through [`VectorIndex::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_u64(&mut out, self.names.len() as u64);
        for (name, vector) in self.names.iter().zip(&self.vectors) {
            write_str(&mut out, name);
            write_f64s(&mut out, vector);
        }
        match &self.ivf {
            None => out.push(0),
            Some(ivf) => {
                out.push(1);
                write_u64(&mut out, ivf.centroids.len() as u64);
                for centroid in &ivf.centroids {
                    write_f64s(&mut out, centroid);
                }
                for members in &ivf.members {
                    write_u64(&mut out, members.len() as u64);
                    for &m in members {
                        write_u64(&mut out, m as u64);
                    }
                }
                write_u64(&mut out, ivf.nprobe as u64);
            }
        }
        match &self.hnsw {
            None => out.push(0),
            Some(hnsw) => {
                out.push(1);
                let payload = hnsw.to_bytes();
                write_u64(&mut out, payload.len() as u64);
                out.extend_from_slice(&payload);
            }
        }
        match &self.pq {
            None => out.push(0),
            Some(pq) => {
                out.push(1);
                let payload = pq.to_bytes();
                write_u64(&mut out, payload.len() as u64);
                out.extend_from_slice(&payload);
            }
        }
        out
    }

    /// Restores an index from [`VectorIndex::to_bytes`] output. Strict:
    /// trailing bytes, truncation, or malformed UTF-8 all fail rather
    /// than producing a partially-loaded index. Two tolerances for older
    /// writers: payloads written before the HNSW tier existed end right
    /// after the IVF block (those load with `hnsw = None`), and payloads
    /// written before product quantization end right after the HNSW
    /// block (those load with `pq = None`) — so old snapshots keep
    /// opening.
    pub fn from_bytes(bytes: &[u8]) -> Result<VectorIndex, String> {
        let mut r = Reader::new(bytes);
        let n = r.u64()? as usize;
        let mut names = Vec::with_capacity(n.min(1 << 20));
        let mut vectors = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            names.push(r.str()?);
            vectors.push(r.f64s()?);
        }
        let ivf = match r.u8()? {
            0 => None,
            1 => {
                let nlist = r.u64()? as usize;
                let mut centroids = Vec::with_capacity(nlist.min(1 << 20));
                for _ in 0..nlist {
                    centroids.push(r.f64s()?);
                }
                let mut members = Vec::with_capacity(nlist.min(1 << 20));
                for _ in 0..nlist {
                    let len = r.u64()? as usize;
                    let mut list = Vec::with_capacity(len.min(1 << 20));
                    for _ in 0..len {
                        list.push(r.u64()? as usize);
                    }
                    members.push(list);
                }
                let nprobe = r.u64()? as usize;
                Some(Ivf {
                    centroids,
                    members,
                    nprobe,
                })
            }
            tag => return Err(format!("unknown IVF tag {tag}")),
        };
        let hnsw = if r.at_end() {
            None
        } else {
            match r.u8()? {
                0 => None,
                1 => {
                    let len = r.u64()? as usize;
                    let graph = Hnsw::from_bytes(r.take(len)?)?;
                    if graph.len() != names.len() {
                        return Err(format!(
                            "HNSW graph indexes {} nodes but catalog holds {}",
                            graph.len(),
                            names.len()
                        ));
                    }
                    Some(graph)
                }
                tag => return Err(format!("unknown HNSW tag {tag}")),
            }
        };
        let pq = if r.at_end() {
            None
        } else {
            match r.u8()? {
                0 => None,
                1 => {
                    let len = r.u64()? as usize;
                    let pq = Pq::from_bytes(r.take(len)?)?;
                    if pq.len() != names.len() {
                        return Err(format!(
                            "PQ code matrix holds {} rows but catalog holds {}",
                            pq.len(),
                            names.len()
                        ));
                    }
                    Some(pq)
                }
                tag => return Err(format!("unknown PQ tag {tag}")),
            }
        };
        r.expect_end("index")?;
        Ok(VectorIndex {
            names,
            vectors,
            ivf,
            hnsw,
            pq,
            parallelism: 0,
        })
    }

    /// IVF-approximate top-k: probes the `nprobe` partitions whose
    /// centroids are most similar to the query. Falls back to exact search
    /// when IVF has not been trained. Tie-breaking matches
    /// [`VectorIndex::top_k`]: `(score, id)` under `total_cmp`.
    pub fn top_k_ivf(&self, query: &[f64], k: usize) -> Vec<(String, f64)> {
        let Some(ivf) = &self.ivf else {
            return self.top_k(query, k);
        };
        let mut parts: Vec<(usize, f64)> = ivf
            .centroids
            .iter()
            .enumerate()
            .map(|(c, v)| (c, cosine(query, v)))
            .collect();
        parts.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut scored: Vec<(usize, f64)> = Vec::new();
        for &(c, _) in parts.iter().take(ivf.nprobe) {
            for &i in &ivf.members[c] {
                scored.push((i, cosine(query, &self.vectors[i])));
            }
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, s)| (self.names[i].clone(), s))
            .collect()
    }
}

pub(crate) fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn write_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    write_u64(out, xs.len() as u64);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor shared by the binary decoders in
/// this crate ([`VectorIndex::from_bytes`], `Hnsw::from_bytes`, and the
/// mapped-catalog opener).
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Current cursor position (bytes consumed so far).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Fails with a `what`-labelled error unless the payload is fully
    /// consumed — the strict "no trailing bytes" check every decoder
    /// finishes with.
    pub(crate) fn expect_end(&self, what: &str) -> Result<(), String> {
        if self.at_end() {
            Ok(())
        } else {
            Err(format!(
                "trailing bytes after {what} payload ({} of {} consumed)",
                self.pos,
                self.bytes.len()
            ))
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let slice = self.bytes.get(self.pos..end).unwrap_or(&[]);
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        let bytes = self.take(4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(buf))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let bytes = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    pub(crate) fn str(&mut self) -> Result<String, String> {
        let len = self.u64()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|e| e.to_string())
    }

    pub(crate) fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let len = self.u64()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let bytes = self.take(8)?;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(bytes);
            out.push(f64::from_le_bytes(buf));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dir: usize, dim: usize) -> Vec<f64> {
        let mut v = vec![0.0; dim];
        v[dir] = 1.0;
        v
    }

    #[test]
    fn exact_top_k_orders_by_similarity() {
        let mut idx = VectorIndex::new();
        idx.add("x", unit(0, 4));
        idx.add("y", unit(1, 4));
        idx.add("xy", vec![0.7, 0.7, 0.0, 0.0]);
        let hits = idx.top_k(&unit(0, 4), 2);
        assert_eq!(hits[0].0, "x");
        assert!((hits[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(hits[1].0, "xy");
    }

    #[test]
    fn top_k_caps_at_len() {
        let mut idx = VectorIndex::new();
        idx.add("only", unit(0, 2));
        assert_eq!(idx.top_k(&unit(0, 2), 10).len(), 1);
        assert!(VectorIndex::new().top_k(&unit(0, 2), 3).is_empty());
    }

    #[test]
    fn ivf_with_full_probe_matches_exact() {
        let mut idx = VectorIndex::new();
        for i in 0..40 {
            let mut v = vec![0.0; 8];
            v[i % 8] = 1.0;
            v[(i + 1) % 8] = 0.3;
            idx.add(format!("v{i}"), v);
        }
        let exact = idx.top_k(&unit(3, 8), 5);
        idx.train_ivf(4, 4, 7);
        let approx = idx.top_k_ivf(&unit(3, 8), 5);
        assert_eq!(
            exact.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            approx.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ivf_narrow_probe_still_finds_near_cluster() {
        let mut idx = VectorIndex::new();
        // Two tight clusters along axes 0 and 5.
        for i in 0..20 {
            let mut v = vec![0.0; 8];
            v[0] = 1.0;
            v[1] = 0.01 * i as f64;
            idx.add(format!("a{i}"), v);
            let mut w = vec![0.0; 8];
            w[5] = 1.0;
            w[6] = 0.01 * i as f64;
            idx.add(format!("b{i}"), w);
        }
        idx.train_ivf(2, 1, 3);
        let hits = idx.top_k_ivf(&unit(0, 8), 3);
        assert!(hits.iter().all(|(n, _)| n.starts_with('a')));
    }

    #[test]
    fn auto_tune_respects_threshold() {
        let mut small = VectorIndex::new();
        for i in 0..VectorIndex::IVF_AUTO_THRESHOLD - 1 {
            small.add(format!("v{i}"), unit(i % 8, 8));
        }
        assert_eq!(
            small.auto_tune(0),
            IndexTier::Exact,
            "below threshold stays exact"
        );
        assert!(!small.has_ivf());
        assert_eq!(small.tier(), IndexTier::Exact);
        small.add("last", unit(0, 8));
        assert_eq!(
            small.auto_tune(0),
            IndexTier::Ivf,
            "at threshold trains IVF"
        );
        assert!(small.has_ivf());
        assert_eq!(small.tier(), IndexTier::Ivf);
    }

    #[test]
    fn search_dispatches_to_built_hnsw() {
        let mut idx = VectorIndex::new();
        for i in 0..60 {
            let mut v = vec![0.05 * (i % 7) as f64; 8];
            v[i % 8] = 1.0;
            idx.add(format!("v{i}"), v);
        }
        assert_eq!(idx.tier(), IndexTier::Exact);
        idx.build_hnsw(HnswConfig::default());
        assert_eq!(idx.tier(), IndexTier::Hnsw);
        let q = unit(3, 8);
        let exact = idx.top_k(&q, 5);
        let approx = idx.search(&q, 5);
        assert_eq!(exact.len(), approx.len());
        for ((na, sa), (nb, sb)) in exact.iter().zip(&approx) {
            assert_eq!(na, nb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "scores must match bitwise");
        }
    }

    #[test]
    fn register_extends_ivf_without_retrain() {
        let mut idx = VectorIndex::new();
        for i in 0..40 {
            idx.add(format!("v{i}"), unit(i % 8, 8));
        }
        idx.train_ivf(4, 4, 7);
        idx.register("fresh", unit(2, 8));
        assert!(idx.has_ivf(), "register must not invalidate IVF");
        let hits = idx.top_k_ivf(&unit(2, 8), 41);
        assert!(hits.iter().any(|(n, _)| n == "fresh"));
    }

    #[test]
    fn register_into_hnsw_matches_scratch_build() {
        let n = 50;
        let vecs: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..6).map(|d| ((i * 6 + d) as f64 * 0.61).sin()).collect())
            .collect();
        let mut grown = VectorIndex::new();
        for (i, v) in vecs.iter().take(n - 5).enumerate() {
            grown.add(format!("v{i}"), v.clone());
        }
        grown.build_hnsw(HnswConfig::default());
        for (i, v) in vecs.iter().enumerate().skip(n - 5) {
            grown.register(format!("v{i}"), v.clone());
        }
        let mut scratch = VectorIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            scratch.add(format!("v{i}"), v.clone());
        }
        scratch.build_hnsw(HnswConfig::default());
        let (Some(a), Some(b)) = (grown.hnsw(), scratch.hnsw()) else {
            panic!("both indexes must hold a graph");
        };
        assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "incremental insertion must equal a from-scratch build bit-for-bit"
        );
    }

    #[test]
    fn equal_scores_break_ties_by_insertion_id() {
        let mut idx = VectorIndex::new();
        for i in 0..6 {
            idx.add(format!("dup{i}"), unit(0, 4));
        }
        idx.add("other", unit(1, 4));
        let names: Vec<String> = idx
            .top_k(&unit(0, 4), 4)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["dup0", "dup1", "dup2", "dup3"]);
        idx.train_ivf(2, 2, 0);
        let ivf_names: Vec<String> = idx
            .top_k_ivf(&unit(0, 4), 4)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(ivf_names, ["dup0", "dup1", "dup2", "dup3"]);
        // NaN scores must rank deterministically instead of panicking the
        // comparator (the pre-total_cmp sort unwrapped partial_cmp).
        let nan_hits = idx.top_k(&[f64::NAN; 4], 3);
        assert_eq!(nan_hits.len(), 3);
    }

    #[test]
    fn byte_roundtrip_preserves_index_bitwise() {
        let mut idx = VectorIndex::new();
        for i in 0..40 {
            let mut v = vec![0.125 * i as f64; 8];
            v[i % 8] = 1.0 + i as f64 * 0.001;
            idx.add(format!("v{i}"), v);
        }
        idx.train_ivf(4, 2, 9);
        let restored = VectorIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(restored.names, idx.names);
        for (a, b) in idx.vectors.iter().zip(&restored.vectors) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
        assert!(restored.has_ivf());
        let q = unit(3, 8);
        let before: Vec<_> = idx.top_k_ivf(&q, 5);
        let after: Vec<_> = restored.top_k_ivf(&q, 5);
        assert_eq!(before.len(), after.len());
        for ((na, sa), (nb, sb)) in before.iter().zip(&after) {
            assert_eq!(na, nb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }

    #[test]
    fn from_bytes_rejects_malformed_payloads() {
        let mut idx = VectorIndex::new();
        idx.add("a", unit(0, 4));
        let bytes = idx.to_bytes();
        // Dropping all three trailing tag bytes (IVF, HNSW, PQ) truncates
        // mid-structure: the mandatory IVF tag itself is gone.
        assert!(VectorIndex::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(VectorIndex::from_bytes(&trailing).is_err());
        assert!(VectorIndex::from_bytes(&[0xff; 4]).is_err());
        let empty = VectorIndex::new();
        let restored = VectorIndex::from_bytes(&empty.to_bytes()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn pre_hnsw_payloads_load_without_a_graph() {
        let mut idx = VectorIndex::new();
        idx.add("a", unit(0, 4));
        let bytes = idx.to_bytes();
        // A payload ending right after the IVF block is the pre-HNSW
        // snapshot format; it must load with no graph, not error.
        let legacy = VectorIndex::from_bytes(&bytes[..bytes.len() - 2]).unwrap();
        assert!(!legacy.has_hnsw());
        assert!(!legacy.is_quantized());
        assert_eq!(legacy.len(), 1);
        // A payload ending right after the HNSW block is the pre-PQ
        // format; it must load unquantized.
        let pre_pq = VectorIndex::from_bytes(&bytes[..bytes.len() - 1]).unwrap();
        assert!(!pre_pq.is_quantized());
        assert_eq!(pre_pq.len(), 1);
    }

    #[test]
    fn quantized_search_with_covering_rerank_matches_exact_bitwise() {
        let mut idx = VectorIndex::new();
        for i in 0..90 {
            let v: Vec<f64> = (0..8).map(|d| ((i * 8 + d) as f64 * 0.43).sin()).collect();
            idx.add(format!("v{i}"), v);
        }
        // rerank × k covers the whole catalog, so the exact re-rank sees
        // every id the exact scan sees — bit-identity is guaranteed, not
        // merely empirical.
        idx.quantize(PqConfig {
            m: 4,
            rerank: 30,
            seed: 1,
        })
        .unwrap();
        let q: Vec<f64> = (0..8).map(|d| (d as f64 * 0.9).cos()).collect();
        let exact = idx.top_k(&q, 5);
        let quantized = idx.search(&q, 5);
        assert_eq!(exact.len(), quantized.len());
        for ((na, sa), (nb, sb)) in exact.iter().zip(&quantized) {
            assert_eq!(na, nb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "scores must match bitwise");
        }
    }

    #[test]
    fn quantized_byte_roundtrip_is_bitwise() {
        let mut idx = VectorIndex::new();
        for i in 0..60 {
            let v: Vec<f64> = (0..6).map(|d| ((i * 6 + d) as f64 * 0.29).sin()).collect();
            idx.add(format!("v{i}"), v);
        }
        idx.build_hnsw(HnswConfig::default());
        idx.quantize(PqConfig::default()).unwrap();
        let restored = VectorIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert!(restored.is_quantized());
        assert_eq!(restored.to_bytes(), idx.to_bytes());
        let q = unit(2, 6);
        let a = idx.search(&q, 5);
        let b = restored.search(&q, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn byte_roundtrip_preserves_hnsw_graph() {
        let mut idx = VectorIndex::new();
        for i in 0..30 {
            let mut v = vec![0.01 * i as f64; 6];
            v[i % 6] = 1.0;
            idx.add(format!("v{i}"), v);
        }
        idx.build_hnsw(HnswConfig::default());
        let restored = VectorIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert!(restored.has_hnsw());
        assert_eq!(restored.to_bytes(), idx.to_bytes());
        let q = unit(2, 6);
        assert_eq!(idx.search(&q, 5), restored.search(&q, 5));
    }

    #[test]
    fn adding_invalidates_ivf() {
        let mut idx = VectorIndex::new();
        idx.add("a", unit(0, 4));
        idx.train_ivf(1, 1, 0);
        idx.add("b", unit(1, 4));
        // Falls back to exact search and still sees the new vector.
        let hits = idx.top_k_ivf(&unit(1, 4), 1);
        assert_eq!(hits[0].0, "b");
    }
}
