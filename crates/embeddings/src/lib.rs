//! Content-based dataset embeddings, similarity search, and t-SNE.
//!
//! Paper §3.2: KGpip "generate[s] fixed-size, dense columnar embeddings for
//! input datasets ... The content similarity is calculated using dense
//! vector representations (embeddings) of column values. Table embeddings
//! are computed by pooling over their individual column embeddings ... We
//! then use efficient libraries [FAISS] for similarity search of dense
//! vectors to retrieve the most similar dataset."
//!
//! This crate provides the whole chain:
//! * [`column_embedding`] — a fixed-size dense vector per column computed
//!   from actual values (distribution sketches for numerics, hashed
//!   character n-grams for strings) — the KGLac substitute,
//! * [`table_embedding`] — mean-pooled, L2-normalized table vectors,
//! * [`index::VectorIndex`] — tiered top-k cosine search (exact scan,
//!   IVF partitions, deterministic HNSW graph) — the FAISS substitute,
//! * [`hnsw`] — the deterministic HNSW graph layer itself,
//! * [`mapped`] — a read-only mapped catalog file (`KGVI`) so serve
//!   replicas warm-start without copying vectors into owned buffers,
//! * [`pq`] — product quantization: compressed `u8` code storage with
//!   ADC scoring under the tiers and an exact re-rank on top,
//! * [`tsne`] — exact t-SNE for the Figure-10 qualitative analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod hnsw;
pub mod index;
pub mod mapped;
pub mod pq;
pub mod table;
pub mod tsne;

pub use column::{column_embedding, column_embedding_parts, EMBED_DIM};
pub use hnsw::{Hnsw, HnswConfig, SliceSource, VectorSource};
pub use index::{IndexStats, IndexTier, VectorIndex};
pub use mapped::MappedIndex;
pub use pq::{Pq, PqConfig};
pub use table::{table_embedding, table_embedding_chunked, table_embeddings};
pub use tsne::tsne;
