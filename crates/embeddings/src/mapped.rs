//! Mapped read-only catalog files (`KGVI`) for serve-replica warm starts.
//!
//! A serve replica that loads a million-table catalog through
//! [`VectorIndex::from_bytes`] pays an owned allocation per vector and per
//! name before it can answer its first query. The `KGVI` file sidesteps
//! that: the whole catalog is read once into a single shared immutable
//! buffer and *decoded in place* — vectors and names are addressed through
//! in-file offset tables and never copied into owned buffers. (The
//! workspace forbids `unsafe`, so the buffer comes from one `fs::read`
//! rather than an OS `mmap(2)`; the layout is position-independent and
//! page-aligned-friendly so a real mapping could drop in without a format
//! change.)
//!
//! # Layout
//!
//! Little-endian, KGPS-style framing (`crates/core/src/snapshot.rs`):
//!
//! ```text
//! magic "KGVI" · u32 version
//! repeated sections: u32 tag · u64 payload_len · payload
//!   tag 1 header:  u64 count · u32 dim
//!   tag 2 vectors: count × dim f64, catalog order (zero-copy scanned)
//!   tag 3 names:   u64 count · (count+1) × u64 offsets · UTF-8 blob
//!   tag 4 hnsw:    Hnsw::to_bytes payload (optional section)
//!   tag 5 pq book: PqCodebook::to_bytes payload (optional section)
//!   tag 6 pq codes: count × m u8 code matrix (zero-copy scanned;
//!                   requires tag 5 and vice versa)
//! ```
//!
//! Unknown tags are skipped, mirroring the snapshot reader's
//! forward-compatibility rule. Offsets and UTF-8 are validated once at
//! [`MappedIndex::open`]; afterwards every accessor is panic-free and
//! allocation-free.
//!
//! # Bit-identity
//!
//! [`MappedIndex::top_k`] must answer **bit-identically** to the owned
//! [`VectorIndex::search`] over the same catalog. Cosine over mapped bytes
//! therefore replays the exact operation order of [`cosine`]: dot over the
//! zip-truncated prefix, then the two norms (the stored-vector norm over
//! *all* of its elements), the `1e-12` zero guards, then `dot / (na·nb)`.
//!
//! [`cosine`]: crate::column::cosine

use crate::hnsw::{Hnsw, VectorSource};
use crate::index::{write_u32, write_u64, IndexStats, IndexTier, Reader, VectorIndex};
use crate::pq::{AdcTable, PqCodebook};
use std::path::Path;
use std::sync::Arc;

/// File magic, the mapped-catalog sibling of the `KGPS` snapshot magic.
pub const MAGIC: &[u8; 4] = b"KGVI";

/// Mapped-catalog format version.
pub const FORMAT_VERSION: u32 = 1;

const TAG_HEADER: u32 = 1;
const TAG_VECTORS: u32 = 2;
const TAG_NAMES: u32 = 3;
const TAG_HNSW: u32 = 4;
const TAG_PQ_BOOK: u32 = 5;
const TAG_PQ_CODES: u32 = 6;

/// A read-only vector catalog decoded in place over one shared buffer.
/// Cloning is cheap (an `Arc` bump), so one loaded file can back many
/// concurrent readers.
#[derive(Debug, Clone)]
pub struct MappedIndex {
    buf: Arc<[u8]>,
    count: usize,
    dim: usize,
    /// Byte offset of the vectors payload (`count * dim * 8` bytes).
    vec_start: usize,
    /// Byte offset of the `(count+1)`-entry name offset table.
    name_off_start: usize,
    /// Byte offset and length of the UTF-8 name blob.
    name_blob_start: usize,
    name_blob_len: usize,
    /// HNSW adjacency, parsed owned — it is small next to the vectors,
    /// which stay zero-copy.
    hnsw: Option<Hnsw>,
    /// PQ codebooks, parsed owned (a few KB); the `count × m` code
    /// matrix stays zero-copy in the buffer at `codes_start`.
    pq_book: Option<PqCodebook>,
    /// Byte offset of the PQ code matrix payload (`count × m` bytes);
    /// meaningful only when `pq_book` is present.
    codes_start: usize,
}

impl MappedIndex {
    /// Opens a `KGVI` file read-only: one read into a shared buffer, one
    /// validation pass, no per-vector copies.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedIndex, String> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
        MappedIndex::from_vec(bytes)
    }

    /// Decodes a `KGVI` payload already in memory, taking ownership of the
    /// buffer (no copy).
    pub fn from_vec(bytes: Vec<u8>) -> Result<MappedIndex, String> {
        let mut r = Reader::new(&bytes);
        if r.take(4)? != MAGIC {
            return Err("not a KGVI mapped catalog (bad magic)".into());
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported KGVI version {version} (reader supports {FORMAT_VERSION})"
            ));
        }
        let mut header: Option<(usize, usize)> = None;
        let mut vec_range: Option<(usize, usize)> = None;
        let mut name_range: Option<(usize, usize)> = None;
        let mut hnsw: Option<Hnsw> = None;
        let mut pq_book: Option<PqCodebook> = None;
        let mut codes_range: Option<(usize, usize)> = None;
        while !r.at_end() {
            let tag = r.u32()?;
            let len = r.u64()? as usize;
            let start = r.pos();
            let payload = r.take(len)?;
            match tag {
                TAG_HEADER => {
                    let mut h = Reader::new(payload);
                    let count = h.u64()? as usize;
                    let dim = h.u32()? as usize;
                    h.expect_end("KGVI header")?;
                    header = Some((count, dim));
                }
                TAG_VECTORS => vec_range = Some((start, len)),
                TAG_NAMES => name_range = Some((start, len)),
                TAG_HNSW => hnsw = Some(Hnsw::from_bytes(payload)?),
                TAG_PQ_BOOK => pq_book = Some(PqCodebook::from_bytes(payload)?),
                TAG_PQ_CODES => codes_range = Some((start, len)),
                _ => {} // Forward compatibility: skip unknown sections.
            }
        }
        let (count, dim) = header.ok_or("KGVI missing header section")?;
        let (vec_start, vec_len) = vec_range.ok_or("KGVI missing vectors section")?;
        let (name_start, name_len) = name_range.ok_or("KGVI missing names section")?;
        let expected = count
            .checked_mul(dim)
            .and_then(|n| n.checked_mul(8))
            .ok_or("KGVI vector section size overflows")?;
        if vec_len != expected {
            return Err(format!(
                "KGVI vectors section holds {vec_len} bytes, header implies {expected}"
            ));
        }
        // Names: u64 count · (count+1) offsets · blob. Validate offsets
        // are monotone, end-anchored, and each slice is UTF-8 — after
        // this pass `name()` can never fail on a well-formed handle.
        let mut n = Reader::new(bytes.get(name_start..name_start + name_len).unwrap_or(&[]));
        let name_count = n.u64()? as usize;
        if name_count != count {
            return Err(format!(
                "KGVI names section lists {name_count} names for {count} vectors"
            ));
        }
        let name_off_start = name_start + n.pos();
        let offsets = count
            .checked_add(1)
            .and_then(|c| c.checked_mul(8))
            .ok_or("KGVI name offset table size overflows")?;
        let table = n.take(offsets)?;
        let name_blob_start = name_start + n.pos();
        let blob = n.take(name_len.saturating_sub(n.pos()))?;
        n.expect_end("KGVI names")?;
        let mut prev = 0u64;
        for (i, chunk) in table.chunks_exact(8).enumerate() {
            let mut buf8 = [0u8; 8];
            buf8.copy_from_slice(chunk);
            let off = u64::from_le_bytes(buf8);
            if off < prev || off as usize > blob.len() {
                return Err(format!("KGVI name offset {i} out of order or out of range"));
            }
            if std::str::from_utf8(blob.get(prev as usize..off as usize).unwrap_or(&[])).is_err() {
                return Err(format!("KGVI name {i} is not valid UTF-8"));
            }
            prev = off;
        }
        if prev as usize != blob.len() {
            return Err("KGVI name offsets do not cover the blob".into());
        }
        if let Some(graph) = &hnsw {
            if graph.len() != count {
                return Err(format!(
                    "KGVI HNSW graph indexes {} nodes but catalog holds {count}",
                    graph.len()
                ));
            }
        }
        // PQ sections come in pairs: codebooks (owned, small) + the
        // zero-copy code matrix. Validate geometry and code range once so
        // every later scan is panic-free.
        let codes_start = match (&pq_book, codes_range) {
            (None, None) => 0,
            (Some(book), Some((start, len))) => {
                if book.dim() != dim {
                    return Err(format!(
                        "KGVI PQ codebooks cover dim {} but catalog is dim {dim}",
                        book.dim()
                    ));
                }
                let expected = count
                    .checked_mul(book.m())
                    .ok_or("KGVI PQ code section size overflows")?;
                if len != expected {
                    return Err(format!(
                        "KGVI PQ code section holds {len} bytes, geometry implies {expected}"
                    ));
                }
                let codes = bytes.get(start..start + len).unwrap_or(&[]);
                if codes.iter().any(|&c| c as usize >= book.ksub()) {
                    return Err("KGVI PQ code out of codebook range".into());
                }
                start
            }
            _ => {
                return Err(
                    "KGVI PQ sections must appear in pairs (codebooks + code matrix)".into(),
                )
            }
        };
        let name_blob_len = blob.len();
        Ok(MappedIndex {
            buf: bytes.into(),
            count,
            dim,
            vec_start,
            name_off_start,
            name_blob_start,
            name_blob_len,
            hnsw,
            pq_book,
            codes_start,
        })
    }

    /// Number of catalog entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when the file carried an HNSW graph section.
    pub fn has_hnsw(&self) -> bool {
        self.hnsw.is_some()
    }

    /// The HNSW graph, when the file carried one.
    pub fn hnsw(&self) -> Option<&Hnsw> {
        self.hnsw.as_ref()
    }

    /// True when the file carried a product-quantized store.
    pub fn is_quantized(&self) -> bool {
        self.pq_book.is_some()
    }

    /// The PQ codebooks, when the file carried them.
    pub fn pq_book(&self) -> Option<&PqCodebook> {
        self.pq_book.as_ref()
    }

    /// The code row of the i-th vector, borrowed straight from the
    /// mapped buffer (no decode, no copy).
    fn code_row(&self, i: usize) -> Option<&[u8]> {
        let book = self.pq_book.as_ref()?;
        if i >= self.count {
            return None;
        }
        let start = self.codes_start + i * book.m();
        self.buf.get(start..start + book.m())
    }

    /// Resident byte accounting per storage component, mirroring
    /// [`VectorIndex::stats`]. The tier is HNSW when the file carries a
    /// graph, exact otherwise (`KGVI` files do not serialize IVF).
    pub fn stats(&self) -> IndexStats {
        let tier = if self.hnsw.is_some() {
            IndexTier::Hnsw
        } else {
            IndexTier::Exact
        };
        let pq_bytes = self
            .pq_book
            .as_ref()
            .map_or(0, |book| self.count * book.m() + book.codebook_bytes());
        IndexStats {
            tier,
            quantized: self.pq_book.is_some(),
            count: self.count,
            dim: self.dim,
            vector_bytes: self.count * self.dim * 8,
            ivf_bytes: 0,
            hnsw_bytes: self.hnsw.as_ref().map_or(0, |h| h.to_bytes().len()),
            pq_bytes,
        }
    }

    /// Raw little-endian bytes of the i-th vector (no decode, no copy).
    fn vector_bytes(&self, i: usize) -> Option<&[u8]> {
        if i >= self.count {
            return None;
        }
        let start = self.vec_start + i * self.dim * 8;
        self.buf.get(start..start + self.dim * 8)
    }

    /// The i-th vector decoded into an owned buffer — for callers that
    /// need `&[f64]` semantics; the query path never calls this.
    pub fn vector(&self, i: usize) -> Option<Vec<f64>> {
        let bytes = self.vector_bytes(i)?;
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(c);
                    f64::from_le_bytes(buf)
                })
                .collect(),
        )
    }

    /// Name of the i-th entry, borrowed straight from the mapped buffer.
    pub fn name(&self, i: usize) -> Option<&str> {
        if i >= self.count {
            return None;
        }
        let lo = self.offset_entry(i)?;
        let hi = self.offset_entry(i + 1)?;
        if lo > hi || hi > self.name_blob_len {
            return None;
        }
        let blob = self
            .buf
            .get(self.name_blob_start..self.name_blob_start + self.name_blob_len)?;
        std::str::from_utf8(blob.get(lo..hi)?).ok()
    }

    fn offset_entry(&self, i: usize) -> Option<usize> {
        let start = self.name_off_start + i * 8;
        let chunk = self.buf.get(start..start + 8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        Some(u64::from_le_bytes(buf) as usize)
    }

    /// Top-k through the mapped catalog: HNSW when the file carries a
    /// graph, exact scan otherwise. Answers bit-identically to
    /// [`VectorIndex::search`] over the same catalog and tier —
    /// including quantized catalogs, where the beam reads the zero-copy
    /// code matrix and the answer is re-ranked with exact cosine over
    /// the mapped full-precision vectors.
    pub fn top_k(&self, query: &[f64], k: usize) -> Vec<(String, f64)> {
        if let Some(book) = &self.pq_book {
            return self.top_k_quantized(book, query, k);
        }
        match &self.hnsw {
            Some(hnsw) => hnsw
                .search(query, k, self)
                .into_iter()
                .filter_map(|(i, s)| self.name(i).map(|n| (n.to_string(), s)))
                .collect(),
            None => self.top_k_exact(query, k),
        }
    }

    /// Quantized top-k, mirroring the owned `search_quantized` path: the
    /// beam (or full scan) scores mapped code rows through one per-query
    /// ADC table, then the top `rerank × k` candidates are re-scored
    /// with [`cosine_bytes`] (bit-identical to owned `cosine`) and
    /// ordered `(score desc, id asc)`.
    fn top_k_quantized(&self, book: &PqCodebook, query: &[f64], k: usize) -> Vec<(String, f64)> {
        if k == 0 || self.count == 0 {
            return Vec::new();
        }
        let table = book.adc_table(query);
        let fetch = k.saturating_mul(book.rerank().max(1));
        let candidates: Vec<usize> = match &self.hnsw {
            Some(hnsw) => {
                let source = MappedAdcSource {
                    index: self,
                    book,
                    table: &table,
                };
                hnsw.search(query, fetch, &source)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect()
            }
            None => {
                let mut scored: Vec<(usize, f64)> = (0..self.count)
                    .map(|i| (i, self.adc_score(book, &table, i)))
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scored.into_iter().take(fetch).map(|(i, _)| i).collect()
            }
        };
        let mut reranked: Vec<(usize, f64)> = candidates
            .into_iter()
            .map(|i| (i, self.similarity(i, query)))
            .collect();
        reranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        reranked
            .into_iter()
            .take(k)
            .filter_map(|(i, s)| self.name(i).map(|n| (n.to_string(), s)))
            .collect()
    }

    /// ADC score of the i-th mapped code row (0.0 out of range).
    fn adc_score(&self, book: &PqCodebook, table: &AdcTable, i: usize) -> f64 {
        self.code_row(i)
            .map_or(0.0, |row| book.score_codes(table, row))
    }

    /// Exact top-k over the mapped vectors, mirroring
    /// [`VectorIndex::top_k`]'s scoring and `(score, id)` ordering.
    pub fn top_k_exact(&self, query: &[f64], k: usize) -> Vec<(String, f64)> {
        let mut scored: Vec<(usize, f64)> = (0..self.count)
            .map(|i| (i, self.similarity(i, query)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .filter_map(|(i, s)| self.name(i).map(|n| (n.to_string(), s)))
            .collect()
    }
}

/// A [`VectorSource`] over a mapped quantized catalog: `similarity`
/// scores zero-copy code rows through the prebuilt ADC tables (the query
/// argument is already folded in). Search-only — `pair_similarity` is
/// never called by `Hnsw::search` and answers 0.0.
struct MappedAdcSource<'a> {
    index: &'a MappedIndex,
    book: &'a PqCodebook,
    table: &'a AdcTable,
}

impl VectorSource for MappedAdcSource<'_> {
    fn count(&self) -> usize {
        self.index.count
    }

    fn similarity(&self, i: usize, _query: &[f64]) -> f64 {
        self.index.adc_score(self.book, self.table, i)
    }

    fn pair_similarity(&self, _i: usize, _j: usize) -> f64 {
        0.0
    }
}

impl VectorSource for MappedIndex {
    fn count(&self) -> usize {
        self.count
    }

    fn similarity(&self, i: usize, query: &[f64]) -> f64 {
        self.vector_bytes(i)
            .map_or(0.0, |bytes| cosine_bytes(query, bytes))
    }

    fn pair_similarity(&self, i: usize, j: usize) -> f64 {
        // Argument order mirrors `SliceSource`: cosine(vec_j, vec_i).
        match (self.vector_bytes(i), self.vector_bytes(j)) {
            (Some(a), Some(b)) => cosine_bytes_pair(b, a),
            _ => 0.0,
        }
    }
}

/// Cosine between an owned query and a little-endian vector payload,
/// replaying [`cosine`]'s operation order exactly: dot over the zipped
/// prefix, query norm over the full query, stored norm over **all** stored
/// elements (not just the zipped prefix), the `1e-12` guards, then
/// `dot / (na * nb)` — so mapped and owned scores agree to the bit.
///
/// [`cosine`]: crate::column::cosine
fn cosine_bytes(query: &[f64], bytes: &[u8]) -> f64 {
    let dot: f64 = query
        .iter()
        .zip(bytes.chunks_exact(8))
        .map(|(x, c)| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(c);
            x * f64::from_le_bytes(buf)
        })
        .sum();
    let na: f64 = query.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = bytes
        .chunks_exact(8)
        .map(|c| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(c);
            let y = f64::from_le_bytes(buf);
            y * y
        })
        .sum::<f64>()
        .sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// [`cosine_bytes`] where both sides are mapped payloads (`a` plays the
/// query role).
fn cosine_bytes_pair(a: &[u8], b: &[u8]) -> f64 {
    let decode = |c: &[u8]| {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(c);
        f64::from_le_bytes(buf)
    };
    let dot: f64 = a
        .chunks_exact(8)
        .zip(b.chunks_exact(8))
        .map(|(x, y)| decode(x) * decode(y))
        .sum();
    let na: f64 = a
        .chunks_exact(8)
        .map(|c| {
            let x = decode(c);
            x * x
        })
        .sum::<f64>()
        .sqrt();
    let nb: f64 = b
        .chunks_exact(8)
        .map(|c| {
            let y = decode(c);
            y * y
        })
        .sum::<f64>()
        .sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    write_u32(out, tag);
    write_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

impl VectorIndex {
    /// Serializes the catalog (plus any built HNSW graph and any
    /// product-quantized store) to the `KGVI` mapped format.
    /// Deterministic: the same index always produces the same bytes.
    /// Fails when vectors have mixed dimensionality, which the flat
    /// layout cannot represent. PQ rides as two tagged sections that
    /// pre-PQ readers skip.
    pub fn to_mapped_bytes(&self) -> Result<Vec<u8>, String> {
        let dim = self.vectors.first().map_or(0, Vec::len);
        if self.vectors.iter().any(|v| v.len() != dim) {
            return Err("catalog vectors have mixed dimensions; cannot map".into());
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, FORMAT_VERSION);
        let mut header = Vec::new();
        write_u64(&mut header, self.vectors.len() as u64);
        write_u32(&mut header, dim as u32);
        section(&mut out, TAG_HEADER, &header);
        let mut vecs = Vec::with_capacity(self.vectors.len() * dim * 8);
        for v in &self.vectors {
            for x in v {
                vecs.extend_from_slice(&x.to_le_bytes());
            }
        }
        section(&mut out, TAG_VECTORS, &vecs);
        let mut names = Vec::new();
        write_u64(&mut names, self.names.len() as u64);
        let mut off = 0u64;
        for n in &self.names {
            write_u64(&mut names, off);
            off += n.len() as u64;
        }
        write_u64(&mut names, off);
        for n in &self.names {
            names.extend_from_slice(n.as_bytes());
        }
        section(&mut out, TAG_NAMES, &names);
        if let Some(hnsw) = self.hnsw() {
            section(&mut out, TAG_HNSW, &hnsw.to_bytes());
        }
        if let Some(pq) = self.pq() {
            section(&mut out, TAG_PQ_BOOK, &pq.book().to_bytes());
            section(&mut out, TAG_PQ_CODES, pq.codes());
        }
        Ok(out)
    }

    /// Writes the `KGVI` mapped catalog to `path` for serve replicas to
    /// [`MappedIndex::open`].
    pub fn write_mapped(&self, path: impl AsRef<Path>) -> Result<(), String> {
        std::fs::write(path.as_ref(), self.to_mapped_bytes()?)
            .map_err(|e| format!("write {}: {e}", path.as_ref().display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::HnswConfig;

    fn catalog(n: usize, dim: usize) -> VectorIndex {
        let mut idx = VectorIndex::new();
        for i in 0..n {
            let v: Vec<f64> = (0..dim)
                .map(|d| ((i * dim + d) as f64 * 0.41).sin())
                .collect();
            idx.add(format!("table-{i}"), v);
        }
        idx
    }

    #[test]
    fn mapped_exact_matches_owned_bitwise() {
        let idx = catalog(80, 7);
        let mapped = MappedIndex::from_vec(idx.to_mapped_bytes().unwrap()).unwrap();
        assert_eq!(mapped.len(), 80);
        assert_eq!(mapped.dim(), 7);
        for q in 0..10 {
            let query = idx.vector(q).unwrap().to_vec();
            let owned = idx.top_k(&query, 5);
            let via_map = mapped.top_k(&query, 5);
            assert_eq!(owned.len(), via_map.len());
            for ((na, sa), (nb, sb)) in owned.iter().zip(&via_map) {
                assert_eq!(na, nb);
                assert_eq!(sa.to_bits(), sb.to_bits(), "query {q} diverged");
            }
        }
    }

    #[test]
    fn mapped_hnsw_matches_owned_bitwise() {
        let mut idx = catalog(100, 6);
        idx.build_hnsw(HnswConfig::default());
        let mapped = MappedIndex::from_vec(idx.to_mapped_bytes().unwrap()).unwrap();
        assert!(mapped.has_hnsw());
        for q in 0..10 {
            let query = idx.vector(q).unwrap().to_vec();
            let owned = idx.search(&query, 5);
            let via_map = mapped.top_k(&query, 5);
            assert_eq!(owned.len(), via_map.len());
            for ((na, sa), (nb, sb)) in owned.iter().zip(&via_map) {
                assert_eq!(na, nb);
                assert_eq!(sa.to_bits(), sb.to_bits(), "query {q} diverged");
            }
        }
    }

    #[test]
    fn mapped_bytes_are_deterministic() {
        let mut idx = catalog(30, 4);
        idx.build_hnsw(HnswConfig::default());
        assert_eq!(
            idx.to_mapped_bytes().unwrap(),
            idx.to_mapped_bytes().unwrap()
        );
    }

    #[test]
    fn names_and_vectors_decode_in_place() {
        let idx = catalog(12, 3);
        let mapped = MappedIndex::from_vec(idx.to_mapped_bytes().unwrap()).unwrap();
        for i in 0..12 {
            assert_eq!(mapped.name(i), Some(format!("table-{i}").as_str()));
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&mapped.vector(i).unwrap()),
                bits(idx.vector(i).unwrap())
            );
        }
        assert_eq!(mapped.name(12), None);
        assert_eq!(mapped.vector(12), None);
    }

    #[test]
    fn open_rejects_malformed_files() {
        let idx = catalog(5, 3);
        let bytes = idx.to_mapped_bytes().unwrap();
        assert!(MappedIndex::from_vec(bytes[..bytes.len() - 3].to_vec()).is_err());
        assert!(MappedIndex::from_vec(b"NOPE".to_vec()).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(MappedIndex::from_vec(bad_version).is_err());
        let mut ragged = VectorIndex::new();
        ragged.add("a", vec![1.0, 0.0]);
        ragged.add("b", vec![1.0]);
        assert!(ragged.to_mapped_bytes().is_err());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let idx = catalog(4, 2);
        let mut bytes = idx.to_mapped_bytes().unwrap();
        // Append an unknown tag-99 section; the reader must ignore it.
        section(&mut bytes, 99, b"future data");
        let mapped = MappedIndex::from_vec(bytes).unwrap();
        assert_eq!(mapped.len(), 4);
    }

    #[test]
    fn mapped_quantized_matches_owned_bitwise() {
        use crate::pq::PqConfig;
        for build_graph in [false, true] {
            let mut idx = catalog(120, 8);
            if build_graph {
                idx.build_hnsw(HnswConfig::default());
            }
            idx.quantize(PqConfig {
                m: 4,
                rerank: 4,
                seed: 0,
            })
            .unwrap();
            let mapped = MappedIndex::from_vec(idx.to_mapped_bytes().unwrap()).unwrap();
            assert!(mapped.is_quantized());
            for q in 0..12 {
                let query = idx.vector(q).unwrap().to_vec();
                let owned = idx.search(&query, 5);
                let via_map = mapped.top_k(&query, 5);
                assert_eq!(owned.len(), via_map.len());
                for ((na, sa), (nb, sb)) in owned.iter().zip(&via_map) {
                    assert_eq!(na, nb);
                    assert_eq!(
                        sa.to_bits(),
                        sb.to_bits(),
                        "query {q} diverged (graph={build_graph})"
                    );
                }
            }
            assert_eq!(mapped.stats().pq_bytes, idx.stats().pq_bytes);
        }
    }

    #[test]
    fn pq_sections_must_pair() {
        use crate::pq::PqConfig;
        let mut idx = catalog(20, 6);
        idx.quantize(PqConfig {
            m: 3,
            rerank: 2,
            seed: 0,
        })
        .unwrap();
        let full = idx.to_mapped_bytes().unwrap();
        // Rebuild the file keeping every section except tag-6 codes: a
        // book without its matrix must be rejected, not half-loaded.
        let mut r = Reader::new(&full);
        r.take(8).unwrap(); // magic + version
        let mut stripped = full[..8].to_vec();
        while !r.at_end() {
            let tag = r.u32().unwrap();
            let len = r.u64().unwrap() as usize;
            let payload = r.take(len).unwrap();
            if tag != TAG_PQ_CODES {
                section(&mut stripped, tag, payload);
            }
        }
        assert!(MappedIndex::from_vec(stripped).is_err());
        // Dropping both PQ sections is the pre-PQ file: loads, answers
        // full-precision.
        let mut r = Reader::new(&full);
        r.take(8).unwrap();
        let mut pre_pq = full[..8].to_vec();
        while !r.at_end() {
            let tag = r.u32().unwrap();
            let len = r.u64().unwrap() as usize;
            let payload = r.take(len).unwrap();
            if tag != TAG_PQ_CODES && tag != TAG_PQ_BOOK {
                section(&mut pre_pq, tag, payload);
            }
        }
        let mapped = MappedIndex::from_vec(pre_pq).unwrap();
        assert!(!mapped.is_quantized());
        assert_eq!(mapped.len(), 20);
    }

    #[test]
    fn file_roundtrip_via_disk() {
        let dir = std::env::temp_dir().join("kgpip-mapped-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.kgvi");
        let mut idx = catalog(20, 4);
        idx.build_hnsw(HnswConfig::default());
        idx.write_mapped(&path).unwrap();
        let mapped = MappedIndex::open(&path).unwrap();
        let query = idx.vector(3).unwrap().to_vec();
        assert_eq!(idx.search(&query, 3), mapped.top_k(&query, 3));
        std::fs::remove_file(&path).ok();
    }
}
