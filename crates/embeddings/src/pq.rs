//! Product quantization — compressed vector storage with ADC scoring.
//!
//! The paper's serving story is a nearest-dataset lookup over a large
//! embedding catalog; at KGLiDS scale (millions of tables) the full-`f64`
//! vector block becomes the memory and cache-bandwidth ceiling of a serve
//! replica. Product quantization (Jégou et al., the FAISS `IndexIVFPQ`
//! family) shrinks each `dim`-dimensional vector to `m` bytes: the vector
//! is split into `m` contiguous subspaces, each subspace gets a 256-entry
//! codebook trained with the house seeded k-means, and a vector is stored
//! as the `m` codebook ids of its nearest sub-centroids.
//!
//! # Scoring (ADC)
//!
//! Queries stay full-precision. A query builds one asymmetric-distance
//! table per subspace — the dot product and squared norm of every
//! sub-centroid against the query slice — and then scoring a stored vector
//! is `m` table lookups instead of `dim` multiplies: the cosine of the
//! query with the *reconstructed* (decoded) vector, assembled as
//! `Σ dot[s][code] / (|q| · sqrt(Σ norm2[s][code]))` with the same
//! `1e-12` zero guards as [`cosine`].
//!
//! # The rerank invariant
//!
//! PQ is a storage/scoring layer under the existing tiers, not a new
//! tier. Compression changes what a query *costs*, never what `top_k`
//! *returns*: the beam (HNSW descent or IVF list scan) reads codes, the
//! top `rerank × k` candidates are re-scored with exact [`cosine`] over
//! the retained full-precision vectors, and the final `(score desc, id
//! asc)` order is computed from those exact scores. Whenever the rerank
//! window covers the candidate pool, the answer is bit-identical to the
//! unquantized index.
//!
//! # Determinism
//!
//! Codebook training is bit-reproducible: seeded shuffle init, a fixed
//! iteration cap with early exit on a fixed-point, squared-Euclidean
//! assignment under `total_cmp` with lowest-centroid-id tie-breaks, and
//! (when the catalog exceeds [`TRAIN_SAMPLE`]) a deterministic bottom-k
//! priority sample keyed by SplitMix64 over `(seed, id)`. The parallel
//! assignment path reduces in input order, so any worker count produces
//! the same codebooks bit-for-bit.
//!
//! [`cosine`]: crate::column::cosine

use crate::hnsw::VectorSource;
use crate::index::{write_u32, write_u64, Reader};
use kgpip_tabular::parallel::effective_parallelism;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Largest per-subspace codebook — one `u8` code per subspace.
pub const KSUB_MAX: usize = 256;

/// Fixed k-means iteration cap (early exit on a fixed-point keeps the
/// count deterministic — the loop never depends on wall-clock).
const KMEANS_ITERS: usize = 15;

/// Catalogs larger than this train codebooks on a deterministic bottom-k
/// priority sample of this many vectors; every vector is still encoded.
pub const TRAIN_SAMPLE: usize = 16_384;

/// Product-quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PqConfig {
    /// Number of subspaces — the compressed size in bytes per vector.
    /// Clamped to `[1, dim]` at fit time.
    pub m: usize,
    /// Re-rank window multiplier: the top `rerank × k` beam candidates
    /// are re-scored with exact cosine. Clamped to at least 1.
    pub rerank: usize,
    /// Seed for codebook k-means init and the training sample.
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        PqConfig {
            m: 8,
            rerank: 4,
            seed: 0,
        }
    }
}

/// Trained per-subspace codebooks (no codes) — the part of the PQ state
/// a mapped (`KGVI`) reader parses owned while the code matrix stays
/// zero-copy in the file buffer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PqCodebook {
    m: usize,
    dim: usize,
    ksub: usize,
    rerank: usize,
    seed: u64,
    /// Flat codebooks, subspace-major: the block for subspace `s` holds
    /// `ksub × sub_len(s)` values, centroid-major within the block.
    /// Total length is always `ksub × dim`.
    codebooks: Vec<f64>,
}

/// Per-query ADC lookup tables: for every `(subspace, centroid)` pair,
/// the dot product with the query slice and the centroid's squared norm.
/// Built once per query by [`PqCodebook::adc_table`]; scoring a stored
/// vector is then `m` additions per table.
#[derive(Debug, Clone)]
pub struct AdcTable {
    qnorm: f64,
    dot: Vec<f64>,
    norm2: Vec<f64>,
}

/// `(start, len)` of each subspace: `dim/m` per subspace, with the first
/// `dim % m` subspaces one wider.
pub(crate) fn sub_bounds(dim: usize, m: usize) -> Vec<(usize, usize)> {
    let m = m.clamp(1, dim.max(1));
    let base = dim / m;
    let rem = dim % m;
    let mut out = Vec::with_capacity(m);
    let mut start = 0usize;
    for s in 0..m {
        let len = base + usize::from(s < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// SplitMix64 — the same mixer the HNSW level hash uses; keyed sampling
/// must not consume the k-means RNG stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Squared Euclidean distance over the zipped prefix.
fn l2_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Index of the nearest centroid (squared-Euclidean, `total_cmp`, ties to
/// the lowest centroid id) in a flat centroid block of `len`-wide rows.
fn nearest_centroid(block: &[f64], len: usize, row: &[f64]) -> usize {
    if len == 0 {
        return 0;
    }
    block
        .chunks_exact(len)
        .map(|cent| l2_sq(cent, row))
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        .map_or(0, |(c, _)| c)
}

/// Runs `f` over `0..n` on a rayon pool clamped by
/// [`effective_parallelism`], collecting results in input order — the
/// reduction is index-ordered, so any worker count (including the
/// sequential fallback) produces bit-identical output. Shared by the IVF
/// k-means assignment step and PQ codebook training/encoding.
pub(crate) fn par_map_indices<T, F>(n: usize, requested: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_parallelism(requested);
    if workers <= 1 || n < 2 {
        return (0..n).map(&f).collect();
    }
    let ids: Vec<usize> = (0..n).collect();
    match rayon::ThreadPoolBuilder::new().num_threads(workers).build() {
        Ok(pool) => pool.install(|| ids.par_iter().map(|&i| f(i)).collect()),
        Err(_) => (0..n).map(f).collect(),
    }
}

impl PqCodebook {
    /// Number of subspaces (compressed bytes per vector).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Full-precision dimensionality the codebooks were trained for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Per-subspace codebook size (≤ 256).
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Re-rank window multiplier.
    pub fn rerank(&self) -> usize {
        self.rerank
    }

    /// Training seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resident bytes of the codebooks themselves.
    pub fn codebook_bytes(&self) -> usize {
        self.codebooks.len() * 8
    }

    /// Builds the per-query ADC tables: for each subspace the dot of the
    /// query slice with every centroid, and every centroid's squared
    /// norm. The query may be any length — slices zip-truncate exactly
    /// like [`cosine`](crate::column::cosine), and the query norm covers
    /// the full query.
    pub fn adc_table(&self, query: &[f64]) -> AdcTable {
        let qnorm = query.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mut dot = Vec::with_capacity(self.m * self.ksub);
        let mut norm2 = Vec::with_capacity(self.m * self.ksub);
        let mut offset = 0usize;
        for (start, len) in sub_bounds(self.dim, self.m) {
            let block = self
                .codebooks
                .get(offset..offset + self.ksub * len)
                .unwrap_or(&[]);
            offset += self.ksub * len;
            let q_end = (start + len).min(query.len());
            let q_sub = query.get(start..q_end.max(start)).unwrap_or(&[]);
            for cent in block.chunks_exact(len) {
                dot.push(q_sub.iter().zip(cent).map(|(x, y)| x * y).sum());
                norm2.push(cent.iter().map(|y| y * y).sum());
            }
        }
        AdcTable { qnorm, dot, norm2 }
    }

    /// ADC score of one code row against a query's tables: cosine of the
    /// query with the reconstructed vector, via `m` lookups per table.
    pub fn score_codes(&self, table: &AdcTable, row: &[u8]) -> f64 {
        let mut dot = 0.0f64;
        let mut n2 = 0.0f64;
        for (s, &c) in row.iter().enumerate() {
            let at = s * self.ksub + c as usize;
            dot += table.dot.get(at).copied().unwrap_or(0.0);
            n2 += table.norm2.get(at).copied().unwrap_or(0.0);
        }
        let nb = n2.sqrt();
        if table.qnorm < 1e-12 || nb < 1e-12 {
            0.0
        } else {
            dot / (table.qnorm * nb)
        }
    }

    /// Encodes one vector against the frozen codebooks: the nearest
    /// sub-centroid id per subspace. Never retrains. Vectors of any
    /// length encode deterministically (slices zip-truncate).
    pub fn encode(&self, v: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.m);
        let mut offset = 0usize;
        for (start, len) in sub_bounds(self.dim, self.m) {
            let block = self
                .codebooks
                .get(offset..offset + self.ksub * len)
                .unwrap_or(&[]);
            offset += self.ksub * len;
            let v_end = (start + len).min(v.len());
            let sub = v.get(start..v_end.max(start)).unwrap_or(&[]);
            out.push(nearest_centroid(block, len, sub) as u8);
        }
        out
    }

    /// Decodes one code row back to its reconstructed vector (the
    /// concatenated sub-centroids) — the quantized approximation the ADC
    /// score is the cosine against.
    pub fn reconstruct(&self, row: &[u8]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim);
        let mut offset = 0usize;
        for ((_start, len), c) in sub_bounds(self.dim, self.m).into_iter().zip(row) {
            let base = offset + *c as usize * len;
            let cent = self.codebooks.get(base..base + len).unwrap_or(&[]);
            out.extend_from_slice(cent);
            out.extend(std::iter::repeat_n(0.0, len - cent.len().min(len)));
            offset += self.ksub * len;
        }
        out
    }

    /// Serializes the codebooks (no codes) — the `KGVI` tag-5 payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_u32(&mut out, self.m as u32);
        write_u32(&mut out, self.dim as u32);
        write_u32(&mut out, self.ksub as u32);
        write_u32(&mut out, self.rerank as u32);
        write_u64(&mut out, self.seed);
        write_u64(&mut out, self.codebooks.len() as u64);
        for x in &self.codebooks {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Restores codebooks from [`PqCodebook::to_bytes`] output,
    /// validating the geometry so every later accessor is panic-free.
    pub fn from_bytes(bytes: &[u8]) -> Result<PqCodebook, String> {
        let mut r = Reader::new(bytes);
        let book = PqCodebook::read(&mut r)?;
        r.expect_end("PQ codebook")?;
        Ok(book)
    }

    /// Reads a codebook payload at the cursor (shared by the standalone
    /// and embedded decoders).
    pub(crate) fn read(r: &mut Reader<'_>) -> Result<PqCodebook, String> {
        let m = r.u32()? as usize;
        let dim = r.u32()? as usize;
        let ksub = r.u32()? as usize;
        let rerank = r.u32()? as usize;
        let seed = r.u64()?;
        if dim == 0 || m == 0 || m > dim {
            return Err(format!("PQ geometry invalid: m={m} dim={dim}"));
        }
        if ksub == 0 || ksub > KSUB_MAX {
            return Err(format!("PQ codebook size {ksub} out of range"));
        }
        let cb_len = r.u64()? as usize;
        if cb_len != ksub * dim {
            return Err(format!(
                "PQ codebooks hold {cb_len} values, geometry implies {}",
                ksub * dim
            ));
        }
        let mut codebooks = Vec::with_capacity(cb_len.min(1 << 24));
        for _ in 0..cb_len {
            let chunk = r.take(8)?;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            codebooks.push(f64::from_le_bytes(buf));
        }
        Ok(PqCodebook {
            m,
            dim,
            ksub,
            rerank,
            seed,
            codebooks,
        })
    }

    /// Trains per-subspace codebooks over `vectors` with the house seeded
    /// k-means. Deterministic at any `parallelism` (assignment reduces in
    /// input order). Fails on empty, zero-dimensional, or mixed-dimension
    /// catalogs — the same catalogs the mapped format rejects.
    pub fn fit(
        vectors: &[Vec<f64>],
        config: &PqConfig,
        parallelism: usize,
    ) -> Result<PqCodebook, String> {
        let n = vectors.len();
        if n == 0 {
            return Err("cannot quantize an empty catalog".into());
        }
        let dim = vectors.first().map_or(0, Vec::len);
        if dim == 0 {
            return Err("cannot quantize zero-dimensional vectors".into());
        }
        if vectors.iter().any(|v| v.len() != dim) {
            return Err("catalog vectors have mixed dimensions; cannot quantize".into());
        }
        let m = config.m.clamp(1, dim);
        let rerank = config.rerank.max(1);
        // Deterministic training sample: bottom-k SplitMix64 priorities
        // keyed by (seed, id), ids restored to ascending order so the
        // training geometry is stable under any sort implementation.
        let sample: Vec<usize> = if n <= TRAIN_SAMPLE {
            (0..n).collect()
        } else {
            let mut keyed: Vec<(u64, usize)> = (0..n)
                .map(|i| {
                    (
                        splitmix64(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        i,
                    )
                })
                .collect();
            keyed.sort_unstable();
            let mut ids: Vec<usize> = keyed.iter().take(TRAIN_SAMPLE).map(|&(_, i)| i).collect();
            ids.sort_unstable();
            ids
        };
        let ksub = sample.len().min(KSUB_MAX);
        let mut codebooks: Vec<f64> = Vec::with_capacity(ksub * dim);
        for (s, &(start, len)) in sub_bounds(dim, m).iter().enumerate() {
            // Training matrix for this subspace: one `len`-wide row per
            // sampled vector (dims validated uniform above).
            let rows: Vec<&[f64]> = sample
                .iter()
                .filter_map(|&i| vectors.get(i))
                .map(|v| v.get(start..start + len).unwrap_or(&[]))
                .collect();
            // Seeded shuffle init, per-subspace stream.
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(s as u64));
            let mut order: Vec<usize> = (0..rows.len()).collect();
            order.shuffle(&mut rng);
            let mut cents: Vec<f64> = order
                .iter()
                .take(ksub)
                .filter_map(|&i| rows.get(i))
                .flat_map(|r| r.iter().copied())
                .collect();
            let mut assignment = vec![0usize; rows.len()];
            for _iter in 0..KMEANS_ITERS {
                let next: Vec<usize> = par_map_indices(rows.len(), parallelism, |i| {
                    rows.get(i)
                        .map_or(0, |row| nearest_centroid(&cents, len, row))
                });
                let changed = next != assignment;
                assignment = next;
                // Single-pass mean recompute: per-centroid sums accumulate
                // in ascending row order (the house fold order), empty
                // clusters keep their previous centroid.
                let mut sums = vec![0.0f64; ksub * len];
                let mut counts = vec![0usize; ksub];
                for (row, &c) in rows.iter().zip(&assignment) {
                    if let Some(slot) = sums.get_mut(c * len..c * len + len) {
                        for (acc, x) in slot.iter_mut().zip(row.iter()) {
                            *acc += x;
                        }
                    }
                    if let Some(cnt) = counts.get_mut(c) {
                        *cnt += 1;
                    }
                }
                for (c, &cnt) in counts.iter().enumerate() {
                    if cnt == 0 {
                        continue;
                    }
                    if let (Some(dst), Some(src)) = (
                        cents.get_mut(c * len..c * len + len),
                        sums.get(c * len..c * len + len),
                    ) {
                        for (d, sv) in dst.iter_mut().zip(src) {
                            *d = sv / cnt as f64;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            codebooks.extend_from_slice(&cents);
        }
        Ok(PqCodebook {
            m,
            dim,
            ksub,
            rerank,
            seed: config.seed,
            codebooks,
        })
    }
}

/// Trained PQ state for an owned [`VectorIndex`]: the codebooks plus the
/// `n × m` row-major code matrix.
///
/// [`VectorIndex`]: crate::index::VectorIndex
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Pq {
    book: PqCodebook,
    /// `n × m` row-major codes, one byte per `(vector, subspace)`.
    codes: Vec<u8>,
}

impl Pq {
    /// Trains codebooks over the catalog and encodes every vector.
    pub fn fit(vectors: &[Vec<f64>], config: &PqConfig, parallelism: usize) -> Result<Pq, String> {
        let book = PqCodebook::fit(vectors, config, parallelism)?;
        let rows: Vec<Vec<u8>> = par_map_indices(vectors.len(), parallelism, |i| {
            vectors.get(i).map_or_else(Vec::new, |v| book.encode(v))
        });
        let codes = rows.concat();
        Ok(Pq { book, codes })
    }

    /// The trained codebooks.
    pub fn book(&self) -> &PqCodebook {
        &self.book
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        if self.book.m == 0 {
            return 0;
        }
        self.codes.len() / self.book.m
    }

    /// True when no vectors are encoded.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Re-rank window multiplier (≥ 1).
    pub fn rerank(&self) -> usize {
        self.book.rerank.max(1)
    }

    /// The raw `n × m` code matrix — the `KGVI` tag-6 payload.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The code row of the i-th vector, when in range.
    pub fn code_row(&self, i: usize) -> Option<&[u8]> {
        let m = self.book.m;
        if m == 0 {
            return None;
        }
        self.codes.get(i * m..i * m + m)
    }

    /// Builds the per-query ADC tables.
    pub fn adc_table(&self, query: &[f64]) -> AdcTable {
        self.book.adc_table(query)
    }

    /// ADC score of the i-th stored vector (0.0 out of range — the
    /// [`VectorSource`] convention).
    pub fn score(&self, table: &AdcTable, i: usize) -> f64 {
        self.code_row(i)
            .map_or(0.0, |row| self.book.score_codes(table, row))
    }

    /// Encodes one new vector against the frozen codebooks and appends
    /// its code row — the online `register` path; never retrains.
    pub fn append(&mut self, v: &[f64]) {
        let row = self.book.encode(v);
        self.codes.extend_from_slice(&row);
    }

    /// Resident bytes of the PQ state (code matrix + codebooks).
    pub fn resident_bytes(&self) -> usize {
        self.codes.len() + self.book.codebook_bytes()
    }

    /// Serializes the full PQ state (codebooks + code matrix) — the
    /// payload embedded in [`VectorIndex::to_bytes`].
    ///
    /// [`VectorIndex::to_bytes`]: crate::index::VectorIndex::to_bytes
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.book.to_bytes();
        write_u64(&mut out, self.codes.len() as u64);
        out.extend_from_slice(&self.codes);
        out
    }

    /// Restores PQ state from [`Pq::to_bytes`] output; strict about
    /// geometry (code matrix must be whole rows of in-range codes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Pq, String> {
        let mut r = Reader::new(bytes);
        let book = PqCodebook::read(&mut r)?;
        let code_len = r.u64()? as usize;
        let codes = r.take(code_len)?.to_vec();
        r.expect_end("PQ state")?;
        let pq = Pq { book, codes };
        pq.validate()?;
        Ok(pq)
    }

    /// Checks the code matrix is whole rows of in-range codebook ids.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.book.m == 0 || !self.codes.len().is_multiple_of(self.book.m) {
            return Err(format!(
                "PQ code matrix of {} bytes is not whole {}-byte rows",
                self.codes.len(),
                self.book.m
            ));
        }
        if let Some(&bad) = self.codes.iter().find(|&&c| c as usize >= self.book.ksub) {
            return Err(format!(
                "PQ code {bad} out of range for a {}-entry codebook",
                self.book.ksub
            ));
        }
        Ok(())
    }
}

/// A [`VectorSource`] view of a quantized catalog: `similarity` reads the
/// prebuilt ADC tables (the query argument is already folded in), so the
/// HNSW beam descends over codes without touching full-precision vectors.
/// Search-only — `pair_similarity` (the insert path) is never called by
/// [`Hnsw::search`] and answers 0.0.
///
/// [`Hnsw::search`]: crate::hnsw::Hnsw::search
pub struct AdcSource<'a> {
    /// The quantized catalog.
    pub pq: &'a Pq,
    /// The query's ADC tables.
    pub table: &'a AdcTable,
}

impl VectorSource for AdcSource<'_> {
    fn count(&self) -> usize {
        self.pq.len()
    }

    fn similarity(&self, i: usize, _query: &[f64]) -> f64 {
        self.pq.score(self.table, i)
    }

    fn pair_similarity(&self, _i: usize, _j: usize) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * dim + d) as f64 * 0.37).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sub_bounds_partition_the_dimension() {
        let bounds = sub_bounds(10, 4);
        assert_eq!(bounds, vec![(0, 3), (3, 3), (6, 2), (8, 2)]);
        assert_eq!(sub_bounds(8, 8).len(), 8);
        // m clamps to dim.
        assert_eq!(sub_bounds(3, 8).len(), 3);
    }

    #[test]
    fn fit_is_deterministic() {
        let v = vecs(300, 12);
        let cfg = PqConfig::default();
        let a = Pq::fit(&v, &cfg, 1).unwrap();
        let b = Pq::fit(&v, &cfg, 1).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn distinct_vectors_with_full_codebook_reconstruct_exactly() {
        // When every training row is its own centroid (ksub == n), the
        // reconstruction is exact — singleton means divide by 1.0.
        let v = vecs(40, 8);
        let pq = Pq::fit(
            &v,
            &PqConfig {
                m: 4,
                ..PqConfig::default()
            },
            1,
        )
        .unwrap();
        for (i, orig) in v.iter().enumerate() {
            let row = pq.code_row(i).unwrap();
            let rec = pq.book().reconstruct(row);
            let bits = |x: &[f64]| x.iter().map(|y| y.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(orig), bits(&rec), "vector {i} must round-trip");
        }
    }

    #[test]
    fn adc_score_matches_cosine_of_reconstruction() {
        let v = vecs(120, 9);
        let pq = Pq::fit(
            &v,
            &PqConfig {
                m: 3,
                ..PqConfig::default()
            },
            1,
        )
        .unwrap();
        let query: Vec<f64> = (0..9).map(|d| (d as f64 * 0.71).cos()).collect();
        let table = pq.adc_table(&query);
        for i in 0..v.len() {
            let rec = pq.book().reconstruct(pq.code_row(i).unwrap());
            let want = crate::column::cosine(&query, &rec);
            let got = pq.score(&table, i);
            assert!(
                (want - got).abs() < 1e-9,
                "vector {i}: adc {got} vs cosine-of-reconstruction {want}"
            );
        }
    }

    #[test]
    fn byte_roundtrip_is_bitwise() {
        let v = vecs(64, 10);
        let pq = Pq::fit(&v, &PqConfig::default(), 1).unwrap();
        let restored = Pq::from_bytes(&pq.to_bytes()).unwrap();
        assert_eq!(restored, pq);
        assert_eq!(restored.to_bytes(), pq.to_bytes());
    }

    #[test]
    fn from_bytes_rejects_malformed_state() {
        let v = vecs(10, 6);
        let pq = Pq::fit(
            &v,
            &PqConfig {
                m: 3,
                ..PqConfig::default()
            },
            1,
        )
        .unwrap();
        let bytes = pq.to_bytes();
        assert!(Pq::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Pq::from_bytes(&trailing).is_err());
        assert!(Pq::from_bytes(&[0u8; 8]).is_err());
    }

    #[test]
    fn fit_rejects_degenerate_catalogs() {
        assert!(Pq::fit(&[], &PqConfig::default(), 1).is_err());
        assert!(Pq::fit(&[vec![]], &PqConfig::default(), 1).is_err());
        assert!(Pq::fit(&[vec![1.0, 2.0], vec![1.0]], &PqConfig::default(), 1).is_err());
    }

    #[test]
    fn append_encodes_without_retraining() {
        let v = vecs(50, 8);
        let mut pq = Pq::fit(
            &v,
            &PqConfig {
                m: 4,
                ..PqConfig::default()
            },
            1,
        )
        .unwrap();
        let book_before = pq.book().to_bytes();
        pq.append(&[0.5; 8]);
        assert_eq!(pq.len(), 51);
        assert_eq!(pq.book().to_bytes(), book_before, "codebooks stay frozen");
    }
}
