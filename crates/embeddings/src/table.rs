//! Table-level embeddings via column pooling.

use crate::column::{column_embedding, column_embedding_parts, EMBED_DIM};
use kgpip_tabular::{effective_parallelism, ChunkedFrame, Column, ColumnKind, DataFrame};
use rayon::prelude::*;

/// Embeds a table by mean-pooling its column embeddings and L2-normalizing
/// the result (paper §3.2: "Table embeddings are computed by pooling over
/// their individual column embeddings").
pub fn table_embedding(frame: &DataFrame) -> Vec<f64> {
    let mut pooled = vec![0.0f64; EMBED_DIM];
    if frame.num_columns() == 0 {
        return pooled;
    }
    for col in frame.columns() {
        let e = column_embedding(col);
        for (p, x) in pooled.iter_mut().zip(e.iter()) {
            *p += x;
        }
    }
    let n = frame.num_columns() as f64;
    for p in &mut pooled {
        *p /= n;
    }
    let norm = pooled.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for p in &mut pooled {
            *p /= norm;
        }
    }
    pooled
}

/// Embeds a chunked table without materializing any column: per-column
/// moments are accumulated chunk-by-chunk (exact, bit-identical to the
/// in-memory stats), while the trigram sketch and the quantiles fold over
/// a deterministic seeded sample of at most `sample_bound` rows. Whenever
/// the table fits under the bound the sample is the full row set and the
/// result is bit-for-bit identical to [`table_embedding`] on the
/// concatenated frame; above the bound, memory stays proportional to the
/// sample instead of the table, and the result is still invariant to chunk
/// size and worker count because the sample is keyed by global row index.
pub fn table_embedding_chunked(frame: &ChunkedFrame, sample_bound: usize, seed: u64) -> Vec<f64> {
    let mut pooled = vec![0.0f64; EMBED_DIM];
    if frame.num_columns() == 0 {
        return pooled;
    }
    let sample = frame.sample(sample_bound, seed);
    for c in 0..frame.num_columns() {
        let chunks = frame.column_chunks(c);
        let kind = chunks
            .first()
            .map(Column::kind)
            .unwrap_or(ColumnKind::Numeric);
        let stats = frame.column_stats_sampled(c, &sample);
        let strings = sampled_strings(chunks, &sample);
        let e = column_embedding_parts(kind, &stats, strings);
        for (p, x) in pooled.iter_mut().zip(e.iter()) {
            *p += x;
        }
    }
    let n = frame.num_columns() as f64;
    for p in &mut pooled {
        *p /= n;
    }
    let norm = pooled.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for p in &mut pooled {
            *p /= norm;
        }
    }
    pooled
}

/// Collects the present string views of the sampled rows, visiting the
/// ascending sample through the chunks with a single cursor — the same
/// row order `column_embedding` scans, restricted to the sample.
fn sampled_strings(chunks: &[Column], sample: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    let mut cursor = sample.iter().peekable();
    let mut base = 0usize;
    for c in chunks {
        let len = c.len();
        while let Some(&&r) = cursor.peek() {
            if r < base || r >= base + len {
                break;
            }
            if let Some(s) = c.as_string(r - base) {
                out.push(s);
            }
            cursor.next();
        }
        base += len;
    }
    out
}

/// Embeds every table of a named catalog, in input order. With
/// `parallelism > 1` the per-table embeddings are computed on a rayon
/// worker pool of that many threads; results are merged back in input
/// order, so the output is bit-for-bit identical at any worker count
/// (each embedding depends only on its own table). The worker count is
/// clamped to the CPUs actually available, so over-provisioned configs
/// (e.g. `parallelism = 2` on a 1-CPU host) take the sequential path
/// instead of paying pool-construction and contention overhead.
pub fn table_embeddings(tables: &[(String, DataFrame)], parallelism: usize) -> Vec<Vec<f64>> {
    let parallelism = effective_parallelism(parallelism);
    if parallelism > 1 && tables.len() > 1 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(parallelism)
            .build()
            .expect("thread pool construction");
        pool.install(|| {
            tables
                .par_iter()
                .map(|(_, frame)| table_embedding(frame))
                .collect()
        })
    } else {
        tables
            .iter()
            .map(|(_, frame)| table_embedding(frame))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::cosine;
    use kgpip_tabular::Column;

    fn sales_table(seed: u64) -> DataFrame {
        let offset = seed as f64;
        DataFrame::from_columns(vec![
            (
                "revenue".to_string(),
                Column::from_f64(
                    (0..50)
                        .map(|i| offset + i as f64 * 10.0)
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "region".to_string(),
                Column::categorical(
                    (0..50)
                        .map(|i| Some(["north", "south", "east", "west"][i % 4]))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap()
    }

    fn review_table() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "review".to_string(),
                Column::text(
                    (0..50)
                        .map(|i| {
                            Some(format!(
                                "this product review number {i} is quite long and wordy"
                            ))
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "stars".to_string(),
                Column::from_f64((0..50).map(|i| (i % 5) as f64).collect::<Vec<_>>()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn embedding_is_unit_norm() {
        let e = table_embedding(&sales_table(0));
        let norm: f64 = e.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_domain_tables_are_closer_than_cross_domain() {
        let a = table_embedding(&sales_table(1));
        let b = table_embedding(&sales_table(500));
        let c = table_embedding(&review_table());
        assert!(
            cosine(&a, &b) > cosine(&a, &c),
            "sales~sales {} vs sales~reviews {}",
            cosine(&a, &b),
            cosine(&a, &c)
        );
    }

    #[test]
    fn chunked_embedding_matches_in_memory_under_the_bound() {
        for f in [sales_table(3), review_table()] {
            let full = table_embedding(&f);
            for chunk_rows in [1, 3, 7, 100] {
                let cf = ChunkedFrame::from_frame(&f, chunk_rows);
                let chunked = table_embedding_chunked(&cf, 1_000, 7);
                assert_eq!(chunked, full, "chunk_rows {chunk_rows}");
            }
        }
    }

    #[test]
    fn sampled_embedding_is_chunk_size_invariant_above_the_bound() {
        let f = sales_table(3);
        let reference = table_embedding_chunked(&ChunkedFrame::from_frame(&f, 1), 10, 42);
        assert!(reference.iter().all(|x| x.is_finite()));
        assert!(reference.iter().any(|x| *x != 0.0));
        for chunk_rows in [3, 7, 100] {
            let cf = ChunkedFrame::from_frame(&f, chunk_rows);
            assert_eq!(
                table_embedding_chunked(&cf, 10, 42),
                reference,
                "chunk_rows {chunk_rows}"
            );
        }
    }

    #[test]
    fn empty_table_embeds_to_zero() {
        let e = table_embedding(&DataFrame::new());
        assert!(e.iter().all(|x| *x == 0.0));
        assert_eq!(e.len(), EMBED_DIM);
    }
}
