//! Exact t-SNE (van der Maaten & Hinton) for small point sets.
//!
//! Used to regenerate the paper's Figure 10: "t-SNE plot of KGpip's dataset
//! embeddings for 38 Kaggle datasets ... datasets from the same domains
//! have close embeddings". Exact O(n²) t-SNE is the right tool at that
//! scale.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// t-SNE hyperparameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbour count).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 5.0,
            iterations: 800,
            learning_rate: 20.0,
            seed: 0,
        }
    }
}

/// Embeds high-dimensional points into 2-D with exact t-SNE. Returns one
/// `(x, y)` per input point.
pub fn tsne(points: &[Vec<f64>], config: &TsneConfig) -> Vec<(f64, f64)> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![(0.0, 0.0)];
    }
    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let d: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }
    // Per-point bandwidth by binary search on perplexity.
    let target_entropy = config.perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let mut beta = 1.0f64;
        let mut beta_min = f64::NEG_INFINITY;
        let mut beta_max = f64::INFINITY;
        for _ in 0..50 {
            let mut sum = 0.0;
            for j in 0..n {
                if j != i {
                    p[i * n + j] = (-beta * d2[i * n + j]).exp();
                    sum += p[i * n + j];
                }
            }
            let sum = sum.max(1e-12);
            let mut entropy = 0.0;
            for j in 0..n {
                if j != i {
                    let pj = p[i * n + j] / sum;
                    if pj > 1e-12 {
                        entropy -= pj * pj.ln();
                    }
                }
            }
            if (entropy - target_entropy).abs() < 1e-4 {
                break;
            }
            if entropy > target_entropy {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_finite() {
                    (beta + beta_min) / 2.0
                } else {
                    beta / 2.0
                };
            }
        }
        let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| p[i * n + j]).sum();
        for j in 0..n {
            if j != i {
                p[i * n + j] /= row_sum.max(1e-12);
            }
        }
    }
    // Symmetrize.
    let mut pij = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // Gradient descent with momentum and early exaggeration.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>() * 1e-2, rng.gen::<f64>() * 1e-2))
        .collect();
    let mut velocity = vec![(0.0f64, 0.0f64); n];
    for iter in 0..config.iterations {
        let exaggeration = if iter < config.iterations / 4 {
            4.0
        } else {
            1.0
        };
        // Low-dim affinities (Student-t kernel).
        let mut q = vec![0.0f64; n * n];
        let mut q_sum = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                let dx = y[i].0 - y[j].0;
                let dy = y[i].1 - y[j].1;
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                q_sum += 2.0 * w;
            }
        }
        let q_sum = q_sum.max(1e-12);
        let momentum = if iter < 100 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut gx = 0.0;
            let mut gy = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let qij = (w / q_sum).max(1e-12);
                let coeff = 4.0 * (exaggeration * pij[i * n + j] - qij) * w;
                gx += coeff * (y[i].0 - y[j].0);
                gy += coeff * (y[i].1 - y[j].1);
            }
            velocity[i].0 = momentum * velocity[i].0 - config.learning_rate * gx;
            velocity[i].1 = momentum * velocity[i].1 - config.learning_rate * gy;
        }
        for (yi, v) in y.iter_mut().zip(&velocity) {
            yi.0 += v.0;
            yi.1 += v.1;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated clusters in 10-D.
    fn clustered_points() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..8usize {
                let mut v = vec![0.0; 10];
                v[c * 3] = 10.0;
                v[c * 3 + 1] = 10.0;
                v[9] = (i as f64) * 0.1; // within-cluster jitter
                points.push(v);
                labels.push(c);
            }
        }
        (points, labels)
    }

    #[test]
    fn clusters_stay_separated_in_2d() {
        let (points, labels) = clustered_points();
        let layout = tsne(&points, &TsneConfig::default());
        // Mean within-cluster distance must be far below between-cluster.
        let dist =
            |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        let mut within = Vec::new();
        let mut between = Vec::new();
        for i in 0..layout.len() {
            for j in i + 1..layout.len() {
                if labels[i] == labels[j] {
                    within.push(dist(layout[i], layout[j]));
                } else {
                    between.push(dist(layout[i], layout[j]));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&between) > 2.0 * mean(&within),
            "between {} vs within {}",
            mean(&between),
            mean(&within)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (points, _) = clustered_points();
        let a = tsne(&points, &TsneConfig::default());
        let b = tsne(&points, &TsneConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(tsne(&[], &TsneConfig::default()).is_empty());
        assert_eq!(
            tsne(&[vec![1.0, 2.0]], &TsneConfig::default()),
            vec![(0.0, 0.0)]
        );
        // Two identical points must not produce NaN.
        let layout = tsne(
            &[vec![1.0, 1.0], vec![1.0, 1.0]],
            &TsneConfig {
                iterations: 50,
                ..TsneConfig::default()
            },
        );
        assert!(layout.iter().all(|(x, y)| x.is_finite() && y.is_finite()));
    }
}
