//! The HNSW determinism suite, gated by `scripts/check.sh`:
//!
//! * property: with `k ≥ catalog size`, HNSW equals the exact scan —
//!   names, order, and score bits — for arbitrary catalogs,
//! * insert-then-query ≡ build-from-scratch, serialized graphs included,
//! * queries are bit-identical at any parallelism (threads share one
//!   graph; reads must not depend on scheduling),
//! * the mapped (`KGVI`) catalog answers bit-identically to the owned
//!   index, through a disk round-trip.

use kgpip_embeddings::{Hnsw, HnswConfig, MappedIndex, SliceSource, VectorIndex};
use proptest::prelude::*;
use std::sync::Arc;

fn vectors(n: usize, dim: usize, phase: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * dim + d) as f64 * 0.37 + phase).sin())
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With the beam at least as wide as the catalog, the graph search
    /// must degenerate to the exact answer: same names, same order, same
    /// score bits.
    #[test]
    fn hnsw_equals_exact_when_k_covers_the_catalog(
        n in 1usize..40,
        dim in 2usize..8,
        phase in -3.0f64..3.0,
        seed in 0u64..4,
    ) {
        let vecs = vectors(n, dim, phase);
        let mut idx = VectorIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            idx.add(format!("v{i}"), v.clone());
        }
        let exact: Vec<(String, f64)> = idx.top_k(&vecs[0], n);
        idx.build_hnsw(HnswConfig { seed, ..HnswConfig::default() });
        let approx = idx.search(&vecs[0], n);
        prop_assert_eq!(exact.len(), approx.len());
        for ((na, sa), (nb, sb)) in exact.iter().zip(&approx) {
            prop_assert_eq!(na, nb);
            prop_assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }

    /// Splitting any catalog into a built prefix plus registered suffix
    /// yields the same graph bytes as building over the whole catalog.
    #[test]
    fn any_split_of_insertions_builds_the_same_graph(
        n in 2usize..60,
        split_frac in 0.0f64..1.0,
        seed in 0u64..4,
    ) {
        let split = ((n as f64 * split_frac) as usize).clamp(1, n);
        let vecs = vectors(n, 6, 0.5);
        let config = HnswConfig { seed, ..HnswConfig::default() };

        let mut grown = Hnsw::new(config);
        let mut store: Vec<Vec<f64>> = Vec::new();
        for v in vecs.iter().take(split) {
            store.push(v.clone());
            grown.insert(&SliceSource(&store));
        }
        for v in vecs.iter().skip(split) {
            store.push(v.clone());
            grown.insert(&SliceSource(&store));
        }

        let scratch = Hnsw::build(config, &SliceSource(&vecs));
        prop_assert_eq!(grown.to_bytes(), scratch.to_bytes());
    }
}

/// Concurrent queries against one shared graph return exactly what a
/// sequential pass returns — scheduling must never reach the results.
#[test]
fn queries_are_bit_identical_at_any_parallelism() {
    let vecs = Arc::new(vectors(500, 12, 0.0));
    let mut idx = VectorIndex::new();
    for (i, v) in vecs.iter().enumerate() {
        idx.add(format!("v{i}"), v.clone());
    }
    idx.build_hnsw(HnswConfig::default());
    let idx = Arc::new(idx);

    let sequential: Vec<Vec<(String, f64)>> = (0..40).map(|q| idx.search(&vecs[q], 10)).collect();

    for threads in [2usize, 4, 8] {
        let mut handles = Vec::new();
        for t in 0..threads {
            let idx = Arc::clone(&idx);
            let vecs = Arc::clone(&vecs);
            handles.push(std::thread::spawn(move || {
                (0..40)
                    .filter(|q| q % threads == t)
                    .map(|q| (q, idx.search(&vecs[q], 10)))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (q, result) in handle.join().unwrap() {
                assert_eq!(result.len(), sequential[q].len());
                for ((na, sa), (nb, sb)) in result.iter().zip(&sequential[q]) {
                    assert_eq!(na, nb, "threads={threads} q={q}");
                    assert_eq!(sa.to_bits(), sb.to_bits(), "threads={threads} q={q}");
                }
            }
        }
    }
}

/// Owned index → KGVI file → mapped open: same bytes on re-export, same
/// answers to the bit on every tier the file can carry.
#[test]
fn mapped_roundtrip_is_bit_identical() {
    let vecs = vectors(300, 10, 1.0);
    let mut idx = VectorIndex::new();
    for (i, v) in vecs.iter().enumerate() {
        idx.add(format!("v{i}"), v.clone());
    }
    idx.build_hnsw(HnswConfig::default());

    let dir = std::env::temp_dir().join("kgpip-hnsw-suite");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.kgvi");
    idx.write_mapped(&path).unwrap();
    let mapped = MappedIndex::open(&path).unwrap();
    assert!(mapped.has_hnsw());

    // The file is deterministic: exporting again produces the same bytes.
    assert_eq!(
        std::fs::read(&path).unwrap(),
        idx.to_mapped_bytes().unwrap()
    );

    for (q, query) in vecs.iter().enumerate().take(30) {
        let owned = idx.search(query, 7);
        let via_map = mapped.top_k(query, 7);
        assert_eq!(owned.len(), via_map.len());
        for ((na, sa), (nb, sb)) in owned.iter().zip(&via_map) {
            assert_eq!(na, nb, "q={q}");
            assert_eq!(sa.to_bits(), sb.to_bits(), "q={q}");
        }
    }
    std::fs::remove_file(&path).ok();
}
