//! The product-quantization suite, gated by `scripts/check.sh`:
//!
//! * property: with the rerank window covering the catalog, quantized
//!   `search` equals the unquantized exact scan — names, order, and
//!   score bits — for arbitrary catalogs and PQ geometries,
//! * codebook training is bit-identical at any requested worker count,
//! * encode/decode reconstruction error is bounded (and exact when every
//!   training row gets its own centroid),
//! * the mapped (`KGVI`) quantized catalog answers bit-identically to
//!   the owned index, through a disk round-trip,
//! * pre-PQ readers of new `.kgvi` files and new readers of pre-PQ
//!   files both keep working (tagged-section skipping).

use kgpip_embeddings::{HnswConfig, MappedIndex, PqConfig, VectorIndex};
use proptest::prelude::*;

fn vectors(n: usize, dim: usize, phase: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * dim + d) as f64 * 0.37 + phase).sin())
                .collect()
        })
        .collect()
}

fn catalog(vecs: &[Vec<f64>]) -> VectorIndex {
    let mut idx = VectorIndex::new();
    for (i, v) in vecs.iter().enumerate() {
        idx.add(format!("v{i}"), v.clone());
    }
    idx
}

fn assert_bitwise_eq(a: &[(String, f64)], b: &[(String, f64)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: lengths differ");
    for ((na, sa), (nb, sb)) in a.iter().zip(b) {
        assert_eq!(na, nb, "{what}: names diverge");
        assert_eq!(sa.to_bits(), sb.to_bits(), "{what}: score bits diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The rerank invariant, as a guaranteed property rather than an
    /// empirical one: when `rerank × k` covers the whole catalog, the
    /// exact re-rank sees every id the exact scan sees, so quantized
    /// `search` must equal unquantized `top_k` bit-for-bit — at any
    /// subspace count.
    #[test]
    fn quantized_equals_exact_when_rerank_covers_the_catalog(
        n in 1usize..50,
        dim in 2usize..10,
        m in 1usize..6,
        phase in -3.0f64..3.0,
        seed in 0u64..4,
    ) {
        let vecs = vectors(n, dim, phase);
        let mut idx = catalog(&vecs);
        let k = (n / 2).max(1);
        // rerank × k ≥ n guarantees full candidate coverage.
        let rerank = n / k + 1;
        let exact = idx.top_k(&vecs[0], k);
        idx.quantize(PqConfig { m, rerank, seed }).unwrap();
        let quantized = idx.search(&vecs[0], k);
        prop_assert_eq!(exact.len(), quantized.len());
        for ((na, sa), (nb, sb)) in exact.iter().zip(&quantized) {
            prop_assert_eq!(na, nb);
            prop_assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }

    /// IVF-tier quantized search degenerates to the unquantized IVF
    /// answer when the rerank window covers everything the probes scan.
    #[test]
    fn quantized_ivf_equals_unquantized_ivf_when_rerank_covers_probes(
        n in 20usize..60,
        nlist in 2usize..6,
        phase in -3.0f64..3.0,
    ) {
        let vecs = vectors(n, 6, phase);
        let mut idx = catalog(&vecs);
        idx.train_ivf(nlist, nlist, 7);
        let k = 5usize;
        let unquantized = idx.search(&vecs[1], k);
        idx.quantize(PqConfig { m: 3, rerank: n / k + 1, seed: 0 }).unwrap();
        let quantized = idx.search(&vecs[1], k);
        prop_assert_eq!(unquantized.len(), quantized.len());
        for ((na, sa), (nb, sb)) in unquantized.iter().zip(&quantized) {
            prop_assert_eq!(na, nb);
            prop_assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }
}

/// Codebook training and encoding are bit-identical at any requested
/// worker count — parallelism changes build cost, never build output.
#[test]
fn codebooks_are_bit_identical_across_worker_counts() {
    let vecs = vectors(400, 16, 0.0);
    let config = PqConfig {
        m: 8,
        rerank: 4,
        seed: 3,
    };
    let mut baseline: Option<Vec<u8>> = None;
    for workers in [0usize, 1, 2, 3, 8] {
        let mut idx = catalog(&vecs);
        idx.set_parallelism(workers);
        idx.quantize(config).unwrap();
        let bytes = idx.to_bytes();
        match &baseline {
            None => baseline = Some(bytes),
            Some(b) => assert_eq!(
                b, &bytes,
                "worker count {workers} changed the quantized index bytes"
            ),
        }
    }
}

/// IVF k-means (the parallelized assignment step) is likewise
/// bit-identical at any worker count.
#[test]
fn ivf_training_is_bit_identical_across_worker_counts() {
    let vecs = vectors(300, 8, 1.0);
    let mut baseline: Option<Vec<u8>> = None;
    for workers in [0usize, 1, 2, 4] {
        let mut idx = catalog(&vecs);
        idx.set_parallelism(workers);
        idx.train_ivf(17, 4, 9);
        let bytes = idx.to_bytes();
        match &baseline {
            None => baseline = Some(bytes),
            Some(b) => assert_eq!(
                b, &bytes,
                "worker count {workers} changed the IVF index bytes"
            ),
        }
    }
}

/// Reconstruction error is bounded: the decoded vector is closer to the
/// original than the zero vector is (i.e. quantization explains most of
/// the energy), and the mean per-dimension squared error is small for a
/// smooth catalog.
#[test]
fn reconstruction_error_is_bounded() {
    let vecs = vectors(600, 16, 0.5);
    let mut idx = catalog(&vecs);
    idx.quantize(PqConfig {
        m: 8,
        rerank: 4,
        seed: 0,
    })
    .unwrap();
    let pq = idx.pq().unwrap();
    let mut err = 0.0f64;
    let mut energy = 0.0f64;
    for (i, v) in vecs.iter().enumerate() {
        let rec = pq.book().reconstruct(pq.code_row(i).unwrap());
        err += v
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>();
        energy += v.iter().map(|a| a * a).sum::<f64>();
    }
    assert!(
        err < 0.05 * energy,
        "quantization keeps ≥95% of catalog energy (err {err:.4} vs energy {energy:.4})"
    );
}

/// With distinct vectors and a codebook at least as large as the
/// catalog, every training row is its own centroid and reconstruction
/// is exact to the bit.
#[test]
fn small_catalog_reconstructs_exactly() {
    let vecs = vectors(50, 12, 2.0);
    let mut idx = catalog(&vecs);
    idx.quantize(PqConfig {
        m: 6,
        rerank: 2,
        seed: 0,
    })
    .unwrap();
    let pq = idx.pq().unwrap();
    for (i, v) in vecs.iter().enumerate() {
        let rec = pq.book().reconstruct(pq.code_row(i).unwrap());
        let bits = |x: &[f64]| x.iter().map(|y| y.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(v), bits(&rec), "vector {i} must round-trip exactly");
    }
}

/// The `.kgvi` mapped file round-trips a quantized HNSW catalog through
/// disk and answers bit-identically to the owned index.
#[test]
fn mapped_quantized_roundtrip_matches_owned() {
    let vecs = vectors(150, 10, 0.0);
    let mut idx = catalog(&vecs);
    idx.build_hnsw(HnswConfig::default());
    idx.quantize(PqConfig {
        m: 5,
        rerank: 4,
        seed: 1,
    })
    .unwrap();
    let dir = std::env::temp_dir().join("kgpip-pq-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.kgvi");
    idx.write_mapped(&path).unwrap();
    let mapped = MappedIndex::open(&path).unwrap();
    assert!(mapped.is_quantized());
    for q in 0..15 {
        let query = idx.vector(q).unwrap().to_vec();
        assert_bitwise_eq(
            &idx.search(&query, 5),
            &mapped.top_k(&query, 5),
            &format!("disk-mapped query {q}"),
        );
    }
    let stats = mapped.stats();
    assert!(stats.quantized);
    // The code matrix is count × m bytes vs count × dim × 8 for the f64
    // block (the fixed codebook cost amortizes away at catalog scale —
    // the bench asserts the end-to-end ratio at 100K).
    let code_matrix = stats.count * 5;
    assert!(
        code_matrix * 8 <= stats.vector_bytes,
        "codes must be ≤ 1/8 of the f64 block"
    );
    assert_eq!(stats.resident_bytes(), idx.stats().resident_bytes());
    std::fs::remove_file(&path).ok();
}

/// Old readers skip unknown tagged sections; new readers load pre-PQ
/// payloads unquantized. Both directions of forward compatibility.
#[test]
fn old_and_new_readers_interoperate() {
    let vecs = vectors(40, 8, 0.0);
    // New reader, pre-PQ binary payload: serialize unquantized, load,
    // stays unquantized.
    let idx = catalog(&vecs);
    let restored = VectorIndex::from_bytes(&idx.to_bytes()).unwrap();
    assert!(!restored.is_quantized());
    // New reader, quantized payload round-trip.
    let mut quantized = catalog(&vecs);
    quantized
        .quantize(PqConfig {
            m: 4,
            rerank: 2,
            seed: 0,
        })
        .unwrap();
    let restored = VectorIndex::from_bytes(&quantized.to_bytes()).unwrap();
    assert!(restored.is_quantized());
    // A pre-PQ reader sees the PQ tail as the trailing optional block it
    // never reads — the binary format grows strictly by appending, so
    // the quantized payload is a strict prefix-extension of the
    // unquantized one.
    let plain = idx.to_bytes();
    let with_pq = quantized.to_bytes();
    assert_eq!(
        &with_pq[..plain.len() - 1],
        &plain[..plain.len() - 1],
        "PQ must extend the payload, not rewrite it"
    );
}

/// Online `register` on a quantized index encodes against the frozen
/// codebooks: the codebooks stay byte-identical, the new vector is
/// findable, and no retrain happens.
#[test]
fn register_encodes_against_frozen_codebooks() {
    let vecs = vectors(200, 8, 0.0);
    let mut idx = catalog(&vecs);
    idx.build_hnsw(HnswConfig::default());
    idx.quantize(PqConfig {
        m: 4,
        rerank: 6,
        seed: 0,
    })
    .unwrap();
    let book_before = idx.pq().unwrap().book().to_bytes();
    let fresh: Vec<f64> = (0..8).map(|d| (d as f64 * 0.9).cos()).collect();
    idx.register("fresh", fresh.clone());
    let pq = idx.pq().unwrap();
    assert_eq!(pq.len(), 201, "code matrix grew by one row");
    assert_eq!(
        pq.book().to_bytes(),
        book_before,
        "codebooks must stay frozen"
    );
    let hits = idx.search(&fresh, 1);
    assert_eq!(hits[0].0, "fresh");
}
