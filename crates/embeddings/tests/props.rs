//! Property-based tests for the embedding substrate.

use kgpip_embeddings::column::{column_embedding, cosine, EMBED_DIM};
use kgpip_embeddings::tsne::{tsne, TsneConfig};
use kgpip_embeddings::{table_embedding, VectorIndex};
use kgpip_tabular::{Column, DataFrame};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Column embeddings are finite and bounded for arbitrary content.
    #[test]
    fn column_embedding_is_finite(
        values in proptest::collection::vec(proptest::option::of(-1e9f64..1e9), 0..60)
    ) {
        let e = column_embedding(&Column::numeric(values));
        prop_assert_eq!(e.len(), EMBED_DIM);
        prop_assert!(e.iter().all(|v| v.is_finite()));
        prop_assert!(e.iter().all(|v| v.abs() <= 2.0), "components are squashed");
    }

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_is_symmetric_and_bounded(
        a in proptest::collection::vec(-10.0f64..10.0, 4),
        b in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-9 || a.iter().all(|v| *v == 0.0));
    }

    /// Table embeddings are unit-norm (or zero for empty tables) whatever
    /// the column mix.
    #[test]
    fn table_embedding_norm(
        nums in proptest::collection::vec(-100.0f64..100.0, 1..40),
        with_cat in proptest::bool::ANY,
    ) {
        let mut frame = DataFrame::new();
        frame.push("n", Column::from_f64(nums.clone())).unwrap();
        if with_cat {
            let cats: Vec<Option<String>> =
                nums.iter().map(|v| Some(format!("c{}", (*v as i64) % 3))).collect();
            frame.push("c", Column::categorical(cats)).unwrap();
        }
        let e = table_embedding(&frame);
        let norm: f64 = e.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }

    /// Exact top-k results are sorted by similarity and unique.
    #[test]
    fn top_k_is_sorted_and_unique(
        vectors in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 6), 1..25
        ),
        k in 1usize..10,
    ) {
        let mut idx = VectorIndex::new();
        for (i, v) in vectors.iter().enumerate() {
            idx.add(format!("v{i}"), v.clone());
        }
        let query = vectors[0].clone();
        let hits = idx.top_k(&query, k);
        prop_assert!(hits.len() <= k.min(vectors.len()));
        for w in hits.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let mut names: Vec<&String> = hits.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), hits.len());
    }

    /// t-SNE yields finite coordinates for arbitrary point clouds.
    #[test]
    fn tsne_is_finite(
        points in proptest::collection::vec(
            proptest::collection::vec(-3.0f64..3.0, 4), 2..15
        ),
    ) {
        let layout = tsne(&points, &TsneConfig { iterations: 60, ..TsneConfig::default() });
        prop_assert_eq!(layout.len(), points.len());
        prop_assert!(layout.iter().all(|(x, y)| x.is_finite() && y.is_finite()));
    }
}
