//! Deep generative model of graphs (Li et al. 2018) with KGpip's
//! conditional-generation modification.
//!
//! Paper §3.5: "Our neural graph generator produces graphs in a node-by-
//! node fashion ... (1) decide whether to add a new node of a certain type,
//! if yes, (2) decide whether to add an edge to the newly added node, if
//! yes (3) decide the existing node to which the edge to be added ... The
//! graph generator utilizes node embeddings that are learned throughout the
//! training via graph propagation rounds ... We built on the work proposed
//! by Li et al. (2018), modifying it to support the same conditional graph
//! generation process after training. That is, the graph generation starts
//! with a subgraph instead of from scratch. During testing, KGpip starts
//! from a subgraph including a dataset node connected to a node for a
//! read_csv call ... It also generates multiple competing ML pipeline
//! graphs for an unseen dataset with a score (probability) of each graph."
//!
//! Components:
//! * [`sequence`] — the teacher-forcing decision sequence of a training
//!   graph (add-node / add-edge / pick-node),
//! * [`model::GraphGenerator`] — the GNN itself: typed node embeddings
//!   (the dataset node's embedding is projected from the dataset's
//!   *content* embedding), message-passing propagation with GRU state
//!   updates, and MLP decision heads; trained with Adam, sampled with
//!   temperature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod sequence;

pub use model::{
    effective_parallelism, GeneratedGraph, GeneratorConfig, GraphGenerator, TrainExample,
};
pub use sequence::{decisions_for, Decision};
