//! The graph generator model: typed-graph GNN with decision heads.
//!
//! The model is deliberately generic over the node-type vocabulary (a
//! `vocab_size` and dense type ids) so that the same machinery trains on
//! both KGpip's filtered pipeline vocabulary and — for the Table 3 ablation
//! — on raw code-graph label vocabularies.

use crate::sequence::{decisions_for, Decision};
use kgpip_codegraph::{OpVocab, PipelineGraph, PipelineOp};
use kgpip_nn::{Adam, GruCell, Linear, Mlp, ParamId, ParamStore, Tape, Tensor, TensorRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

/// Decorrelates derived RNG streams (the 64-bit golden-ratio constant of
/// splitmix64): attempt `i` of `generate_top_k` samples from
/// `seed ⊕ (i · GOLDEN)`, so the candidate set is a pure function of the
/// seed and attempt index, independent of worker count.
const RNG_STREAM_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Attempts per sampling wave in [`GraphGenerator::generate_top_k`]. The
/// wave size is a fixed constant (not tied to `parallelism`) so the
/// early-exit check fires after the same attempt prefix at any worker
/// count.
const SAMPLE_WAVE: usize = 8;

/// One training example's contribution: scalar loss plus its parameter
/// gradients, exactly as returned by `Tape::backward`.
type ExampleGrad = (f32, Vec<(ParamId, Tensor)>);

/// A graph over dense type ids — the generator's native representation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TypedGraph {
    /// Node type ids (`types[0]` is the dataset anchor).
    pub types: Vec<usize>,
    /// Directed edges `(from, to)` with `from < to`.
    pub edges: Vec<(usize, usize)>,
}

impl TypedGraph {
    /// Encodes a pipeline graph through the op vocabulary.
    pub fn encode(graph: &PipelineGraph, vocab: &OpVocab) -> TypedGraph {
        TypedGraph {
            types: graph.ops.iter().map(|op| vocab.id(*op)).collect(),
            edges: graph.edges.clone(),
        }
    }

    /// Decodes back into a pipeline graph.
    pub fn decode(&self, vocab: &OpVocab) -> PipelineGraph {
        PipelineGraph {
            ops: self.types.iter().map(|&t| vocab.op(t)).collect(),
            edges: self.edges.clone(),
        }
    }

    /// The standard conditional-generation prefix (paper §3.5): a dataset
    /// node connected to a `read_csv` node.
    pub fn conditioning_prefix(vocab: &OpVocab) -> TypedGraph {
        TypedGraph {
            types: vec![vocab.id(PipelineOp::Dataset), vocab.id(PipelineOp::ReadCsv)],
            edges: vec![(0, 1)],
        }
    }
}

/// Generator hyperparameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GeneratorConfig {
    /// Node-type vocabulary size (decision head emits `vocab_size + 1`
    /// logits; the extra class is STOP).
    pub vocab_size: usize,
    /// Dataset content-embedding input dimension.
    pub embed_dim: usize,
    /// Hidden state width.
    pub hidden: usize,
    /// Message-passing rounds per state computation (paper §3.5: "node
    /// embeddings that are learned throughout the training via graph
    /// propagation rounds").
    pub prop_rounds: usize,
    /// Training epochs (the paper's Table 3 ablation uses 15).
    pub epochs: usize,
    /// Examples per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Hard cap on generated nodes (including the prefix).
    pub max_nodes: usize,
    /// Hard cap on incoming edges per generated node.
    pub max_edges_per_node: usize,
    /// Parameter-init and training-shuffle seed.
    pub seed: u64,
    /// Worker threads for training batches, evaluation, and top-K
    /// sampling (1 = sequential). Results are bit-for-bit identical at
    /// any setting; see the determinism contract in DESIGN.md.
    #[serde(default = "default_parallelism")]
    pub parallelism: usize,
    /// Optional early exit for [`GraphGenerator::generate_top_k`]: stop
    /// sampling at the first wave boundary where this many distinct
    /// graphs have been collected. `None` spends the full attempt budget.
    #[serde(default)]
    pub distinct_target: Option<usize>,
}

fn default_parallelism() -> usize {
    1
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            vocab_size: OpVocab::new().len(),
            embed_dim: 48,
            hidden: 32,
            prop_rounds: 2,
            epochs: 15,
            batch_size: 8,
            learning_rate: 0.01,
            max_nodes: 12,
            max_edges_per_node: 3,
            seed: 0,
            parallelism: 1,
            distinct_target: None,
        }
    }
}

/// One training example: a dataset's content embedding plus one filtered
/// pipeline graph mined for it.
#[derive(Debug, Clone)]
pub struct TrainExample {
    /// Content embedding of the associated dataset (length = `embed_dim`).
    pub dataset_embedding: Vec<f64>,
    /// The pipeline graph in typed form (node 0 = dataset anchor).
    pub graph: TypedGraph,
}

/// A generated graph with its sampling score.
#[derive(Debug, Clone)]
pub struct GeneratedGraph {
    /// The generated typed graph (includes the conditioning prefix).
    pub graph: TypedGraph,
    /// Sum of log-probabilities of all sampled decisions — the "score
    /// (probability) of each graph" of §3.5.
    pub log_prob: f64,
}

/// The deep graph generator.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct GraphGenerator {
    config: GeneratorConfig,
    store: ParamStore,
    type_emb: ParamId,
    ds_proj: Linear,
    msg_fwd: Mlp,
    msg_bwd: Mlp,
    gru: GruCell,
    graph_proj: Linear,
    head_addnode: Mlp,
    head_addedge: Mlp,
    head_pick: Mlp,
}

impl GraphGenerator {
    /// Creates a generator with freshly initialized parameters.
    pub fn new(config: GeneratorConfig) -> GraphGenerator {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let h = config.hidden;
        let type_emb = store.xavier("type_emb", config.vocab_size, h, &mut rng);
        let ds_proj = Linear::new(&mut store, "ds_proj", config.embed_dim, h, &mut rng);
        let msg_fwd = Mlp::new(&mut store, "msg_fwd", 2 * h, h, h, &mut rng);
        let msg_bwd = Mlp::new(&mut store, "msg_bwd", 2 * h, h, h, &mut rng);
        let gru = GruCell::new(&mut store, "gru", h, h, &mut rng);
        let graph_proj = Linear::new(&mut store, "graph_proj", h, h, &mut rng);
        let head_addnode = Mlp::new(
            &mut store,
            "addnode",
            2 * h,
            h,
            config.vocab_size + 1,
            &mut rng,
        );
        let head_addedge = Mlp::new(&mut store, "addedge", 3 * h, h, 1, &mut rng);
        let head_pick = Mlp::new(&mut store, "pick", 2 * h, h, 1, &mut rng);
        GraphGenerator {
            config,
            store,
            type_emb,
            ds_proj,
            msg_fwd,
            msg_bwd,
            gru,
            graph_proj,
            head_addnode,
            head_addedge,
            head_pick,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Total trainable scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Overrides the worker count used by [`GraphGenerator::train`],
    /// [`GraphGenerator::evaluate`], and
    /// [`GraphGenerator::generate_top_k`]. Values below 1 clamp to 1.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.config.parallelism = workers.max(1);
    }

    /// A worker pool when `parallelism > 1`, else `None` (sequential).
    ///
    /// The requested worker count is clamped to the CPUs actually
    /// available: on a 1-CPU host, `parallelism = 2` used to *cost* (pool
    /// threads contending for one core plus per-batch scheduling) without
    /// buying any concurrency. Clamping routes such configs onto the exact
    /// sequential path — a pure cost change; results are bit-for-bit
    /// identical at every worker count by construction.
    fn worker_pool(&self) -> Option<ThreadPool> {
        let workers = effective_parallelism(self.config.parallelism);
        (workers > 1).then(|| {
            ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .expect("thread pool construction")
        })
    }

    /// Parameter tensors with their names, in registration order — the
    /// stable layout contract of the binary model snapshot. Registration
    /// order is fixed by [`GraphGenerator::new`], so index `i` here always
    /// denotes the same logical parameter for a given config.
    pub fn params(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.store
            .iter_ids()
            .map(|(id, name)| (name, self.store.value(id)))
    }

    /// Rebuilds a generator from its configuration and a parameter
    /// snapshot (tensors in registration order, as produced by
    /// [`GraphGenerator::params`]). Fails if the tensor count or any shape
    /// disagrees with what the config registers — the guard that a
    /// snapshot written by an incompatible config cannot silently load.
    pub fn from_params(
        config: GeneratorConfig,
        params: Vec<Tensor>,
    ) -> Result<GraphGenerator, String> {
        let mut generator = GraphGenerator::new(config);
        if params.len() != generator.store.len() {
            return Err(format!(
                "parameter snapshot holds {} tensors, config registers {}",
                params.len(),
                generator.store.len()
            ));
        }
        for (i, tensor) in params.into_iter().enumerate() {
            generator
                .store
                .load_tensor_at(i, tensor)
                .map_err(|e| e.to_string())?;
        }
        Ok(generator)
    }

    /// Computes node states for a partial graph: initial embeddings (type
    /// table rows; the dataset anchor uses the projected content
    /// embedding) refined by `prop_rounds` of bidirectional message
    /// passing with GRU updates.
    fn node_states(
        &self,
        tape: &mut Tape,
        graph: &TypedGraph,
        ds_input: TensorRef,
    ) -> kgpip_nn::Result<TensorRef> {
        let n = graph.types.len();
        let hdim = self.config.hidden;
        let ds_base = self.ds_proj.forward(tape, ds_input)?;
        let h0 = if n == 1 {
            ds_base
        } else {
            let table = tape.param(self.type_emb);
            let rest = tape.gather_rows(table, &graph.types[1..])?;
            tape.concat_rows(ds_base, rest)?
        };
        let mut h = tape.tanh(h0);
        for _ in 0..self.config.prop_rounds {
            let agg = if graph.edges.is_empty() {
                tape.input(Tensor::zeros(n, hdim))
            } else {
                let src: Vec<usize> = graph.edges.iter().map(|(u, _)| *u).collect();
                let dst: Vec<usize> = graph.edges.iter().map(|(_, v)| *v).collect();
                let hs = tape.gather_rows(h, &src)?;
                let hd = tape.gather_rows(h, &dst)?;
                let fwd_in = tape.concat_cols(hs, hd)?;
                let m_f = self.msg_fwd.forward(tape, fwd_in)?;
                let agg_f = tape.scatter_sum_rows(m_f, &dst, n)?;
                let bwd_in = tape.concat_cols(hd, hs)?;
                let m_b = self.msg_bwd.forward(tape, bwd_in)?;
                let agg_b = tape.scatter_sum_rows(m_b, &src, n)?;
                tape.add(agg_f, agg_b)?
            };
            h = self.gru.forward(tape, h, agg)?;
        }
        Ok(h)
    }

    /// Graph-level readout: projected sum of node states.
    fn graph_state(&self, tape: &mut Tape, h: TensorRef) -> kgpip_nn::Result<TensorRef> {
        let s = tape.sum_rows(h);
        let p = self.graph_proj.forward(tape, s)?;
        Ok(tape.tanh(p))
    }

    fn addnode_logits(
        &self,
        tape: &mut Tape,
        graph: &TypedGraph,
        ds_input: TensorRef,
    ) -> kgpip_nn::Result<TensorRef> {
        let h = self.node_states(tape, graph, ds_input)?;
        let hg = self.graph_state(tape, h)?;
        // Condition the decision directly on the dataset embedding (the
        // conditional-generation modification of §3.5): without this the
        // dataset signal must survive propagation + sum pooling, and in
        // practice the head collapses to the corpus-global mode.
        let ds = self.ds_proj.forward(tape, ds_input)?;
        let joint = tape.concat_cols(hg, ds)?;
        self.head_addnode.forward(tape, joint)
    }

    fn addedge_logit(
        &self,
        tape: &mut Tape,
        graph: &TypedGraph,
        ds_input: TensorRef,
    ) -> kgpip_nn::Result<TensorRef> {
        let h = self.node_states(tape, graph, ds_input)?;
        let hg = self.graph_state(tape, h)?;
        let newest = graph.types.len() - 1;
        let ht = tape.gather_rows(h, &[newest])?;
        let ds = self.ds_proj.forward(tape, ds_input)?;
        let pair = tape.concat_cols(hg, ht)?;
        let joint = tape.concat_cols(pair, ds)?;
        self.head_addedge.forward(tape, joint)
    }

    /// 1×(n−1) logits over candidate source nodes for an edge into the
    /// newest node.
    fn pick_logits(
        &self,
        tape: &mut Tape,
        graph: &TypedGraph,
        ds_input: TensorRef,
    ) -> kgpip_nn::Result<TensorRef> {
        let h = self.node_states(tape, graph, ds_input)?;
        let newest = graph.types.len() - 1;
        let candidates: Vec<usize> = (0..newest).collect();
        let hu = tape.gather_rows(h, &candidates)?;
        let ht = tape.gather_rows(h, &vec![newest; newest])?;
        let joint = tape.concat_cols(hu, ht)?;
        let scores = self.head_pick.forward(tape, joint)?;
        tape.reshape(scores, 1, newest)
    }

    fn ds_tensor(&self, embedding: &[f64]) -> Tensor {
        let mut data: Vec<f32> = embedding.iter().map(|x| *x as f32).collect();
        data.resize(self.config.embed_dim, 0.0);
        Tensor::from_vec(data, 1, self.config.embed_dim).expect("resized to embed_dim")
    }

    /// Teacher-forced loss of one example; returns the scalar loss ref.
    fn example_loss(&self, tape: &mut Tape, example: &TrainExample) -> kgpip_nn::Result<TensorRef> {
        let ds_input = tape.input(self.ds_tensor(&example.dataset_embedding));
        let decisions = decisions_for(&example.graph.types, &example.graph.edges);
        let mut partial = TypedGraph {
            types: vec![example.graph.types[0]],
            edges: Vec::new(),
        };
        let mut losses: Vec<TensorRef> = Vec::new();
        for decision in decisions {
            match decision {
                Decision::AddNode(ty) => {
                    let logits = self.addnode_logits(tape, &partial, ds_input)?;
                    losses.push(tape.softmax_ce(logits, &[ty])?);
                    partial.types.push(ty);
                }
                Decision::Stop => {
                    let logits = self.addnode_logits(tape, &partial, ds_input)?;
                    losses.push(tape.softmax_ce(logits, &[self.config.vocab_size])?);
                }
                Decision::AddEdge(yes) => {
                    let logit = self.addedge_logit(tape, &partial, ds_input)?;
                    losses.push(tape.sigmoid_bce(logit, &[f32::from(yes)])?);
                }
                Decision::PickNode(u) => {
                    let logits = self.pick_logits(tape, &partial, ds_input)?;
                    losses.push(tape.softmax_ce(logits, &[u])?);
                    let newest = partial.types.len() - 1;
                    partial.edges.push((u, newest));
                }
            }
        }
        let mut total = losses[0];
        for l in &losses[1..] {
            total = tape.add(total, *l)?;
        }
        Ok(tape.scale(total, 1.0 / losses.len() as f32))
    }

    /// Teacher-forced loss and parameter gradients for each example index
    /// in `idxs`, computed on one reusable tape. Each example's result is
    /// a pure function of the parameters and the example — independent of
    /// how indices are chunked across workers.
    fn forward_chunk(&self, idxs: &[usize], examples: &[TrainExample]) -> Vec<ExampleGrad> {
        let mut tape = Tape::new(&self.store);
        idxs.iter()
            .map(|&i| {
                tape.reset();
                let loss = self
                    .example_loss(&mut tape, &examples[i])
                    .expect("training graph shapes are internally consistent");
                let value = tape.value(loss).get(0, 0);
                (value, tape.backward(loss).expect("loss is scalar"))
            })
            .collect()
    }

    /// Per-example `(loss, grads)` for one mini-batch, in batch order.
    /// With a pool, the batch is split into contiguous chunks (one tape
    /// per worker) and results are re-flattened in batch-index order, so
    /// the output is identical to the sequential path.
    // xlint: allow(unclamped-rayon): the pool argument is built by worker_pool(), which clamps through effective_parallelism; `None` means sequential
    fn batch_forward(
        &self,
        batch: &[usize],
        examples: &[TrainExample],
        pool: Option<&ThreadPool>,
    ) -> Vec<ExampleGrad> {
        match pool {
            None => self.forward_chunk(batch, examples),
            Some(pool) => {
                let per_worker = batch.len().div_ceil(pool.current_num_threads().max(1));
                let chunks: Vec<&[usize]> = batch.chunks(per_worker.max(1)).collect();
                let per_chunk: Vec<Vec<ExampleGrad>> = pool.install(|| {
                    chunks
                        .par_iter()
                        .map(|c| self.forward_chunk(c, examples))
                        .collect()
                });
                per_chunk.into_iter().flatten().collect()
            }
        }
    }

    /// Trains with Adam over shuffled mini-batches; returns the mean loss
    /// per epoch. With `config.parallelism` > 1 the per-example forward
    /// and backward passes of each batch run on a worker pool; the
    /// gradient reduction always happens afterwards in batch-index order,
    /// so losses and parameters are bit-for-bit identical at any worker
    /// count (proven by `tests/determinism.rs`).
    pub fn train(&mut self, examples: &[TrainExample]) -> Vec<f32> {
        assert!(!examples.is_empty(), "training set must be non-empty");
        let pool = self.worker_pool();
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _epoch in 0..self.config.epochs {
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            for batch in order.chunks(self.config.batch_size.max(1)) {
                self.store.zero_grads();
                let per_example = self.batch_forward(batch, examples, pool.as_ref());
                let scale = 1.0 / batch.len() as f32;
                for (value, grads) in per_example {
                    epoch_loss += value;
                    for (id, g) in grads {
                        self.store.accumulate_grad_scaled(id, &g, scale);
                    }
                }
                self.store.clip_grads(5.0);
                adam.step(&mut self.store);
            }
            epoch_losses.push(epoch_loss / examples.len() as f32);
        }
        epoch_losses
    }

    /// Mean teacher-forced loss over a set of examples (no training).
    /// Parallelizes over `config.parallelism` workers; per-example losses
    /// are summed in example order, so the result is identical at any
    /// worker count.
    pub fn evaluate(&self, examples: &[TrainExample]) -> f32 {
        let idxs: Vec<usize> = (0..examples.len()).collect();
        let per_example: Vec<f32> = match self.worker_pool() {
            None => self.eval_chunk(&idxs, examples),
            Some(pool) => {
                let per_worker = idxs.len().div_ceil(pool.current_num_threads().max(1));
                let chunks: Vec<&[usize]> = idxs.chunks(per_worker.max(1)).collect();
                let per_chunk: Vec<Vec<f32>> = pool.install(|| {
                    chunks
                        .par_iter()
                        .map(|c| self.eval_chunk(c, examples))
                        .collect()
                });
                per_chunk.into_iter().flatten().collect()
            }
        };
        per_example.iter().sum::<f32>() / examples.len().max(1) as f32
    }

    /// Loss of each example index in `idxs` on one reusable tape.
    fn eval_chunk(&self, idxs: &[usize], examples: &[TrainExample]) -> Vec<f32> {
        let mut tape = Tape::new(&self.store);
        idxs.iter()
            .map(|&i| {
                tape.reset();
                let loss = self
                    .example_loss(&mut tape, &examples[i])
                    .expect("evaluation graph shapes are internally consistent");
                tape.value(loss).get(0, 0)
            })
            .collect()
    }

    /// Generates one graph conditionally from a prefix subgraph and a
    /// dataset content embedding. `temperature` > 1 flattens the decision
    /// distributions (more exploration); 1.0 samples the model faithfully.
    pub fn generate(
        &self,
        dataset_embedding: &[f64],
        prefix: &TypedGraph,
        temperature: f64,
        rng: &mut StdRng,
    ) -> GeneratedGraph {
        let ds = self.ds_tensor(dataset_embedding);
        let mut tape = Tape::new(&self.store);
        self.generate_with_tape(&mut tape, &ds, prefix, temperature, rng)
    }

    /// The autoregressive sampling loop. Every add-node / add-edge /
    /// pick-source decision resets `tape` and reuses its buffer pool, so
    /// one generation run performs a bounded number of heap allocations
    /// regardless of decision count.
    fn generate_with_tape<'s>(
        &'s self,
        tape: &mut Tape<'s>,
        ds_tensor: &Tensor,
        prefix: &TypedGraph,
        temperature: f64,
        rng: &mut StdRng,
    ) -> GeneratedGraph {
        let mut graph = prefix.clone();
        let mut log_prob = 0.0f64;
        let stop_class = self.config.vocab_size;
        while graph.types.len() < self.config.max_nodes {
            // Decide the next node type (or stop).
            let (choice, lp) = {
                tape.reset();
                let ds = tape.input_from(ds_tensor);
                let logits = self
                    .addnode_logits(tape, &graph, ds)
                    .expect("generation shapes are internally consistent");
                sample_softmax(tape.value(logits).row(0), temperature, &mut [], rng)
            };
            log_prob += lp;
            if choice == stop_class {
                break;
            }
            graph.types.push(choice);
            let newest = graph.types.len() - 1;
            // Edge loop for the new node.
            let mut edges_added = 0usize;
            while edges_added < self.config.max_edges_per_node {
                let (add, lp) = {
                    tape.reset();
                    let ds = tape.input_from(ds_tensor);
                    let logit = self
                        .addedge_logit(tape, &graph, ds)
                        .expect("generation shapes are internally consistent");
                    let p = sigmoid(tape.value(logit).get(0, 0) as f64 / temperature);
                    let add = rng.gen::<f64>() < p;
                    (
                        add,
                        if add {
                            p.max(1e-12).ln()
                        } else {
                            (1.0 - p).max(1e-12).ln()
                        },
                    )
                };
                log_prob += lp;
                if !add {
                    break;
                }
                // Pick the source node, masking already-present edges.
                let mut masked: Vec<usize> = graph
                    .edges
                    .iter()
                    .filter(|(_, v)| *v == newest)
                    .map(|(u, _)| *u)
                    .collect();
                let (source, lp) = {
                    tape.reset();
                    let ds = tape.input_from(ds_tensor);
                    let logits = self
                        .pick_logits(tape, &graph, ds)
                        .expect("generation shapes are internally consistent");
                    sample_softmax(tape.value(logits).row(0), temperature, &mut masked, rng)
                };
                log_prob += lp;
                graph.edges.push((source, newest));
                edges_added += 1;
                if graph.edges.iter().filter(|(_, v)| *v == newest).count() >= newest {
                    break; // connected to every earlier node already
                }
            }
        }
        GeneratedGraph { graph, log_prob }
    }

    /// Generates `k` graphs (deduplicated by structure, ranked by score) —
    /// the top-K predicted pipelines of §3.6.
    ///
    /// # Sampling budget and determinism
    ///
    /// The budget is `attempts = (k·4).max(8)` sampled candidates. Attempt
    /// `i` draws from its own RNG stream seeded with
    /// `seed ⊕ (i · GOLDEN)`, so each attempt's graph is a pure function
    /// of `(seed, i)` — never of worker count or of which attempts ran
    /// before it. Attempts are processed in fixed waves of [`SAMPLE_WAVE`]
    /// (parallelized over `config.parallelism` workers, merged in attempt
    /// order); when `config.distinct_target` is `Some(t)`, sampling stops
    /// at the first wave boundary with `t` distinct graphs collected,
    /// otherwise the whole budget is spent. Both the candidate set and the
    /// early-exit point are therefore bit-for-bit identical at any worker
    /// count (proven by `tests/determinism.rs`).
    pub fn generate_top_k(
        &self,
        dataset_embedding: &[f64],
        prefix: &TypedGraph,
        k: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<GeneratedGraph> {
        let attempts = (k * 4).max(8);
        let pool = self.worker_pool();
        let ds = self.ds_tensor(dataset_embedding);
        let run_attempt = |attempt: u64| -> GeneratedGraph {
            let mut rng = StdRng::seed_from_u64(seed ^ attempt.wrapping_mul(RNG_STREAM_GOLDEN));
            let mut tape = Tape::new(&self.store);
            self.generate_with_tape(&mut tape, &ds, prefix, temperature, &mut rng)
        };
        let mut out: Vec<GeneratedGraph> = Vec::new();
        let mut next = 0usize;
        while next < attempts {
            let wave: Vec<u64> = (next..(next + SAMPLE_WAVE).min(attempts))
                .map(|i| i as u64)
                .collect();
            next += wave.len();
            let sampled: Vec<GeneratedGraph> = match &pool {
                Some(pool) => pool.install(|| wave.par_iter().map(|&i| run_attempt(i)).collect()),
                None => wave.iter().map(|&i| run_attempt(i)).collect(),
            };
            for g in sampled {
                if !out.iter().any(|o| o.graph == g.graph) {
                    out.push(g);
                }
            }
            if self.config.distinct_target.is_some_and(|t| out.len() >= t) {
                break;
            }
        }
        out.sort_by(|a, b| b.log_prob.partial_cmp(&a.log_prob).unwrap());
        out.truncate(k);
        out
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

// The worker-count clamp moved to the bottom crate so every parallel
// stage (embeddings, trial evaluation, mining) can consult one canonical
// definition; re-exported here under its historical path.
pub use kgpip_tabular::effective_parallelism;

/// Temperature softmax sample over logits with class masking. Returns
/// `(choice, log probability of the choice at temperature 1)`.
fn sample_softmax(
    logits: &[f32],
    temperature: f64,
    masked: &mut [usize],
    rng: &mut StdRng,
) -> (usize, f64) {
    let n = logits.len();
    masked.sort_unstable();
    let allowed: Vec<usize> = (0..n)
        .filter(|i| masked.binary_search(i).is_err())
        .collect();
    debug_assert!(!allowed.is_empty());
    let max = allowed
        .iter()
        .map(|&i| logits[i] as f64)
        .fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = allowed
        .iter()
        .map(|&i| ((logits[i] as f64 - max) / temperature).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    let mut pick = allowed.len() - 1;
    for (j, w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            pick = j;
            break;
        }
    }
    let choice = allowed[pick];
    // Report the temperature-1 log-prob for comparable scores across
    // temperatures.
    let lse: f64 = {
        let s: f64 = allowed
            .iter()
            .map(|&i| (logits[i] as f64 - max).exp())
            .sum();
        max + s.ln()
    };
    (choice, logits[choice] as f64 - lse)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic corpus: dataset A always uses
    /// [read_csv -> standard_scaler -> xgboost], dataset B always uses
    /// [read_csv -> logistic_regression].
    fn corpus(vocab: &OpVocab) -> Vec<TrainExample> {
        let ds = vocab.id(PipelineOp::Dataset);
        let read = vocab.id(PipelineOp::ReadCsv);
        let scaler = vocab.id(PipelineOp::Transformer(1));
        let xgb = vocab.id(PipelineOp::Estimator(11));
        let logreg = vocab.id(PipelineOp::Estimator(0));
        let mut emb_a = vec![0.0; 48];
        emb_a[0] = 1.0;
        let mut emb_b = vec![0.0; 48];
        emb_b[1] = 1.0;
        let mut out = Vec::new();
        for _ in 0..6 {
            out.push(TrainExample {
                dataset_embedding: emb_a.clone(),
                graph: TypedGraph {
                    types: vec![ds, read, scaler, xgb],
                    edges: vec![(0, 1), (1, 2), (2, 3)],
                },
            });
            out.push(TrainExample {
                dataset_embedding: emb_b.clone(),
                graph: TypedGraph {
                    types: vec![ds, read, logreg],
                    edges: vec![(0, 1), (1, 2)],
                },
            });
        }
        out
    }

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            hidden: 16,
            prop_rounds: 1,
            epochs: 25,
            batch_size: 4,
            learning_rate: 0.02,
            seed: 3,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let vocab = OpVocab::new();
        let examples = corpus(&vocab);
        let mut generator = GraphGenerator::new(small_config());
        let losses = generator.train(&examples);
        assert!(losses.len() == 25);
        assert!(
            losses[losses.len() - 1] < losses[0] * 0.5,
            "loss {} -> {}",
            losses[0],
            losses[losses.len() - 1]
        );
    }

    #[test]
    fn trained_generator_reproduces_conditioned_pipelines() {
        let vocab = OpVocab::new();
        let examples = corpus(&vocab);
        let mut generator = GraphGenerator::new(small_config());
        generator.train(&examples);
        let prefix = TypedGraph::conditioning_prefix(&vocab);
        // Dataset A should mostly produce pipelines ending in xgboost.
        let mut emb_a = vec![0.0; 48];
        emb_a[0] = 1.0;
        let graphs = generator.generate_top_k(&emb_a, &prefix, 3, 1.0, 7);
        assert!(!graphs.is_empty());
        let xgb = vocab.id(PipelineOp::Estimator(11));
        assert!(
            graphs[0].graph.types.contains(&xgb),
            "top graph for dataset A should contain xgboost: {:?}",
            graphs[0]
                .graph
                .types
                .iter()
                .map(|&t| vocab.op(t).name())
                .collect::<Vec<_>>()
        );
        // Scores are finite and sorted descending.
        for pair in graphs.windows(2) {
            assert!(pair[0].log_prob >= pair[1].log_prob);
        }
        assert!(graphs.iter().all(|g| g.log_prob.is_finite()));
    }

    #[test]
    fn generation_respects_caps_and_prefix() {
        let vocab = OpVocab::new();
        let generator = GraphGenerator::new(GeneratorConfig {
            max_nodes: 5,
            max_edges_per_node: 2,
            hidden: 8,
            prop_rounds: 1,
            ..GeneratorConfig::default()
        });
        let prefix = TypedGraph::conditioning_prefix(&vocab);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let g = generator.generate(&vec![0.1; 48], &prefix, 1.0, &mut rng);
            assert!(g.graph.types.len() <= 5);
            assert_eq!(g.graph.types[0], vocab.id(PipelineOp::Dataset));
            assert_eq!(g.graph.types[1], vocab.id(PipelineOp::ReadCsv));
            assert!(g.graph.edges.contains(&(0, 1)));
            // No duplicate edges.
            let mut edges = g.graph.edges.clone();
            edges.sort_unstable();
            let before = edges.len();
            edges.dedup();
            assert_eq!(edges.len(), before);
            // Per-node incoming cap.
            for t in 0..g.graph.types.len() {
                let incoming = g.graph.edges.iter().filter(|(_, v)| *v == t).count();
                assert!(incoming <= 2 || t == 1);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let vocab = OpVocab::new();
        let generator = GraphGenerator::new(GeneratorConfig {
            hidden: 8,
            prop_rounds: 1,
            ..GeneratorConfig::default()
        });
        let prefix = TypedGraph::conditioning_prefix(&vocab);
        let a = generator.generate_top_k(&vec![0.5; 48], &prefix, 3, 1.0, 42);
        let b = generator.generate_top_k(&vec![0.5; 48], &prefix, 3, 1.0, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph);
        }
    }

    #[test]
    fn typed_graph_encode_decode_roundtrip() {
        let vocab = OpVocab::new();
        let g = PipelineGraph {
            ops: vec![
                PipelineOp::Dataset,
                PipelineOp::ReadCsv,
                PipelineOp::Transformer(3),
                PipelineOp::Estimator(12),
            ],
            edges: vec![(0, 1), (1, 2), (2, 3)],
        };
        let typed = TypedGraph::encode(&g, &vocab);
        assert_eq!(typed.decode(&vocab), g);
    }

    #[test]
    fn evaluate_matches_training_direction() {
        let vocab = OpVocab::new();
        let examples = corpus(&vocab);
        let mut generator = GraphGenerator::new(small_config());
        let before = generator.evaluate(&examples);
        generator.train(&examples);
        let after = generator.evaluate(&examples);
        assert!(after < before, "eval loss {before} -> {after}");
    }

    #[test]
    fn sample_softmax_masks_and_normalizes() {
        let mut rng = StdRng::seed_from_u64(1);
        // Class 1 has overwhelming logit but is masked.
        let (choice, lp) = sample_softmax(&[0.0, 100.0, 0.1], 1.0, &mut [1], &mut rng);
        assert_ne!(choice, 1);
        assert!(lp <= 0.0);
    }
}
