//! Decision sequences for teacher-forced generator training.
//!
//! A graph's canonical generation order is its node insertion order (the
//! filter emits nodes in dataflow order, with the dataset anchor first).
//! The sequence for each node `t ≥ 1`:
//!
//! 1. `AddNode(type of node t)`,
//! 2. for every edge `(u, t)` with `u < t`, in ascending `u`:
//!    `AddEdge(true)` then `PickNode(u)`,
//! 3. `AddEdge(false)` to close the node's edge loop,
//!
//! terminated by `Stop` after the last node. Node 0 (the dataset anchor)
//! is the conditioning prefix and emits no decisions.

/// A single teacher-forcing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Add a node with the given vocabulary type id.
    AddNode(usize),
    /// Whether to add (another) edge to the newly added node.
    AddEdge(bool),
    /// Which existing node the new edge comes from.
    PickNode(usize),
    /// Stop generating.
    Stop,
}

/// Builds the decision sequence for a graph whose node types have already
/// been mapped to vocabulary ids. Edges must satisfy `from < to` (the
/// filter's flow order guarantees this); violating edges are skipped.
#[allow(clippy::needless_range_loop)] // t is also the edge-target index
pub fn decisions_for(type_ids: &[usize], edges: &[(usize, usize)]) -> Vec<Decision> {
    let mut out = Vec::new();
    for t in 1..type_ids.len() {
        out.push(Decision::AddNode(type_ids[t]));
        let mut sources: Vec<usize> = edges
            .iter()
            .filter(|(u, v)| *v == t && *u < t)
            .map(|(u, _)| *u)
            .collect();
        sources.sort_unstable();
        sources.dedup();
        for u in sources {
            out.push(Decision::AddEdge(true));
            out.push(Decision::PickNode(u));
        }
        out.push(Decision::AddEdge(false));
    }
    out.push(Decision::Stop);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_sequence() {
        // dataset -> read_csv -> estimator
        let seq = decisions_for(&[0, 1, 15], &[(0, 1), (1, 2)]);
        assert_eq!(
            seq,
            vec![
                Decision::AddNode(1),
                Decision::AddEdge(true),
                Decision::PickNode(0),
                Decision::AddEdge(false),
                Decision::AddNode(15),
                Decision::AddEdge(true),
                Decision::PickNode(1),
                Decision::AddEdge(false),
                Decision::Stop,
            ]
        );
    }

    #[test]
    fn multi_parent_node_emits_multiple_edges() {
        // fit (node 3) receives from both split (1) and estimator (2).
        let seq = decisions_for(&[0, 1, 5, 26], &[(0, 1), (1, 3), (2, 3)]);
        let picks: Vec<usize> = seq
            .iter()
            .filter_map(|d| match d {
                Decision::PickNode(u) => Some(*u),
                _ => None,
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2]);
        // Node 2 (the estimator) has no incoming edge: its edge loop is
        // AddEdge(false) immediately.
        let node2_at = seq.iter().position(|d| *d == Decision::AddNode(5)).unwrap();
        assert_eq!(seq[node2_at + 1], Decision::AddEdge(false));
    }

    #[test]
    fn backward_edges_are_skipped() {
        let seq = decisions_for(&[0, 1], &[(1, 0)]);
        assert_eq!(
            seq,
            vec![
                Decision::AddNode(1),
                Decision::AddEdge(false),
                Decision::Stop
            ]
        );
    }

    #[test]
    fn singleton_graph_is_just_stop() {
        assert_eq!(decisions_for(&[0], &[]), vec![Decision::Stop]);
    }
}
