//! Bit-for-bit determinism suite for the parallel generator engine.
//!
//! The contract (DESIGN.md "Tensor kernels & parallel training"): every
//! public entry point of [`GraphGenerator`] produces identical results at
//! any `parallelism` setting — identical epoch losses, identical trained
//! parameters, identical sampled graphs and log-probabilities. Worker
//! count is a throughput knob, never a semantics knob.

use kgpip_codegraph::{OpVocab, PipelineOp};
use kgpip_graphgen::model::TypedGraph;
use kgpip_graphgen::{GeneratorConfig, GraphGenerator, TrainExample};

/// A small two-dataset corpus with deterministic pipelines per dataset.
fn corpus(vocab: &OpVocab) -> Vec<TrainExample> {
    let ds = vocab.id(PipelineOp::Dataset);
    let read = vocab.id(PipelineOp::ReadCsv);
    let scaler = vocab.id(PipelineOp::Transformer(1));
    let xgb = vocab.id(PipelineOp::Estimator(11));
    let logreg = vocab.id(PipelineOp::Estimator(0));
    let mut emb_a = vec![0.0; 48];
    emb_a[0] = 1.0;
    let mut emb_b = vec![0.0; 48];
    emb_b[1] = 1.0;
    let mut out = Vec::new();
    for _ in 0..5 {
        out.push(TrainExample {
            dataset_embedding: emb_a.clone(),
            graph: TypedGraph {
                types: vec![ds, read, scaler, xgb],
                edges: vec![(0, 1), (1, 2), (2, 3)],
            },
        });
        out.push(TrainExample {
            dataset_embedding: emb_b.clone(),
            graph: TypedGraph {
                types: vec![ds, read, logreg],
                edges: vec![(0, 1), (1, 2)],
            },
        });
    }
    out
}

fn config(parallelism: usize) -> GeneratorConfig {
    GeneratorConfig {
        hidden: 12,
        prop_rounds: 1,
        epochs: 4,
        batch_size: 4,
        learning_rate: 0.02,
        seed: 11,
        parallelism,
        ..GeneratorConfig::default()
    }
}

/// Serializes a generator's state with the parallelism knob normalized,
/// so two generators that differ only in worker count compare equal.
fn state_fingerprint(generator: &mut GraphGenerator) -> String {
    generator.set_parallelism(1);
    serde_json::to_string(generator).expect("generator serializes")
}

#[test]
fn train_is_bitwise_identical_at_any_worker_count() {
    let vocab = OpVocab::new();
    let examples = corpus(&vocab);
    let mut sequential = GraphGenerator::new(config(1));
    let losses_seq = sequential.train(&examples);
    for workers in [2, 4] {
        let mut parallel = GraphGenerator::new(config(workers));
        let losses_par = parallel.train(&examples);
        assert_eq!(losses_seq.len(), losses_par.len());
        for (epoch, (a, b)) in losses_seq.iter().zip(&losses_par).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "epoch {epoch} loss diverged at parallelism {workers}: {a} vs {b}"
            );
        }
        assert_eq!(
            state_fingerprint(&mut sequential),
            state_fingerprint(&mut parallel),
            "trained parameters diverged at parallelism {workers}"
        );
    }
}

#[test]
fn evaluate_is_bitwise_identical_at_any_worker_count() {
    let vocab = OpVocab::new();
    let examples = corpus(&vocab);
    let mut generator = GraphGenerator::new(config(1));
    generator.train(&examples);
    let sequential = generator.evaluate(&examples);
    for workers in [2, 3, 5] {
        generator.set_parallelism(workers);
        let parallel = generator.evaluate(&examples);
        assert_eq!(
            sequential.to_bits(),
            parallel.to_bits(),
            "evaluate diverged at parallelism {workers}"
        );
    }
}

#[test]
fn generate_top_k_is_identical_at_any_worker_count() {
    let vocab = OpVocab::new();
    let examples = corpus(&vocab);
    let mut generator = GraphGenerator::new(config(1));
    generator.train(&examples);
    let prefix = TypedGraph::conditioning_prefix(&vocab);
    let mut emb = vec![0.0; 48];
    emb[0] = 1.0;
    let sequential = generator.generate_top_k(&emb, &prefix, 3, 1.2, 42);
    assert!(!sequential.is_empty());
    for workers in [2, 3, 8] {
        generator.set_parallelism(workers);
        let parallel = generator.generate_top_k(&emb, &prefix, 3, 1.2, 42);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.graph, p.graph, "graph diverged at parallelism {workers}");
            assert_eq!(
                s.log_prob.to_bits(),
                p.log_prob.to_bits(),
                "log-prob diverged at parallelism {workers}"
            );
        }
    }
}

/// The distinct-candidate target stops sampling at a wave boundary: the
/// early-exited result is a subset of the full-budget result, identical
/// at any worker count, and never larger than the full budget's output.
#[test]
fn distinct_target_early_exit_is_deterministic_and_bounded() {
    // Tiny untrained model over a 3-type vocabulary with at most one
    // generated node: at most 10 possible graphs, so every distinct graph
    // fits within k and truncation never hides the subset relation.
    let base = GeneratorConfig {
        vocab_size: 3,
        embed_dim: 4,
        hidden: 6,
        prop_rounds: 1,
        max_nodes: 3,
        max_edges_per_node: 1,
        seed: 5,
        ..GeneratorConfig::default()
    };
    let prefix = TypedGraph {
        types: vec![0, 1],
        edges: vec![(0, 1)],
    };
    let emb = vec![0.3; 4];
    let k = 16; // attempts = 64; far above the distinct-graph count
    let full = GraphGenerator::new(base.clone()).generate_top_k(&emb, &prefix, k, 1.0, 9);
    let capped = GraphGenerator::new(GeneratorConfig {
        distinct_target: Some(2),
        ..base.clone()
    })
    .generate_top_k(&emb, &prefix, k, 1.0, 9);
    assert!(capped.len() >= 2, "target of 2 distinct graphs was reached");
    assert!(capped.len() <= full.len());
    for g in &capped {
        assert!(
            full.iter().any(|f| f.graph == g.graph),
            "early-exited candidate missing from the full-budget run"
        );
    }
    // And the early exit is itself worker-count independent.
    let mut parallel = GraphGenerator::new(GeneratorConfig {
        distinct_target: Some(2),
        parallelism: 4,
        ..base
    });
    parallel.set_parallelism(4);
    let capped_par = parallel.generate_top_k(&emb, &prefix, k, 1.0, 9);
    assert_eq!(capped.len(), capped_par.len());
    for (a, b) in capped.iter().zip(&capped_par) {
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
    }
}
