//! Property-based tests for the graph generator.

use kgpip_codegraph::OpVocab;
use kgpip_graphgen::model::TypedGraph;
use kgpip_graphgen::sequence::{decisions_for, Decision};
use kgpip_graphgen::{GeneratorConfig, GraphGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rebuilds a graph by replaying its decision sequence; must reproduce the
/// original (modulo backward edges, which the sequence drops).
fn replay(types0: usize, decisions: &[Decision]) -> TypedGraph {
    let mut g = TypedGraph {
        types: vec![types0],
        edges: vec![],
    };
    for d in decisions {
        match d {
            Decision::AddNode(t) => g.types.push(*t),
            Decision::PickNode(u) => {
                let newest = g.types.len() - 1;
                g.edges.push((*u, newest));
            }
            Decision::AddEdge(_) | Decision::Stop => {}
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// decisions_for is invertible: replaying the sequence rebuilds the
    /// graph exactly (forward edges, sorted per node).
    #[test]
    fn decision_sequence_roundtrip(
        types in proptest::collection::vec(0usize..20, 1..10),
        edge_seeds in proptest::collection::vec((0usize..10, 0usize..10), 0..15),
    ) {
        let n = types.len();
        let mut edges: Vec<(usize, usize)> = edge_seeds
            .iter()
            .map(|&(a, b)| (a % n, b % n))
            .filter(|(a, b)| a < b)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let g = TypedGraph { types: types.clone(), edges: edges.clone() };
        let seq = decisions_for(&g.types, &g.edges);
        let rebuilt = replay(types[0], &seq);
        prop_assert_eq!(rebuilt.types, types);
        let mut rebuilt_edges = rebuilt.edges;
        rebuilt_edges.sort_unstable();
        prop_assert_eq!(rebuilt_edges, edges);
        // Sequence always ends with Stop.
        prop_assert_eq!(*seq.last().unwrap(), Decision::Stop);
    }

    /// The untrained generator already respects every structural cap, for
    /// any embedding.
    #[test]
    fn generation_respects_caps(
        seed in 0u64..100,
        emb_scale in -2.0f64..2.0,
        max_nodes in 3usize..10,
    ) {
        let vocab = OpVocab::new();
        let generator = GraphGenerator::new(GeneratorConfig {
            hidden: 8,
            prop_rounds: 1,
            max_nodes,
            max_edges_per_node: 2,
            seed,
            ..GeneratorConfig::default()
        });
        let prefix = TypedGraph::conditioning_prefix(&vocab);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generator.generate(&vec![emb_scale; 48], &prefix, 1.0, &mut rng);
        prop_assert!(g.graph.types.len() <= max_nodes.max(prefix.types.len()));
        prop_assert!(g.log_prob.is_finite() && g.log_prob <= 0.0);
        for t in 2..g.graph.types.len() {
            let incoming = g.graph.edges.iter().filter(|(_, v)| *v == t).count();
            prop_assert!(incoming <= 2);
        }
    }

    /// Teacher-forced loss is finite and positive for any consistent
    /// example.
    #[test]
    fn evaluate_is_finite(
        seed in 0u64..50,
        chain_len in 2usize..6,
    ) {
        let vocab = OpVocab::new();
        let types: Vec<usize> = (0..chain_len).map(|i| i % vocab.len()).collect();
        let edges: Vec<(usize, usize)> = (0..chain_len - 1).map(|i| (i, i + 1)).collect();
        let generator = GraphGenerator::new(GeneratorConfig {
            hidden: 8,
            prop_rounds: 1,
            seed,
            ..GeneratorConfig::default()
        });
        let loss = generator.evaluate(&[kgpip_graphgen::TrainExample {
            dataset_embedding: vec![0.1; 48],
            graph: TypedGraph { types, edges },
        }]);
        prop_assert!(loss.is_finite());
        prop_assert!(loss > 0.0);
    }
}
