//! The AL baseline (Cambronero & Rinard 2019).
//!
//! AL "mined existing Kaggle notebooks using dynamic analysis (i.e.
//! actually running the scripts)" and replays the best historical pipeline
//! of the nearest dataset — nearest by *meta-features*, not content. The
//! paper's evaluation found that "it failed on many of the datasets during
//! the fitting process" (§4.4, Figure 6 is restricted to "the datasets on
//! which AL worked"). Both behaviours are reproduced: verbatim replay from
//! a small replay table (dynamic analysis scales poorly — AL's paper used
//! fewer than 10 datasets), and hard failures whenever the new dataset's
//! schema leaves the replay entry's supported envelope.

use crate::budget::TimeBudget;
use crate::meta::{meta_distance, meta_features, META_DIM};
use crate::space::{self, Skeleton};
use crate::trial::{Candidate, Evaluator, HpoResult, Optimizer};
use crate::{HpoError, Result};
use kgpip_learners::{EstimatorKind, TransformerKind};
use kgpip_tabular::{Dataset, Task};

/// One replay-table entry: the best pipeline AL observed running on one
/// historical dataset, plus the schema envelope that run covered.
#[derive(Debug, Clone)]
pub struct ReplayEntry {
    /// Meta-features of the historical dataset.
    pub features: [f64; META_DIM],
    /// The pipeline skeleton that won there.
    pub skeleton: Skeleton,
    /// Whether the historical run involved text columns (replaying it on
    /// text requires the exact vectorization path it executed).
    pub handles_text: bool,
    /// Whether it involved missing values.
    pub handles_missing: bool,
    /// The task of the historical run.
    pub task_classification: bool,
}

/// The AL baseline.
#[derive(Clone)]
pub struct Al {
    seed: u64,
    replay: Vec<ReplayEntry>,
}

impl Al {
    /// Creates AL with its small built-in replay table (dynamic analysis
    /// limited AL to a handful of datasets).
    pub fn new(seed: u64) -> Al {
        Al {
            seed,
            replay: builtin_replay_table(),
        }
    }

    /// Creates AL with an explicit replay table.
    pub fn with_table(seed: u64, replay: Vec<ReplayEntry>) -> Al {
        Al { seed, replay }
    }

    /// Number of replay entries.
    pub fn table_len(&self) -> usize {
        self.replay.len()
    }
}

impl Optimizer for Al {
    fn optimize(&mut self, train: &Dataset, budget: &TimeBudget) -> Result<HpoResult> {
        let target = meta_features(train);
        let classification = train.task.is_classification();
        let (_, num_cat, num_text) = {
            let (n, c, t) = train.features.kind_counts();
            (n, c, t)
        };
        let has_missing = train.features.missing_cells() > 0;

        // Nearest historical dataset with a matching task.
        let entry = self
            .replay
            .iter()
            .filter(|e| e.task_classification == classification)
            .min_by(|a, b| {
                meta_distance(&a.features, &target)
                    .partial_cmp(&meta_distance(&b.features, &target))
                    .unwrap()
            })
            .ok_or_else(|| HpoError::BaselineFailure("no replay entry for this task type".into()))?
            .clone();

        // Dynamic-analysis brittleness: the replayed script only covers
        // the exact data situations it once executed.
        if num_text > 0 && !entry.handles_text {
            return Err(HpoError::BaselineFailure(
                "replayed script has no text-vectorization path".into(),
            ));
        }
        if has_missing && !entry.handles_missing {
            return Err(HpoError::BaselineFailure(
                "replayed script crashes on missing values".into(),
            ));
        }
        if let Task::MultiClass(k) = train.task {
            // AL's mined binary scripts hard-code binary label handling.
            if k > 10 {
                return Err(HpoError::BaselineFailure(format!(
                    "replayed script cannot handle {k} classes"
                )));
            }
        }
        if num_cat > 0
            && entry.skeleton.transformers.is_empty()
            && matches!(
                entry.skeleton.estimator,
                EstimatorKind::LogisticRegression | EstimatorKind::LinearSvm | EstimatorKind::Knn
            )
        {
            return Err(HpoError::BaselineFailure(
                "replayed linear script lacks categorical encoding".into(),
            ));
        }

        // Verbatim replay: one evaluation, default hyperparameters, no
        // search (AL does not do HPO). Unlike the search engines, AL has
        // no anytime contract: an already-expired budget refuses even the
        // first run.
        if budget.expired() {
            return Err(HpoError::BudgetExhausted);
        }
        let evaluator = Evaluator::new(train, self.seed, budget)?;
        let replayed = Candidate::new(
            entry.skeleton.clone(),
            space::default_config(entry.skeleton.estimator),
        );
        let outcome = evaluator
            .evaluate_batch(std::slice::from_ref(&replayed))
            .into_iter()
            .next()
            .ok_or(HpoError::BudgetExhausted)?;
        let score = outcome
            .score
            .ok_or_else(|| HpoError::BaselineFailure("replayed pipeline failed to fit".into()))?;
        let spec = outcome.spec.clone();
        Ok(HpoResult::single(spec, score, vec![outcome]))
    }

    fn optimize_skeleton(
        &mut self,
        _train: &Dataset,
        _skeleton: &Skeleton,
        _budget: &TimeBudget,
    ) -> Result<HpoResult> {
        // AL is a whole-pipeline replayer; it exposes no skeleton-mode HPO.
        Err(HpoError::BaselineFailure(
            "AL does not support skeleton-mode hyperparameter search".into(),
        ))
    }

    fn capabilities(&self) -> String {
        let estimators: Vec<EstimatorKind> =
            self.replay.iter().map(|e| e.skeleton.estimator).collect();
        space::capabilities_json("al", &estimators)
    }

    fn clone_boxed(&self) -> Box<dyn Optimizer + Send> {
        Box::new(self.clone())
    }
}

/// AL's built-in replay table: a handful of historical runs, as in the
/// original paper's small dynamic-analysis corpus.
fn builtin_replay_table() -> Vec<ReplayEntry> {
    let f = |v: [f64; META_DIM]| v;
    vec![
        ReplayEntry {
            features: f([0.5, 0.2, 1.0, 0.0, 0.0, 0.2, 0.1, 0.0, 0.2, 0.4]),
            skeleton: Skeleton {
                transformers: vec![TransformerKind::StandardScaler],
                estimator: EstimatorKind::RandomForest,
            },
            handles_text: false,
            handles_missing: false,
            task_classification: true,
        },
        ReplayEntry {
            features: f([0.6, 0.3, 0.9, 0.1, 0.0, 0.3, 0.2, 0.0, 0.3, 0.5]),
            skeleton: Skeleton::bare(EstimatorKind::GradientBoosting),
            handles_text: false,
            handles_missing: true,
            task_classification: true,
        },
        ReplayEntry {
            features: f([0.4, 0.15, 0.8, 0.2, 0.0, 0.15, 0.0, 0.05, 0.1, 0.3]),
            skeleton: Skeleton {
                transformers: vec![TransformerKind::OneHotEncoder],
                estimator: EstimatorKind::LogisticRegression,
            },
            handles_text: false,
            handles_missing: true,
            task_classification: true,
        },
        ReplayEntry {
            features: f([0.55, 0.25, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.2, 0.5]),
            skeleton: Skeleton::bare(EstimatorKind::XgBoost),
            handles_text: false,
            handles_missing: false,
            task_classification: false,
        },
        ReplayEntry {
            features: f([0.45, 0.2, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.1, 0.4]),
            skeleton: Skeleton {
                transformers: vec![TransformerKind::StandardScaler],
                estimator: EstimatorKind::Ridge,
            },
            handles_text: false,
            handles_missing: false,
            task_classification: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_tabular::{Column, DataFrame};

    fn numeric_dataset(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 4.5)).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        Dataset::new("num", f, y, Task::Binary).unwrap()
    }

    #[test]
    fn replays_on_clean_numeric_data() {
        let ds = numeric_dataset(200);
        let mut al = Al::new(0);
        let result = al.optimize(&ds, &TimeBudget::seconds(2.0)).unwrap();
        assert_eq!(result.trials, 1, "AL replays exactly one pipeline");
        assert!(result.valid_score > 0.8);
    }

    #[test]
    fn fails_on_text_features() {
        let f = DataFrame::from_columns(vec![
            ("x".to_string(), Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
            (
                "review".to_string(),
                Column::text(vec![
                    Some("great product would buy again and again"),
                    Some("terrible quality waste of money for sure"),
                    Some("mediocre experience overall but acceptable price"),
                    Some("excellent service and very fast shipping here"),
                ]),
            ),
        ])
        .unwrap();
        let ds = Dataset::new("text", f, vec![1.0, 0.0, 0.0, 1.0], Task::Binary).unwrap();
        let mut al = Al::new(0);
        assert!(matches!(
            al.optimize(&ds, &TimeBudget::seconds(1.0)),
            Err(HpoError::BaselineFailure(_))
        ));
    }

    #[test]
    fn fails_on_many_classes() {
        let x: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..300).map(|i| (i % 20) as f64).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        let ds = Dataset::new("many", f, y, Task::MultiClass(20)).unwrap();
        let mut al = Al::new(0);
        assert!(matches!(
            al.optimize(&ds, &TimeBudget::seconds(1.0)),
            Err(HpoError::BaselineFailure(_))
        ));
    }

    #[test]
    fn regression_uses_regression_entries() {
        let x: Vec<f64> = (0..150).map(|i| (i % 20) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        let ds = Dataset::new("reg", f, y, Task::Regression).unwrap();
        let mut al = Al::new(0);
        let result = al.optimize(&ds, &TimeBudget::seconds(2.0)).unwrap();
        assert!(
            !result.spec.estimator.supports(Task::Binary)
                || result.spec.estimator == EstimatorKind::XgBoost
        );
        assert!(result.valid_score > 0.8, "r2 {}", result.valid_score);
    }

    #[test]
    fn no_skeleton_mode() {
        let ds = numeric_dataset(50);
        let mut al = Al::new(0);
        assert!(al
            .optimize_skeleton(
                &ds,
                &Skeleton::bare(EstimatorKind::XgBoost),
                &TimeBudget::seconds(1.0)
            )
            .is_err());
    }

    #[test]
    fn empty_replay_table_fails_cleanly() {
        let ds = numeric_dataset(50);
        let mut al = Al::with_table(0, vec![]);
        assert!(matches!(
            al.optimize(&ds, &TimeBudget::seconds(1.0)),
            Err(HpoError::BaselineFailure(_))
        ));
    }
}
