//! Auto-Sklearn-style Bayesian optimization.
//!
//! Reproduces the defining behaviours of Auto-Sklearn (Feurer et al. 2015;
//! the paper evaluates v0.14):
//!
//! * **meta-learning warm start**: a knowledge base of (meta-features →
//!   configurations that historically worked) is ranked by meta-feature
//!   distance to the new dataset and its top entries are evaluated first,
//! * **SMAC-style model-based search**: a random-forest surrogate predicts
//!   trial scores; candidates are chosen by expected improvement, with the
//!   forest's per-tree spread as the uncertainty estimate,
//! * **greedy ensemble selection** (Caruana-style) over the trial history,
//!   deployed as a majority-vote / mean ensemble.

use crate::budget::TimeBudget;
use crate::meta::{meta_distance, meta_features, META_DIM};
use crate::space::{self, Skeleton};
use crate::trial::{Candidate, Evaluator, HpoResult, Optimizer, TrialOutcome};
use crate::{HpoError, Result};
use kgpip_learners::estimators::tree::{Forest, TreeConfig};
use kgpip_learners::pipeline::PipelineSpec;
use kgpip_learners::{Estimator, EstimatorKind, Matrix, Params};
use kgpip_tabular::{Dataset, Task};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Maximum hyperparameter dimensions across all learners (for surrogate
/// input padding).
const MAX_CONFIG_DIMS: usize = 6;
/// Random candidates scored by the surrogate per SMAC iteration.
const SMAC_CANDIDATES: usize = 32;
/// Maximum ensemble members.
const MAX_ENSEMBLE: usize = 5;
/// Portfolio size of the meta-learning warm start: like Auto-Sklearn's
/// limited portfolio, only the top-ranked candidates are evaluated at
/// their default configurations before model-based search takes over.
const PORTFOLIO_SIZE: usize = 6;

/// The Auto-Sklearn-style optimizer.
#[derive(Clone)]
pub struct AutoSklearn {
    seed: u64,
    estimators: Vec<EstimatorKind>,
    /// Meta-knowledge base: (source-dataset meta-features, estimator that
    /// won there). Seeded with built-in priors; callers can extend it.
    knowledge: Vec<([f64; META_DIM], EstimatorKind)>,
    /// Whether to run ensemble selection after the search.
    pub ensembling: bool,
    /// Concurrent trials per round (1 = sequential).
    parallelism: usize,
    /// Trial caching (encoded datasets + transformer-prefix memo).
    trial_cache: bool,
}

impl AutoSklearn {
    /// Creates the engine with its built-in meta-knowledge base.
    pub fn new(seed: u64) -> AutoSklearn {
        AutoSklearn {
            seed,
            estimators: EstimatorKind::ALL.to_vec(),
            knowledge: builtin_knowledge(),
            ensembling: true,
            parallelism: 1,
            trial_cache: true,
        }
    }

    /// Builder-style parallelism knob (clamped to ≥ 1).
    pub fn with_parallelism(mut self, parallelism: usize) -> AutoSklearn {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder-style trial-cache knob (on by default; off runs every
    /// trial on the original raw-frame path).
    pub fn with_trial_cache(mut self, enabled: bool) -> AutoSklearn {
        self.trial_cache = enabled;
        self
    }

    /// Adds a meta-learning entry (observed: this estimator won on a
    /// dataset with these meta-features).
    pub fn add_knowledge(&mut self, features: [f64; META_DIM], winner: EstimatorKind) {
        self.knowledge.push((features, winner));
    }

    /// Warm-start order: estimators ranked by the meta-distance of their
    /// closest knowledge-base entry to the new dataset.
    fn warm_start_order(&self, ds: &Dataset) -> Vec<EstimatorKind> {
        let target = meta_features(ds);
        let mut ranked: Vec<(f64, EstimatorKind)> = self
            .estimators
            .iter()
            .filter(|k| k.supports(ds.task))
            .map(|&k| {
                let best = self
                    .knowledge
                    .iter()
                    .filter(|(_, w)| *w == k)
                    .map(|(f, _)| meta_distance(f, &target))
                    .fold(f64::INFINITY, f64::min);
                (best, k)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        ranked.into_iter().map(|(_, k)| k).collect()
    }

    /// Surrogate input: learner one-hot ++ padded normalized config.
    fn encode_trial(kind: EstimatorKind, params: &Params) -> Vec<f64> {
        let mut x = vec![0.0; EstimatorKind::ALL.len() + MAX_CONFIG_DIMS];
        let pos = EstimatorKind::ALL.iter().position(|k| *k == kind).unwrap();
        x[pos] = 1.0;
        for (i, v) in space::encode_config(kind, params).into_iter().enumerate() {
            if i < MAX_CONFIG_DIMS {
                x[EstimatorKind::ALL.len() + i] = v;
            }
        }
        x
    }

    /// The batched warm-start + SMAC search driving the shared
    /// [`Evaluator`]. The portfolio phase proposes default configurations
    /// in chunks of `parallelism`; the SMAC phase proposes the top-EI
    /// candidates of each surrogate round as one batch. With
    /// `parallelism == 1` both phases reproduce the historical
    /// one-trial-at-a-time loop bit-for-bit for a fixed seed (same rng
    /// draw order, same strict-improvement argmax).
    fn run(
        &self,
        train: &Dataset,
        skeleton_for: impl Fn(EstimatorKind) -> Skeleton,
        portfolio: &[EstimatorKind],
        learners: &[EstimatorKind],
        budget: &TimeBudget,
    ) -> Result<HpoResult> {
        if learners.is_empty() {
            return Err(HpoError::NoUsableLearner);
        }
        let evaluator = Evaluator::new(train, self.seed, budget)?
            .with_parallelism(self.parallelism)
            .with_cache(self.trial_cache);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0xa5c1));
        let round = self.parallelism.max(1);

        // --- Phase 1: meta-learning warm start (default configs of the
        // portfolio, in knowledge-base order). ---
        for chunk in portfolio.chunks(round) {
            let batch: Vec<Candidate> = chunk
                .iter()
                .map(|&kind| Candidate::new(skeleton_for(kind), space::default_config(kind)))
                .collect();
            if evaluator.evaluate_batch(&batch).len() < batch.len() {
                break; // gate refused: budget exhausted mid-portfolio
            }
        }

        // --- Phase 2: SMAC loop. ---
        while !evaluator.budget_expired() {
            // Fit the surrogate on completed trials.
            let history = evaluator.history();
            let observed: Vec<(&TrialOutcome, f64)> = history
                .iter()
                .filter_map(|t| t.score.map(|s| (t, s)))
                .collect();
            let proposals = round.min(SMAC_CANDIDATES);
            let batch: Vec<Candidate> = if observed.len() >= 4 {
                let xs: Vec<Vec<f64>> = observed
                    .iter()
                    .map(|(t, _)| Self::encode_trial(t.spec.estimator, &t.spec.params))
                    .collect();
                let ys: Vec<f64> = observed.iter().map(|(_, s)| *s).collect();
                let x = Matrix::from_rows(&xs).map_err(|e| HpoError::Learner(e.to_string()))?;
                let mut surrogate = Forest::new(
                    12,
                    TreeConfig {
                        max_depth: 6,
                        max_features: 0.7,
                        seed: self.seed,
                        ..TreeConfig::default()
                    },
                    true,
                    EstimatorKind::RandomForest,
                );
                surrogate
                    .fit(&x, &ys, Task::Regression)
                    .map_err(|e| HpoError::Learner(e.to_string()))?;
                let best_score = observed
                    .iter()
                    .map(|(_, s)| *s)
                    .fold(f64::NEG_INFINITY, f64::max);
                // Score random candidates by expected improvement and
                // propose the top `proposals` of them (stable sort: EI
                // ties keep draw order, so the top pick matches the
                // sequential strict-improvement argmax).
                let mut scored: Vec<(f64, EstimatorKind, Params)> =
                    Vec::with_capacity(SMAC_CANDIDATES);
                for _ in 0..SMAC_CANDIDATES {
                    let kind = learners[rand::Rng::gen_range(&mut rng, 0..learners.len())];
                    let params = space::sample_config(kind, &mut rng);
                    let enc = vec![Self::encode_trial(kind, &params)];
                    let xm =
                        Matrix::from_rows(&enc).map_err(|e| HpoError::Learner(e.to_string()))?;
                    let per_tree = surrogate
                        .predict_per_tree(&xm)
                        .map_err(|e| HpoError::Learner(e.to_string()))?;
                    let preds: Vec<f64> = per_tree.iter().map(|t| t[0]).collect();
                    let mu = preds.iter().sum::<f64>() / preds.len() as f64;
                    let var =
                        preds.iter().map(|p| (p - mu).powi(2)).sum::<f64>() / preds.len() as f64;
                    let ei = expected_improvement(mu, var.sqrt(), best_score);
                    scored.push((ei, kind, params));
                }
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                scored
                    .into_iter()
                    .take(proposals)
                    .map(|(_, kind, params)| Candidate::new(skeleton_for(kind), params))
                    .collect()
            } else {
                // Too few observations for a surrogate: random proposals.
                (0..proposals)
                    .map(|_| {
                        let kind = learners[rand::Rng::gen_range(&mut rng, 0..learners.len())];
                        let params = space::sample_config(kind, &mut rng);
                        Candidate::new(skeleton_for(kind), params)
                    })
                    .collect()
            };
            if evaluator.evaluate_batch(&batch).is_empty() {
                break;
            }
        }

        let mut result = evaluator.result()?;
        if self.ensembling {
            self.select_ensemble(&evaluator, &mut result);
        }
        Ok(result)
    }

    /// Greedy forward ensemble selection over the top unique trial specs.
    fn select_ensemble(&self, evaluator: &Evaluator, result: &mut HpoResult) {
        let mut ranked: Vec<(&TrialOutcome, f64)> = result
            .history
            .iter()
            .filter_map(|t| t.score.map(|s| (t, s)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let mut pool: Vec<(PipelineSpec, Vec<f64>)> = Vec::new();
        for (t, _) in ranked.into_iter().take(8) {
            if pool.iter().any(|(s, _)| *s == t.spec) {
                continue;
            }
            if let Some(preds) = evaluator.predictions(&t.spec) {
                pool.push((t.spec.clone(), preds));
            }
        }
        if pool.len() < 2 {
            return;
        }
        let valid = evaluator.validation();
        let classification = valid.task.is_classification();
        let mut members: Vec<usize> = Vec::new();
        let mut best_score = f64::NEG_INFINITY;
        while members.len() < MAX_ENSEMBLE {
            let mut best_add: Option<(usize, f64)> = None;
            for cand in 0..pool.len() {
                let mut preds: Vec<Vec<f64>> = members.iter().map(|&m| pool[m].1.clone()).collect();
                preds.push(pool[cand].1.clone());
                let combined = crate::trial::combine_predictions(&preds, classification);
                let score = kgpip_learners::pipeline::score_predictions(valid, &combined);
                if best_add.is_none_or(|(_, b)| score > b) {
                    best_add = Some((cand, score));
                }
            }
            let Some((cand, score)) = best_add else { break };
            if score <= best_score {
                break;
            }
            best_score = score;
            members.push(cand);
        }
        if members.len() >= 2 && best_score >= result.valid_score {
            result.ensemble = members.into_iter().map(|m| pool[m].0.clone()).collect();
            result.valid_score = best_score;
        }
    }
}

/// Expected improvement of a Gaussian `N(mu, sigma²)` over `best`.
fn expected_improvement(mu: f64, sigma: f64, best: f64) -> f64 {
    if sigma < 1e-12 {
        return (mu - best).max(0.0);
    }
    let z = (mu - best) / sigma;
    (mu - best) * norm_cdf(z) + sigma * norm_pdf(z)
}

fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Abramowitz–Stegun erf approximation (|error| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

impl Optimizer for AutoSklearn {
    fn optimize(&mut self, train: &Dataset, budget: &TimeBudget) -> Result<HpoResult> {
        let learners = self.warm_start_order(train);
        let portfolio: Vec<EstimatorKind> = learners.iter().copied().take(PORTFOLIO_SIZE).collect();
        self.run(train, Skeleton::bare, &portfolio, &learners, budget)
    }

    fn optimize_skeleton(
        &mut self,
        train: &Dataset,
        skeleton: &Skeleton,
        budget: &TimeBudget,
    ) -> Result<HpoResult> {
        if !skeleton.estimator.supports(train.task) {
            return Err(HpoError::NoUsableLearner);
        }
        let learners = vec![skeleton.estimator];
        let skeleton = skeleton.clone();
        self.run(
            train,
            move |_| skeleton.clone(),
            &learners.clone(),
            &learners,
            budget,
        )
    }

    fn capabilities(&self) -> String {
        space::capabilities_json("auto-sklearn", &self.estimators)
    }

    fn set_parallelism(&mut self, parallelism: usize) {
        self.parallelism = parallelism.max(1);
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn set_trial_cache(&mut self, enabled: bool) {
        self.trial_cache = enabled;
    }

    fn clone_boxed(&self) -> Box<dyn Optimizer + Send> {
        Box::new(self.clone())
    }
}

/// Built-in meta-knowledge: coarse priors over which learner families win
/// in which regions of meta-feature space. Meta-feature layout (see
/// [`meta_features`]): [ln n, ln d, %num, %cat, %text, ln classes,
/// imbalance, missing, skew, cardinality].
fn builtin_knowledge() -> Vec<([f64; META_DIM], EstimatorKind)> {
    vec![
        // Mid-size numeric classification: boosting wins.
        (
            [0.6, 0.3, 1.0, 0.0, 0.0, 0.2, 0.1, 0.0, 0.2, 0.5],
            EstimatorKind::XgBoost,
        ),
        (
            [0.7, 0.4, 1.0, 0.0, 0.0, 0.2, 0.2, 0.0, 0.3, 0.6],
            EstimatorKind::Lgbm,
        ),
        (
            [0.5, 0.3, 0.9, 0.1, 0.0, 0.3, 0.1, 0.0, 0.2, 0.4],
            EstimatorKind::GradientBoosting,
        ),
        // Small clean numeric: forests.
        (
            [0.4, 0.2, 1.0, 0.0, 0.0, 0.2, 0.0, 0.0, 0.1, 0.3],
            EstimatorKind::RandomForest,
        ),
        // Wide (d >> n): linear models.
        (
            [0.4, 0.9, 1.0, 0.0, 0.0, 0.1, 0.0, 0.0, 0.1, 0.9],
            EstimatorKind::LogisticRegression,
        ),
        // Text-heavy: linear SVM.
        (
            [0.6, 0.1, 0.3, 0.1, 0.6, 0.2, 0.1, 0.0, 0.0, 0.9],
            EstimatorKind::LinearSvm,
        ),
        // Regression, numeric: boosting + ridge.
        (
            [0.6, 0.3, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.3, 0.6],
            EstimatorKind::XgBoost,
        ),
        (
            [0.5, 0.2, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.1, 0.5],
            EstimatorKind::Ridge,
        ),
        // Tiny datasets: naive Bayes / knn are competitive.
        (
            [0.25, 0.15, 1.0, 0.0, 0.0, 0.2, 0.0, 0.0, 0.1, 0.3],
            EstimatorKind::GaussianNb,
        ),
        (
            [0.3, 0.15, 1.0, 0.0, 0.0, 0.2, 0.0, 0.0, 0.1, 0.3],
            EstimatorKind::Knn,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_learners::TransformerKind;
    use kgpip_tabular::{Column, DataFrame};

    fn blob_dataset(n: usize) -> Dataset {
        let rows: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let c = f64::from(i % 2 == 0);
                (
                    c * 4.0 + (i % 9) as f64 * 0.1,
                    c * 4.0 + (i % 7) as f64 * 0.1,
                )
            })
            .collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(i % 2 == 0)).collect();
        let f = DataFrame::from_columns(vec![
            (
                "a".to_string(),
                Column::from_f64(rows.iter().map(|r| r.0).collect::<Vec<_>>()),
            ),
            (
                "b".to_string(),
                Column::from_f64(rows.iter().map(|r| r.1).collect::<Vec<_>>()),
            ),
        ])
        .unwrap();
        Dataset::new("blobs", f, y, Task::Binary).unwrap()
    }

    #[test]
    fn optimizes_simple_classification() {
        let ds = blob_dataset(200);
        let mut engine = AutoSklearn::new(0);
        let result = engine.optimize(&ds, &TimeBudget::seconds(3.0)).unwrap();
        assert!(result.valid_score > 0.9, "score {}", result.valid_score);
    }

    #[test]
    fn warm_start_order_respects_knowledge() {
        let ds = blob_dataset(100);
        let mut engine = AutoSklearn::new(0);
        // Teach it that decision trees dominate datasets exactly like this.
        engine.add_knowledge(meta_features(&ds), EstimatorKind::DecisionTree);
        let order = engine.warm_start_order(&ds);
        assert_eq!(order[0], EstimatorKind::DecisionTree);
    }

    #[test]
    fn skeleton_mode_keeps_estimator_fixed() {
        let ds = blob_dataset(200);
        let mut engine = AutoSklearn::new(1);
        let skeleton = Skeleton {
            transformers: vec![TransformerKind::MinMaxScaler],
            estimator: EstimatorKind::Lgbm,
        };
        let result = engine
            .optimize_skeleton(&ds, &skeleton, &TimeBudget::seconds(2.0))
            .unwrap();
        for t in &result.history {
            assert_eq!(t.spec.estimator, EstimatorKind::Lgbm);
        }
        assert!(result.valid_score > 0.9);
    }

    #[test]
    fn ensemble_never_hurts_validation_score() {
        let ds = blob_dataset(250);
        let mut with = AutoSklearn::new(2);
        let mut without = AutoSklearn::new(2);
        without.ensembling = false;
        let r_with = with.optimize(&ds, &TimeBudget::seconds(2.0)).unwrap();
        let r_without = without.optimize(&ds, &TimeBudget::seconds(2.0)).unwrap();
        assert!(r_with.valid_score >= r_without.valid_score - 1e-9);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn expected_improvement_behaviour() {
        // Certain improvement.
        assert!((expected_improvement(1.0, 0.0, 0.5) - 0.5).abs() < 1e-12);
        // Certain non-improvement.
        assert_eq!(expected_improvement(0.2, 0.0, 0.5), 0.0);
        // Uncertainty adds value even below the incumbent.
        assert!(expected_improvement(0.4, 0.5, 0.5) > 0.0);
    }

    #[test]
    fn tiny_budget_still_returns() {
        let ds = blob_dataset(100);
        let mut engine = AutoSklearn::new(3);
        let result = engine.optimize(&ds, &TimeBudget::seconds(0.0)).unwrap();
        assert!(result.trials >= 1);
    }
}
