//! Time budgets: wall clock plus an optional trial cap.
//!
//! Paper §3.6: "KGpip works within a provided time budget per dataset ...
//! Given a time budget (T), KGpip calculates t, the time consumed in
//! generating and validating the graphs. KGpip then divides the rest of
//! the time budget between the K graphs."
//!
//! On the authors' testbed a single pipeline fit takes seconds to minutes,
//! so a 1-hour budget buys only tens-to-hundreds of trials — every
//! comparison in the paper happens in that *trial-starved* regime. Our
//! scaled-down synthetic datasets make trials ~10⁴× cheaper, which would
//! silently move all systems into a saturation regime where search
//! strategy stops mattering. To preserve the paper's regime, a budget can
//! carry an optional **trial cap** alongside the wall clock: engines
//! consume one unit per evaluated configuration, and `(T − t)/K` splitting
//! divides both resources (see DESIGN.md's substitution table).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A budget combining wall-clock time with an optional trial cap.
/// Cloning shares the trial counter (a budget is one pool of resources).
/// Sub-budgets keep a handle on their parent so consumed trials drain the
/// parent pool too — `(T − t)/K` splitting must never mint extra trials.
#[derive(Debug, Clone)]
pub struct TimeBudget {
    start: Instant,
    total: Duration,
    trial_cap: Option<usize>,
    trials_used: Arc<AtomicUsize>,
    parent: Option<Box<TimeBudget>>,
}

impl TimeBudget {
    /// Starts a budget of the given total duration now.
    #[allow(clippy::disallowed_methods)]
    pub fn start(total: Duration) -> TimeBudget {
        TimeBudget {
            // xlint: allow(wall-clock-in-compute): the audited budget anchor — the ONE place HPO reads the clock to enforce the paper's (T − t)/K contract; trial selection itself is time-free
            start: Instant::now(),
            total,
            trial_cap: None,
            trials_used: Arc::new(AtomicUsize::new(0)),
            parent: None,
        }
    }

    /// Convenience: a budget of `secs` seconds (fractional allowed).
    pub fn seconds(secs: f64) -> TimeBudget {
        TimeBudget::start(Duration::from_secs_f64(secs.max(0.0)))
    }

    /// Adds a trial cap: the budget also expires after `cap` consumed
    /// trials.
    pub fn with_trial_cap(mut self, cap: usize) -> TimeBudget {
        self.trial_cap = Some(cap);
        self
    }

    /// Total allotted duration.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// The trial cap, if any.
    pub fn trial_cap(&self) -> Option<usize> {
        self.trial_cap
    }

    /// Time spent since the budget started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Remaining duration (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.total.saturating_sub(self.start.elapsed())
    }

    /// Records one evaluated configuration, draining every ancestor pool
    /// as well.
    pub fn consume_trial(&self) {
        self.trials_used.fetch_add(1, Ordering::Relaxed);
        if let Some(parent) = &self.parent {
            parent.consume_trial();
        }
    }

    /// Trials consumed so far.
    pub fn trials_used(&self) -> usize {
        self.trials_used.load(Ordering::Relaxed)
    }

    /// Remaining trials under the cap (`None` = uncapped).
    pub fn remaining_trials(&self) -> Option<usize> {
        self.trial_cap
            .map(|cap| cap.saturating_sub(self.trials_used()))
    }

    /// True once either resource is used up, here or in any ancestor.
    pub fn expired(&self) -> bool {
        if self.remaining().is_zero() || matches!(self.remaining_trials(), Some(0)) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.expired())
    }

    /// Splits the *remaining* time into `k` equal sub-budgets — the
    /// `(T − t)/K` rule. Each sub-budget starts when this method is
    /// called; callers should create them sequentially as work proceeds.
    pub fn split_remaining(&self, k: usize) -> Duration {
        let k = k.max(1) as u32;
        self.remaining() / k
    }

    /// A fresh budget over a share of the remaining time. A trial cap, if
    /// present, is split the same way: the sub-budget receives
    /// `remaining_trials / k` of its own.
    pub fn sub_budget_k(&self, k: usize) -> TimeBudget {
        let share = self.split_remaining(k);
        let mut sub = TimeBudget::start(share.min(self.remaining()));
        if let Some(remaining) = self.remaining_trials() {
            sub.trial_cap = Some((remaining / k.max(1)).max(1));
        }
        sub.parent = Some(Box::new(self.clone()));
        sub
    }

    /// A fresh budget over an explicit share of the remaining time
    /// (uncapped unless the parent had a cap, in which case the whole
    /// remainder is inherited).
    pub fn sub_budget(&self, share: Duration) -> TimeBudget {
        let mut sub = TimeBudget::start(share.min(self.remaining()));
        sub.trial_cap = self.remaining_trials();
        sub.parent = Some(Box::new(self.clone()));
        sub
    }
}

/// Thread-safe admission control over a [`TimeBudget`].
///
/// The parallel evaluation engine admits trials *before* evaluating them,
/// possibly from several worker threads at once. Consuming a trial unit at
/// admission time, inside one lock, is what makes a trial cap exact under
/// contention: the interleaving "N threads all observe one remaining
/// trial, then all evaluate" cannot happen, because observation and
/// consumption are a single critical section.
///
/// The gate also carries the engines' *anytime guarantee*: the very first
/// trial is always admitted, even on an already-expired budget, so a
/// degenerate budget still produces a result (matching the sequential
/// engines' historical behaviour).
#[derive(Debug)]
pub struct BudgetGate {
    budget: TimeBudget,
    state: Mutex<GateState>,
}

#[derive(Debug)]
struct GateState {
    admitted: usize,
}

impl BudgetGate {
    /// Wraps a budget. The budget is cloned, which shares its trial pool
    /// (and its parents' pools) — admission drains the same resources the
    /// caller's handle observes.
    pub fn new(budget: &TimeBudget) -> BudgetGate {
        BudgetGate {
            budget: budget.clone(),
            state: Mutex::new(GateState { admitted: 0 }),
        }
    }

    /// The underlying budget.
    pub fn budget(&self) -> &TimeBudget {
        &self.budget
    }

    /// Tries to admit one trial, consuming a trial unit on success.
    /// Returns `false` once the budget is exhausted (except for the very
    /// first trial, which is always admitted).
    pub fn admit(&self) -> bool {
        let mut state = self.state.lock();
        if state.admitted > 0 && self.budget.expired() {
            return false;
        }
        state.admitted += 1;
        self.budget.consume_trial();
        true
    }

    /// Trials admitted through this gate.
    pub fn admitted(&self) -> usize {
        self.state.lock().admitted
    }

    /// Whether the underlying budget is exhausted. Unlike [`admit`], this
    /// ignores the anytime guarantee — use it for loop conditions, not
    /// admission decisions.
    ///
    /// [`admit`]: BudgetGate::admit
    pub fn expired(&self) -> bool {
        self.budget.expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn remaining_decreases_and_expires() {
        let b = TimeBudget::seconds(0.05);
        assert!(!b.expired());
        assert!(b.remaining() <= Duration::from_millis(50));
        sleep(Duration::from_millis(60));
        assert!(b.expired());
        assert!(b.remaining().is_zero());
    }

    #[test]
    fn split_remaining_divides_evenly() {
        let b = TimeBudget::seconds(1.0);
        let share = b.split_remaining(4);
        assert!(share <= Duration::from_millis(250));
        assert!(share > Duration::from_millis(200));
        // k = 0 is clamped.
        assert!(b.split_remaining(0) <= Duration::from_secs(1));
    }

    #[test]
    fn sub_budget_cannot_exceed_parent() {
        let b = TimeBudget::seconds(0.05);
        let sub = b.sub_budget(Duration::from_secs(10));
        assert!(sub.total() <= Duration::from_millis(50));
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        assert!(TimeBudget::seconds(0.0).expired());
        assert!(TimeBudget::seconds(-1.0).expired());
    }

    #[test]
    fn trial_cap_expires_the_budget() {
        let b = TimeBudget::seconds(100.0).with_trial_cap(3);
        assert!(!b.expired());
        b.consume_trial();
        b.consume_trial();
        assert!(!b.expired());
        assert_eq!(b.remaining_trials(), Some(1));
        b.consume_trial();
        assert!(b.expired());
        assert_eq!(b.trials_used(), 3);
    }

    #[test]
    fn clones_share_the_trial_pool() {
        let a = TimeBudget::seconds(100.0).with_trial_cap(2);
        let b = a.clone();
        a.consume_trial();
        b.consume_trial();
        assert!(a.expired());
        assert!(b.expired());
    }

    #[test]
    fn sub_budget_k_splits_trials_and_drains_the_parent() {
        let b = TimeBudget::seconds(9.0).with_trial_cap(30);
        let sub = b.sub_budget_k(3);
        assert_eq!(sub.trial_cap(), Some(10));
        assert!(sub.total() <= Duration::from_secs(3));
        // Sub-budget consumption drains the parent pool too: (T−t)/K
        // splitting must never mint extra trials.
        sub.consume_trial();
        assert_eq!(sub.trials_used(), 1);
        assert_eq!(b.trials_used(), 1);
        // Consuming from the parent shrinks later sub-budgets.
        for _ in 0..14 {
            b.consume_trial();
        }
        let sub2 = b.sub_budget_k(3);
        assert_eq!(sub2.trial_cap(), Some(5));
    }

    #[test]
    fn sequential_k_splits_never_exceed_the_parent_cap() {
        // Simulate KGpip's per-skeleton loop: each skeleton exhausts its
        // sub-budget; the total across skeletons must stay within the cap.
        let parent = TimeBudget::seconds(100.0).with_trial_cap(40);
        let mut total = 0usize;
        for i in 0..3 {
            let sub = parent.sub_budget_k(3 - i);
            while !sub.expired() {
                sub.consume_trial();
                total += 1;
                assert!(total <= 40, "minted extra trials");
            }
        }
        assert_eq!(parent.trials_used(), total);
        assert!(total <= 40);
        assert!(
            total >= 38,
            "roll-forward should use nearly the whole pool, got {total}"
        );
    }

    #[test]
    fn parent_exhaustion_expires_sub_budgets() {
        let parent = TimeBudget::seconds(100.0).with_trial_cap(4);
        let sub = parent.sub_budget_k(2); // cap 2
        for _ in 0..2 {
            parent.consume_trial();
        }
        // Parent has 2 left; sub has its own cap 2 — not yet expired.
        assert!(!sub.expired());
        parent.consume_trial();
        parent.consume_trial();
        assert!(sub.expired(), "parent pool exhausted must expire the sub");
    }

    #[test]
    fn uncapped_budget_reports_no_trial_limits() {
        let b = TimeBudget::seconds(1.0);
        b.consume_trial();
        assert_eq!(b.remaining_trials(), None);
        assert!(!b.expired());
        assert_eq!(b.trial_cap(), None);
    }

    #[test]
    fn gate_admission_is_exact() {
        let budget = TimeBudget::seconds(100.0).with_trial_cap(3);
        let gate = BudgetGate::new(&budget);
        assert!(gate.admit());
        assert!(gate.admit());
        assert!(gate.admit());
        assert!(!gate.admit(), "cap reached");
        assert_eq!(gate.admitted(), 3);
        assert_eq!(budget.trials_used(), 3);
    }

    #[test]
    fn gate_always_admits_the_first_trial() {
        let gate = BudgetGate::new(&TimeBudget::seconds(0.0));
        assert!(gate.expired());
        assert!(gate.admit(), "anytime guarantee");
        assert!(!gate.admit(), "but only the first");
        assert_eq!(gate.admitted(), 1);
    }

    #[test]
    fn gate_shares_the_trial_pool_with_the_caller() {
        let budget = TimeBudget::seconds(100.0).with_trial_cap(4);
        let gate = BudgetGate::new(&budget);
        budget.consume_trial();
        budget.consume_trial();
        budget.consume_trial();
        assert!(gate.admit());
        assert!(!gate.admit(), "external consumption drained the pool");
    }
}
