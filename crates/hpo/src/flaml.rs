//! FLAML-style cost-frugal hyperparameter optimization.
//!
//! Reproduces the defining behaviours of FLAML (Wang et al. 2021, "a fast
//! and lightweight AutoML library ... designed with both accuracy and
//! computational cost in mind"):
//!
//! * every learner starts at its **low-cost configuration** (small
//!   ensembles, few iterations) so cheap anytime results appear first,
//! * within a learner, search moves by **randomized directional steps**
//!   with step-size adaptation (grow on improvement, shrink on failure) —
//!   FLAML's CFO search,
//! * across learners, trials are scheduled by **estimated cost of
//!   improvement**: a learner that is cheap to evaluate and has improved
//!   recently is tried before an expensive, stalled one.
//!
//! The paper integrates KGpip with FLAML precisely because FLAML "does not
//! yet have any meta-learning component for the cold start problem" — so
//! the cold-start mode here searches all supported learners with no
//! warm-start knowledge, exactly the baseline of Figure 5.

use crate::budget::TimeBudget;
use crate::space::{self, Skeleton};
use crate::trial::{Evaluator, HpoResult, Optimizer, TrialOutcome};
use crate::{HpoError, Result};
use kgpip_learners::{EstimatorKind, Params};
use kgpip_tabular::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One learner's search thread.
struct Thread {
    skeleton: Skeleton,
    incumbent: Params,
    best_score: f64,
    step: f64,
    /// Exponentially weighted average trial cost in seconds.
    avg_cost: f64,
    /// Trials since the last improvement.
    stall: usize,
    trials: usize,
}

impl Thread {
    fn new(skeleton: Skeleton) -> Thread {
        let incumbent = space::low_cost_config(skeleton.estimator);
        Thread {
            skeleton,
            incumbent,
            best_score: f64::NEG_INFINITY,
            step: 0.2,
            avg_cost: 0.0,
            stall: 0,
            trials: 0,
        }
    }

    /// FLAML-style priority: estimated cost to achieve the next
    /// improvement. Lower is scheduled sooner. Untried threads use the
    /// learner's static relative cost so cheap learners lead.
    fn priority(&self) -> f64 {
        if self.trials == 0 {
            return self.skeleton.estimator.relative_cost() * 1e-3;
        }
        self.avg_cost * (1 << self.stall.min(16)) as f64
    }
}

/// The FLAML-style optimizer.
pub struct Flaml {
    seed: u64,
    /// Learners this engine supports (its §3.6 capability set).
    estimators: Vec<EstimatorKind>,
}

impl Flaml {
    /// Creates the engine with its full learner set.
    pub fn new(seed: u64) -> Flaml {
        Flaml {
            seed,
            estimators: EstimatorKind::ALL.to_vec(),
        }
    }

    /// Restricts the supported learner set (for ablations).
    pub fn with_estimators(seed: u64, estimators: Vec<EstimatorKind>) -> Flaml {
        Flaml { seed, estimators }
    }

    fn run(
        &self,
        train: &Dataset,
        mut threads: Vec<Thread>,
        budget: &TimeBudget,
    ) -> Result<HpoResult> {
        if threads.is_empty() {
            return Err(HpoError::NoUsableLearner);
        }
        let evaluator = Evaluator::new(train, self.seed)?;
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x1f1a_4d1f));
        let mut history: Vec<TrialOutcome> = Vec::new();
        let mut best: Option<(usize, f64)> = None; // (history index, score)

        loop {
            // Always complete at least one trial so a result exists even
            // under a degenerate budget (anytime behaviour).
            if !history.is_empty() && budget.expired() {
                break;
            }
            let Some(t_idx) = threads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.priority().partial_cmp(&b.1.priority()).unwrap())
                .map(|(i, _)| i)
            else {
                break;
            };
            let candidate = {
                let thread = &threads[t_idx];
                if thread.trials == 0 {
                    thread.incumbent.clone()
                } else {
                    space::neighbor(
                        thread.skeleton.estimator,
                        &thread.incumbent,
                        thread.step,
                        &mut rng,
                    )
                }
            };
            let outcome = evaluator.evaluate(&threads[t_idx].skeleton, candidate.clone());
            budget.consume_trial();
            let thread = &mut threads[t_idx];
            thread.trials += 1;
            let cost = outcome.cost.as_secs_f64().max(1e-6);
            thread.avg_cost = if thread.avg_cost == 0.0 {
                cost
            } else {
                0.7 * thread.avg_cost + 0.3 * cost
            };
            match outcome.score {
                Some(score) if score > thread.best_score => {
                    thread.best_score = score;
                    thread.incumbent = candidate;
                    thread.step = (thread.step * 1.3).min(0.8);
                    thread.stall = 0;
                }
                _ => {
                    thread.step = (thread.step * 0.8).max(0.02);
                    thread.stall += 1;
                }
            }
            history.push(outcome);
            let idx = history.len() - 1;
            if let Some(score) = history[idx].score {
                if best.is_none_or(|(_, b)| score > b) {
                    best = Some((idx, score));
                }
            }
            // A learner whose single-trial cost exceeds the remaining
            // budget is effectively done; its stall keeps growing so the
            // scheduler moves past it naturally.
        }
        let Some((idx, score)) = best else {
            return Err(HpoError::BudgetExhausted);
        };
        let spec = history[idx].spec.clone();
        Ok(HpoResult::single(spec, score, history))
    }
}

impl Optimizer for Flaml {
    fn optimize(&mut self, train: &Dataset, budget: &TimeBudget) -> Result<HpoResult> {
        let mut threads: Vec<Thread> = self
            .estimators
            .iter()
            .filter(|k| k.supports(train.task))
            .map(|k| Thread::new(Skeleton::bare(*k)))
            .collect();
        // Cheap learners first (cost-frugal ordering).
        threads.sort_by(|a, b| {
            a.skeleton
                .estimator
                .relative_cost()
                .partial_cmp(&b.skeleton.estimator.relative_cost())
                .unwrap()
        });
        self.run(train, threads, budget)
    }

    fn optimize_skeleton(
        &mut self,
        train: &Dataset,
        skeleton: &Skeleton,
        budget: &TimeBudget,
    ) -> Result<HpoResult> {
        if !skeleton.estimator.supports(train.task) {
            return Err(HpoError::NoUsableLearner);
        }
        self.run(train, vec![Thread::new(skeleton.clone())], budget)
    }

    fn capabilities(&self) -> String {
        space::capabilities_json("flaml", &self.estimators)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_learners::TransformerKind;
    use kgpip_tabular::{train_test_split, Column, DataFrame, Task};

    fn xor_dataset(n: usize) -> Dataset {
        let rows: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    f64::from(i % 2 == 0) + (i % 7) as f64 * 0.01,
                    f64::from((i / 2) % 2 == 0) + (i % 5) as f64 * 0.01,
                )
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|(a, b)| f64::from((*a > 0.5) != (*b > 0.5)))
            .collect();
        let f = DataFrame::from_columns(vec![
            (
                "a".to_string(),
                Column::from_f64(rows.iter().map(|r| r.0).collect::<Vec<_>>()),
            ),
            (
                "b".to_string(),
                Column::from_f64(rows.iter().map(|r| r.1).collect::<Vec<_>>()),
            ),
        ])
        .unwrap();
        Dataset::new("xor", f, y, Task::Binary).unwrap()
    }

    #[test]
    fn cold_start_finds_a_nonlinear_learner_on_xor() {
        let ds = xor_dataset(240);
        let mut engine = Flaml::new(0);
        let result = engine
            .optimize(&ds, &TimeBudget::seconds(3.0))
            .unwrap();
        assert!(
            result.valid_score > 0.9,
            "score {} with {}",
            result.valid_score,
            result.spec.describe()
        );
        assert!(result.trials >= 3, "should complete several trials");
    }

    #[test]
    fn tiny_budget_still_returns_a_result() {
        let ds = xor_dataset(120);
        let mut engine = Flaml::new(0);
        let result = engine.optimize(&ds, &TimeBudget::seconds(0.0)).unwrap();
        assert!(result.trials >= 1);
        assert!(result.valid_score.is_finite());
    }

    #[test]
    fn skeleton_mode_respects_the_skeleton() {
        let ds = xor_dataset(200);
        let mut engine = Flaml::new(1);
        let skeleton = Skeleton {
            transformers: vec![TransformerKind::StandardScaler],
            estimator: EstimatorKind::XgBoost,
        };
        let result = engine
            .optimize_skeleton(&ds, &skeleton, &TimeBudget::seconds(2.0))
            .unwrap();
        assert_eq!(result.spec.estimator, EstimatorKind::XgBoost);
        assert_eq!(
            result.spec.transformers[0].0,
            TransformerKind::StandardScaler
        );
        assert!(result.valid_score > 0.9);
    }

    #[test]
    fn skeleton_mode_rejects_unsupported_task() {
        let ds = xor_dataset(60);
        let mut engine = Flaml::new(0);
        let skeleton = Skeleton::bare(EstimatorKind::Ridge);
        assert!(matches!(
            engine.optimize_skeleton(&ds, &skeleton, &TimeBudget::seconds(1.0)),
            Err(HpoError::NoUsableLearner)
        ));
    }

    #[test]
    fn first_trials_use_cheap_learners() {
        let ds = xor_dataset(150);
        let mut engine = Flaml::new(2);
        let result = engine.optimize(&ds, &TimeBudget::seconds(1.0)).unwrap();
        // The very first completed trial must come from a cheap family,
        // never from the expensive forests.
        let first = result.history[0].spec.estimator;
        assert!(
            first.relative_cost() <= EstimatorKind::DecisionTree.relative_cost(),
            "first learner {first} too expensive"
        );
    }

    #[test]
    fn refit_end_to_end_beats_chance() {
        let ds = xor_dataset(300);
        let (train, test) = train_test_split(&ds, 0.3, 5).unwrap();
        let mut engine = Flaml::new(3);
        let result = engine.optimize(&train, &TimeBudget::seconds(3.0)).unwrap();
        let score = result.refit_score(&train, &test).unwrap();
        assert!(score > 0.85, "test score {score}");
    }

    #[test]
    fn capability_document_is_parseable() {
        let engine = Flaml::new(0);
        let (est, _) = space::parse_capabilities(&engine.capabilities()).unwrap();
        assert_eq!(est.len(), EstimatorKind::ALL.len());
    }

    #[test]
    fn regression_support() {
        let x: Vec<f64> = (0..200).map(|i| (i % 20) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let f =
            DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        let ds = Dataset::new("sq", f, y, Task::Regression).unwrap();
        let mut engine = Flaml::new(4);
        let result = engine.optimize(&ds, &TimeBudget::seconds(2.0)).unwrap();
        assert!(result.valid_score > 0.8, "r2 {}", result.valid_score);
    }
}
