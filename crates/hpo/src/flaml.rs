//! FLAML-style cost-frugal hyperparameter optimization.
//!
//! Reproduces the defining behaviours of FLAML (Wang et al. 2021, "a fast
//! and lightweight AutoML library ... designed with both accuracy and
//! computational cost in mind"):
//!
//! * every learner starts at its **low-cost configuration** (small
//!   ensembles, few iterations) so cheap anytime results appear first,
//! * within a learner, search moves by **randomized directional steps**
//!   with step-size adaptation (grow on improvement, shrink on failure) —
//!   FLAML's CFO search,
//! * across learners, trials are scheduled by **estimated cost of
//!   improvement**: a learner that is cheap to evaluate and has improved
//!   recently is tried before an expensive, stalled one.
//!
//! The paper integrates KGpip with FLAML precisely because FLAML "does not
//! yet have any meta-learning component for the cold start problem" — so
//! the cold-start mode here searches all supported learners with no
//! warm-start knowledge, exactly the baseline of Figure 5.

use crate::budget::TimeBudget;
use crate::space::{self, Skeleton};
use crate::trial::{Candidate, Evaluator, HpoResult, Optimizer, TrialOutcome};
use crate::{HpoError, Result};
use kgpip_learners::{EstimatorKind, Params};
use kgpip_tabular::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic per-trial cost proxy used by the scheduler. Measured
/// wall-clock cost would make thread priorities — and therefore the
/// entire search trajectory — irreproducible across runs, so scheduling
/// uses the learner's static relative cost scaled by the config's
/// work-controlling parameter (boosting rounds / solver iterations).
/// The measured wall time stays available in `TrialOutcome::cost` for
/// reporting.
fn scheduling_cost(estimator: EstimatorKind, params: &Params) -> f64 {
    let work = params
        .get("n_estimators")
        .or_else(|| params.get("max_iter"))
        .copied()
        .unwrap_or(1.0);
    estimator.relative_cost() * work.max(1.0) * 1e-3
}

/// One learner's search thread.
struct Thread {
    skeleton: Skeleton,
    incumbent: Params,
    best_score: f64,
    step: f64,
    /// Exponentially weighted average scheduling cost (deterministic
    /// units, see [`scheduling_cost`]).
    avg_cost: f64,
    /// Trials since the last improvement.
    stall: usize,
    trials: usize,
}

impl Thread {
    fn new(skeleton: Skeleton) -> Thread {
        let incumbent = space::low_cost_config(skeleton.estimator);
        Thread {
            skeleton,
            incumbent,
            best_score: f64::NEG_INFINITY,
            step: 0.2,
            avg_cost: 0.0,
            stall: 0,
            trials: 0,
        }
    }

    /// FLAML-style priority: estimated cost to achieve the next
    /// improvement. Lower is scheduled sooner. Untried threads use the
    /// learner's static relative cost so cheap learners lead.
    fn priority(&self) -> f64 {
        if self.trials == 0 {
            return self.skeleton.estimator.relative_cost() * 1e-3;
        }
        self.avg_cost * (1 << self.stall.min(16)) as f64
    }
}

/// The FLAML-style optimizer.
#[derive(Clone)]
pub struct Flaml {
    seed: u64,
    /// Learners this engine supports (its §3.6 capability set).
    estimators: Vec<EstimatorKind>,
    /// Concurrent trials per round (1 = sequential).
    parallelism: usize,
    /// Trial caching (encoded datasets + transformer-prefix memo).
    trial_cache: bool,
}

impl Flaml {
    /// Creates the engine with its full learner set.
    pub fn new(seed: u64) -> Flaml {
        Flaml {
            seed,
            estimators: EstimatorKind::ALL.to_vec(),
            parallelism: 1,
            trial_cache: true,
        }
    }

    /// Restricts the supported learner set (for ablations).
    pub fn with_estimators(seed: u64, estimators: Vec<EstimatorKind>) -> Flaml {
        Flaml {
            seed,
            estimators,
            parallelism: 1,
            trial_cache: true,
        }
    }

    /// Builder-style parallelism knob (clamped to ≥ 1).
    pub fn with_parallelism(mut self, parallelism: usize) -> Flaml {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder-style trial-cache knob (on by default; off runs every
    /// trial on the original raw-frame path).
    pub fn with_trial_cache(mut self, enabled: bool) -> Flaml {
        self.trial_cache = enabled;
        self
    }

    fn cold_start_threads(&self, train: &Dataset) -> Vec<Thread> {
        let mut threads: Vec<Thread> = self
            .estimators
            .iter()
            .filter(|k| k.supports(train.task))
            .map(|k| Thread::new(Skeleton::bare(*k)))
            .collect();
        // Cheap learners first (cost-frugal ordering).
        threads.sort_by(|a, b| {
            a.skeleton
                .estimator
                .relative_cost()
                .partial_cmp(&b.skeleton.estimator.relative_cost())
                .unwrap()
        });
        threads
    }

    /// The batched CFO search driving the shared [`Evaluator`]. Each
    /// round proposes `parallelism` candidates, spread over up to
    /// `parallelism` distinct threads scheduled cheapest-estimated-
    /// improvement first (slots cycle over the picked threads when
    /// fewer are runnable), and the evaluator admits/evaluates/records
    /// them. With `parallelism == 1` the rounds collapse to the
    /// historical one-trial loop (see [`optimize_sequential`]) and
    /// reproduce it bit-for-bit for a fixed seed.
    ///
    /// [`optimize_sequential`]: Flaml::optimize_sequential
    fn run(
        &self,
        train: &Dataset,
        mut threads: Vec<Thread>,
        budget: &TimeBudget,
    ) -> Result<HpoResult> {
        if threads.is_empty() {
            return Err(HpoError::NoUsableLearner);
        }
        let evaluator = Evaluator::new(train, self.seed, budget)?
            .with_parallelism(self.parallelism)
            .with_cache(self.trial_cache);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x1f1a_4d1f));

        loop {
            // Always complete at least one trial so a result exists even
            // under a degenerate budget (anytime behaviour); the gate
            // enforces the same guarantee at admission time.
            if evaluator.trials() > 0 && evaluator.budget_expired() {
                break;
            }
            // Pick distinct threads by repeated minimum extraction, so
            // the first pick matches the sequential scheduler's
            // tie-breaking exactly.
            let distinct = self.parallelism.min(threads.len());
            let mut picked: Vec<usize> = Vec::with_capacity(distinct);
            for _ in 0..distinct {
                let Some(t_idx) = threads
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !picked.contains(i))
                    .min_by(|a, b| a.1.priority().partial_cmp(&b.1.priority()).unwrap())
                    .map(|(i, _)| i)
                else {
                    break;
                };
                picked.push(t_idx);
            }
            if picked.is_empty() {
                break;
            }
            // Fill all `parallelism` batch slots by cycling over the
            // picked threads: a search with fewer runnable threads than
            // workers (notably the single-thread skeleton mode driving
            // KGpip's (T−t)/K split) still proposes a full parallel
            // batch — extra slots draw additional neighbors.
            let mut proposed = vec![0usize; threads.len()];
            let batch: Vec<Candidate> = (0..self.parallelism)
                .map(|slot| {
                    let t_idx = picked[slot % picked.len()];
                    let thread = &threads[t_idx];
                    let params = if thread.trials == 0 && proposed[t_idx] == 0 {
                        thread.incumbent.clone()
                    } else {
                        space::neighbor(
                            thread.skeleton.estimator,
                            &thread.incumbent,
                            thread.step,
                            &mut rng,
                        )
                    };
                    proposed[t_idx] += 1;
                    Candidate::new(thread.skeleton.clone(), params)
                })
                .collect();
            let outcomes = evaluator.evaluate_batch(&batch);
            if outcomes.is_empty() {
                break;
            }
            for (slot, outcome) in outcomes.iter().enumerate() {
                let thread = &mut threads[picked[slot % picked.len()]];
                thread.trials += 1;
                let cost = scheduling_cost(thread.skeleton.estimator, &batch[slot].params);
                thread.avg_cost = if thread.avg_cost == 0.0 {
                    cost
                } else {
                    0.7 * thread.avg_cost + 0.3 * cost
                };
                match outcome.score {
                    Some(score) if score > thread.best_score => {
                        thread.best_score = score;
                        thread.incumbent = batch[slot].params.clone();
                        thread.step = (thread.step * 1.3).min(0.8);
                        thread.stall = 0;
                    }
                    _ => {
                        thread.step = (thread.step * 0.8).max(0.02);
                        thread.stall += 1;
                    }
                }
            }
            // A learner whose single-trial cost exceeds the remaining
            // budget is effectively done; its stall keeps growing so the
            // scheduler moves past it naturally.
        }
        evaluator.result()
    }

    /// The historical single-trial loop, kept verbatim as a reference
    /// implementation: it accounts for the budget by hand (pure
    /// `evaluate` + `consume_trial`) instead of going through the
    /// [`BudgetGate`]. The determinism suite asserts that `optimize` at
    /// `parallelism == 1` reproduces this history bit-for-bit.
    ///
    /// [`BudgetGate`]: crate::BudgetGate
    pub fn optimize_sequential(
        &mut self,
        train: &Dataset,
        budget: &TimeBudget,
    ) -> Result<HpoResult> {
        let mut threads = self.cold_start_threads(train);
        if threads.is_empty() {
            return Err(HpoError::NoUsableLearner);
        }
        let evaluator = Evaluator::new(train, self.seed, budget)?.with_cache(self.trial_cache);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x1f1a_4d1f));
        let mut history: Vec<TrialOutcome> = Vec::new();
        let mut best: Option<(usize, f64)> = None; // (history index, score)

        loop {
            if !history.is_empty() && budget.expired() {
                break;
            }
            let Some(t_idx) = threads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.priority().partial_cmp(&b.1.priority()).unwrap())
                .map(|(i, _)| i)
            else {
                break;
            };
            let candidate = {
                let thread = &threads[t_idx];
                if thread.trials == 0 {
                    thread.incumbent.clone()
                } else {
                    space::neighbor(
                        thread.skeleton.estimator,
                        &thread.incumbent,
                        thread.step,
                        &mut rng,
                    )
                }
            };
            let outcome = evaluator.evaluate(&threads[t_idx].skeleton, candidate.clone());
            budget.consume_trial();
            let thread = &mut threads[t_idx];
            thread.trials += 1;
            let cost = scheduling_cost(thread.skeleton.estimator, &candidate);
            thread.avg_cost = if thread.avg_cost == 0.0 {
                cost
            } else {
                0.7 * thread.avg_cost + 0.3 * cost
            };
            match outcome.score {
                Some(score) if score > thread.best_score => {
                    thread.best_score = score;
                    thread.incumbent = candidate;
                    thread.step = (thread.step * 1.3).min(0.8);
                    thread.stall = 0;
                }
                _ => {
                    thread.step = (thread.step * 0.8).max(0.02);
                    thread.stall += 1;
                }
            }
            history.push(outcome);
            let idx = history.len() - 1;
            if let Some(score) = history[idx].score {
                if best.is_none_or(|(_, b)| score > b) {
                    best = Some((idx, score));
                }
            }
        }
        let Some((idx, score)) = best else {
            return Err(HpoError::BudgetExhausted);
        };
        let spec = history[idx].spec.clone();
        Ok(HpoResult::single(spec, score, history))
    }
}

impl Optimizer for Flaml {
    fn optimize(&mut self, train: &Dataset, budget: &TimeBudget) -> Result<HpoResult> {
        let threads = self.cold_start_threads(train);
        self.run(train, threads, budget)
    }

    fn optimize_skeleton(
        &mut self,
        train: &Dataset,
        skeleton: &Skeleton,
        budget: &TimeBudget,
    ) -> Result<HpoResult> {
        if !skeleton.estimator.supports(train.task) {
            return Err(HpoError::NoUsableLearner);
        }
        self.run(train, vec![Thread::new(skeleton.clone())], budget)
    }

    fn capabilities(&self) -> String {
        space::capabilities_json("flaml", &self.estimators)
    }

    fn set_parallelism(&mut self, parallelism: usize) {
        self.parallelism = parallelism.max(1);
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn set_trial_cache(&mut self, enabled: bool) {
        self.trial_cache = enabled;
    }

    fn clone_boxed(&self) -> Box<dyn Optimizer + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_learners::TransformerKind;
    use kgpip_tabular::{train_test_split, Column, DataFrame, Task};

    fn xor_dataset(n: usize) -> Dataset {
        let rows: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    f64::from(i % 2 == 0) + (i % 7) as f64 * 0.01,
                    f64::from((i / 2) % 2 == 0) + (i % 5) as f64 * 0.01,
                )
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|(a, b)| f64::from((*a > 0.5) != (*b > 0.5)))
            .collect();
        let f = DataFrame::from_columns(vec![
            (
                "a".to_string(),
                Column::from_f64(rows.iter().map(|r| r.0).collect::<Vec<_>>()),
            ),
            (
                "b".to_string(),
                Column::from_f64(rows.iter().map(|r| r.1).collect::<Vec<_>>()),
            ),
        ])
        .unwrap();
        Dataset::new("xor", f, y, Task::Binary).unwrap()
    }

    #[test]
    fn cold_start_finds_a_nonlinear_learner_on_xor() {
        let ds = xor_dataset(240);
        let mut engine = Flaml::new(0);
        let result = engine.optimize(&ds, &TimeBudget::seconds(3.0)).unwrap();
        assert!(
            result.valid_score > 0.9,
            "score {} with {}",
            result.valid_score,
            result.spec.describe()
        );
        assert!(result.trials >= 3, "should complete several trials");
    }

    #[test]
    fn tiny_budget_still_returns_a_result() {
        let ds = xor_dataset(120);
        let mut engine = Flaml::new(0);
        let result = engine.optimize(&ds, &TimeBudget::seconds(0.0)).unwrap();
        assert!(result.trials >= 1);
        assert!(result.valid_score.is_finite());
    }

    #[test]
    fn skeleton_mode_respects_the_skeleton() {
        let ds = xor_dataset(200);
        let mut engine = Flaml::new(1);
        let skeleton = Skeleton {
            transformers: vec![TransformerKind::StandardScaler],
            estimator: EstimatorKind::XgBoost,
        };
        let result = engine
            .optimize_skeleton(&ds, &skeleton, &TimeBudget::seconds(2.0))
            .unwrap();
        assert_eq!(result.spec.estimator, EstimatorKind::XgBoost);
        assert_eq!(
            result.spec.transformers[0].0,
            TransformerKind::StandardScaler
        );
        assert!(result.valid_score > 0.9);
    }

    #[test]
    fn skeleton_mode_rejects_unsupported_task() {
        let ds = xor_dataset(60);
        let mut engine = Flaml::new(0);
        let skeleton = Skeleton::bare(EstimatorKind::Ridge);
        assert!(matches!(
            engine.optimize_skeleton(&ds, &skeleton, &TimeBudget::seconds(1.0)),
            Err(HpoError::NoUsableLearner)
        ));
    }

    #[test]
    fn first_trials_use_cheap_learners() {
        let ds = xor_dataset(150);
        let mut engine = Flaml::new(2);
        let result = engine.optimize(&ds, &TimeBudget::seconds(1.0)).unwrap();
        // The very first completed trial must come from a cheap family,
        // never from the expensive forests.
        let first = result.history[0].spec.estimator;
        assert!(
            first.relative_cost() <= EstimatorKind::DecisionTree.relative_cost(),
            "first learner {first} too expensive"
        );
    }

    #[test]
    fn refit_end_to_end_beats_chance() {
        let ds = xor_dataset(300);
        let (train, test) = train_test_split(&ds, 0.3, 5).unwrap();
        let mut engine = Flaml::new(3);
        let result = engine.optimize(&train, &TimeBudget::seconds(3.0)).unwrap();
        let score = result.refit_score(&train, &test).unwrap();
        assert!(score > 0.85, "test score {score}");
    }

    #[test]
    fn capability_document_is_parseable() {
        let engine = Flaml::new(0);
        let (est, _) = space::parse_capabilities(&engine.capabilities()).unwrap();
        assert_eq!(est.len(), EstimatorKind::ALL.len());
    }

    #[test]
    fn regression_support() {
        let x: Vec<f64> = (0..200).map(|i| (i % 20) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        let ds = Dataset::new("sq", f, y, Task::Regression).unwrap();
        let mut engine = Flaml::new(4);
        let result = engine.optimize(&ds, &TimeBudget::seconds(2.0)).unwrap();
        assert!(result.valid_score > 0.8, "r2 {}", result.valid_score);
    }
}
