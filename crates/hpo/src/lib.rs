//! Hyperparameter-optimization engines and AutoML baselines.
//!
//! KGpip "is integrated with the hyperparameter optimizers of both FLAML
//! and Auto-Sklearn" (paper §3.6) and evaluated against FLAML,
//! Auto-Sklearn, and AL as standalone systems (§4.2). This crate rebuilds
//! all three engines from scratch:
//!
//! * [`flaml::Flaml`] — a cost-frugal optimizer in the style of FLAML's
//!   CFO: every learner starts from its cheapest configuration, moves by
//!   randomized directional search with step adaptation, and learners are
//!   scheduled by estimated cost of improvement,
//! * [`autosklearn::AutoSklearn`] — SMAC-style Bayesian optimization
//!   (random-forest surrogate + expected improvement) with a meta-feature
//!   portfolio warm start and greedy ensemble selection,
//! * [`al::Al`] — the AL baseline (Cambronero & Rinard 2019): nearest
//!   dataset by meta-features, verbatim replay of its best historical
//!   pipeline, with the hard failure modes the paper observed ("it failed
//!   on many of the datasets during the fitting process"),
//! * [`space`] — per-learner hyperparameter spaces, low-cost initial
//!   configurations, and the JSON capability document that KGpip's
//!   integration contract requires (§3.6: "a JSON document of the
//!   particular preprocessors and estimators supported by the
//!   hyperparameter optimizer"),
//! * [`budget::TimeBudget`] — the shared wall-clock budget abstraction,
//!   with [`budget::BudgetGate`] making trial admission exact under
//!   concurrency,
//! * [`trial`] — the shared parallel trial-evaluation engine
//!   ([`Evaluator`]): holdout evaluation of pipeline specs, a thread-safe
//!   trial history, and `rayon`-backed batch evaluation.
//!
//! The engines expose two modes with one entry point ([`Optimizer`]):
//! *cold* (search over all learners — the standalone baselines of Figure
//! 5) and *skeleton* (hyperparameter search for a fixed
//! preprocessor/estimator skeleton — the mode KGpip drives with its
//! `(T − t)/K` budget split). Engines *propose* batches of [`Candidate`]s
//! and the evaluator admits, evaluates, and records them; with
//! `parallelism == 1` a run reproduces the historical sequential engines
//! bit-for-bit for a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod al;
pub mod autosklearn;
pub mod budget;
pub mod flaml;
pub mod meta;
pub mod space;
pub mod trial;

pub use al::Al;
pub use autosklearn::AutoSklearn;
pub use budget::{BudgetGate, TimeBudget};
pub use flaml::Flaml;
pub use space::{capabilities_json, parse_capabilities, Skeleton};
pub use trial::{Candidate, Evaluator, HpoResult, Optimizer, SearchReport, TrialOutcome};

/// Errors produced by HPO engines.
#[derive(Debug, Clone, PartialEq)]
pub enum HpoError {
    /// The engine could not complete a single trial within the budget.
    BudgetExhausted,
    /// No learner in the allowed set supports the task.
    NoUsableLearner,
    /// The AL baseline hit one of its hard failure modes.
    BaselineFailure(String),
    /// An underlying learner error that invalidated the whole search.
    Learner(String),
}

impl std::fmt::Display for HpoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HpoError::BudgetExhausted => write!(f, "budget exhausted before any trial finished"),
            HpoError::NoUsableLearner => write!(f, "no usable learner for this task"),
            HpoError::BaselineFailure(m) => write!(f, "baseline failure: {m}"),
            HpoError::Learner(m) => write!(f, "learner error: {m}"),
        }
    }
}

impl std::error::Error for HpoError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HpoError>;
