//! Dataset meta-features.
//!
//! The meta-feature school of cold-starting (paper §2: "dataset properties
//! such as the number of numerical attributes, the number of samples or
//! skewness of the features") — used by the Auto-Sklearn-style warm start
//! and by the AL baseline's nearest-dataset lookup. KGpip itself pointedly
//! does *not* use these (it embeds content); keeping both mechanisms side
//! by side is what lets the experiments compare them.

use kgpip_tabular::{ColumnStats, Dataset, Task};

/// Number of meta-feature dimensions.
pub const META_DIM: usize = 10;

/// Computes a fixed meta-feature vector for a dataset: log #rows, log
/// #cols, fractions of numeric/categorical/text columns, classes, class
/// imbalance, missing ratio, mean skewness, mean cardinality ratio.
pub fn meta_features(ds: &Dataset) -> [f64; META_DIM] {
    let n = ds.num_rows().max(1) as f64;
    let d = ds.num_features().max(1) as f64;
    let (num, cat, text) = ds.features.kind_counts();
    let stats: Vec<ColumnStats> = ds
        .features
        .columns()
        .iter()
        .map(ColumnStats::compute)
        .collect();
    let missing: usize = stats.iter().map(|s| s.missing).sum();
    let mean_skew = if stats.is_empty() {
        0.0
    } else {
        stats.iter().map(|s| s.skewness.abs()).sum::<f64>() / stats.len() as f64
    };
    let mean_card = if stats.is_empty() {
        0.0
    } else {
        stats
            .iter()
            .map(|s| s.cardinality as f64 / s.len.max(1) as f64)
            .sum::<f64>()
            / stats.len() as f64
    };
    let (classes, imbalance) = match ds.task {
        Task::Regression => (0.0, 0.0),
        _ => {
            let counts = ds.class_counts();
            let max = counts.iter().copied().max().unwrap_or(0) as f64;
            let min = counts.iter().copied().min().unwrap_or(0) as f64;
            (
                counts.len() as f64,
                if max > 0.0 { 1.0 - min / max } else { 0.0 },
            )
        }
    };
    [
        n.ln() / 15.0,
        d.ln() / 10.0,
        num as f64 / d,
        cat as f64 / d,
        text as f64 / d,
        (classes + 1.0).ln() / 6.0,
        imbalance,
        missing as f64 / (n * d),
        (mean_skew / 3.0).tanh(),
        mean_card,
    ]
}

/// Euclidean distance between meta-feature vectors.
pub fn meta_distance(a: &[f64; META_DIM], b: &[f64; META_DIM]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_tabular::{Column, DataFrame};

    fn dataset(rows: usize, classes: usize) -> Dataset {
        let x: Vec<f64> = (0..rows).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..rows).map(|i| (i % classes) as f64).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        Dataset::new("d", f, y, Task::classification(classes)).unwrap()
    }

    #[test]
    fn features_are_finite_and_deterministic() {
        let ds = dataset(100, 3);
        let a = meta_features(&ds);
        let b = meta_features(&ds);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn similar_datasets_are_closer_than_dissimilar() {
        let a = meta_features(&dataset(100, 2));
        let b = meta_features(&dataset(120, 2));
        let c = meta_features(&dataset(10000, 30));
        assert!(meta_distance(&a, &b) < meta_distance(&a, &c));
    }

    #[test]
    fn regression_has_zero_class_features() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let f =
            DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x.clone()))]).unwrap();
        let ds = Dataset::new("r", f, x, Task::Regression).unwrap();
        let m = meta_features(&ds);
        assert_eq!(m[5], (1.0f64).ln() / 6.0);
        assert_eq!(m[6], 0.0);
    }

    #[test]
    fn imbalance_is_detected() {
        // 99:1 imbalance.
        let y: Vec<f64> = (0..100).map(|i| f64::from(i == 0)).collect();
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        let ds = Dataset::new("i", f, y, Task::Binary).unwrap();
        assert!(meta_features(&ds)[6] > 0.9);
    }
}
