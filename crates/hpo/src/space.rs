//! Per-learner hyperparameter spaces and the JSON capability contract.

use kgpip_learners::{EstimatorKind, Params, TransformerKind};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A pipeline skeleton: the output of KGpip's graph decoding and the input
/// to skeleton-mode HPO (paper §3.6: "each skeleton is a set of
/// pre-processors and an estimator").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    /// Ordered preprocessors.
    pub transformers: Vec<TransformerKind>,
    /// The estimator.
    pub estimator: EstimatorKind,
}

impl Skeleton {
    /// A bare-estimator skeleton.
    pub fn bare(estimator: EstimatorKind) -> Skeleton {
        Skeleton {
            transformers: Vec::new(),
            estimator,
        }
    }
}

/// Definition of one tunable hyperparameter.
#[derive(Debug, Clone, Copy)]
pub struct ParamDef {
    /// Parameter key in the flat [`Params`] map.
    pub name: &'static str,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
    /// Search on a log scale.
    pub log: bool,
    /// Round to an integer.
    pub int: bool,
    /// Default value.
    pub default: f64,
    /// Cheapest value (FLAML-style low-cost initialization).
    pub low_cost: f64,
}

/// The tunable space of an estimator.
pub fn param_space(kind: EstimatorKind) -> Vec<ParamDef> {
    let p = |name, lo, hi, log, int, default, low_cost| ParamDef {
        name,
        lo,
        hi,
        log,
        int,
        default,
        low_cost,
    };
    match kind {
        EstimatorKind::LogisticRegression | EstimatorKind::LinearSvm => vec![
            p("c", 0.03, 100.0, true, false, 1.0, 1.0),
            p("max_iter", 50.0, 1000.0, true, true, 200.0, 50.0),
        ],
        EstimatorKind::LinearRegression => vec![],
        EstimatorKind::Ridge => vec![p("alpha", 1e-3, 100.0, true, false, 1.0, 1.0)],
        EstimatorKind::Lasso => vec![
            p("alpha", 1e-4, 10.0, true, false, 0.1, 0.1),
            p("max_iter", 50.0, 1000.0, true, true, 300.0, 50.0),
        ],
        EstimatorKind::Knn => vec![
            p("n_neighbors", 1.0, 50.0, true, true, 5.0, 5.0),
            p("weights", 0.0, 1.0, false, true, 0.0, 0.0),
        ],
        EstimatorKind::GaussianNb => vec![p("var_smoothing", 1e-12, 1e-3, true, false, 1e-9, 1e-9)],
        EstimatorKind::DecisionTree => vec![
            p("max_depth", 2.0, 24.0, false, true, 10.0, 4.0),
            p("min_samples_split", 2.0, 32.0, true, true, 2.0, 2.0),
            p("min_samples_leaf", 1.0, 16.0, true, true, 1.0, 1.0),
        ],
        EstimatorKind::RandomForest | EstimatorKind::ExtraTrees => vec![
            p("n_estimators", 4.0, 200.0, true, true, 50.0, 8.0),
            p("max_depth", 3.0, 20.0, false, true, 12.0, 6.0),
            p("max_features", 0.1, 1.0, false, false, 0.5, 0.5),
        ],
        EstimatorKind::GradientBoosting => vec![
            p("n_estimators", 4.0, 200.0, true, true, 60.0, 8.0),
            p("learning_rate", 0.01, 1.0, true, false, 0.1, 0.3),
            p("max_depth", 2.0, 8.0, false, true, 3.0, 2.0),
            p("subsample", 0.5, 1.0, false, false, 1.0, 1.0),
        ],
        EstimatorKind::XgBoost => vec![
            p("n_estimators", 4.0, 250.0, true, true, 60.0, 8.0),
            p("learning_rate", 0.01, 1.0, true, false, 0.1, 0.3),
            p("max_depth", 2.0, 10.0, false, true, 6.0, 3.0),
            p("lambda", 0.01, 10.0, true, false, 1.0, 1.0),
            p("gamma", 0.0, 2.0, false, false, 0.0, 0.0),
            p("subsample", 0.5, 1.0, false, false, 1.0, 1.0),
        ],
        EstimatorKind::Lgbm => vec![
            p("n_estimators", 4.0, 250.0, true, true, 60.0, 8.0),
            p("learning_rate", 0.01, 1.0, true, false, 0.1, 0.3),
            p("max_leaves", 4.0, 64.0, true, true, 31.0, 8.0),
            p("max_bins", 8.0, 64.0, true, true, 32.0, 16.0),
            p("lambda", 0.01, 10.0, true, false, 1.0, 1.0),
        ],
    }
}

/// The default configuration of an estimator.
pub fn default_config(kind: EstimatorKind) -> Params {
    param_space(kind)
        .into_iter()
        .map(|d| (d.name.to_string(), d.default))
        .collect()
}

/// FLAML-style low-cost initial configuration: the cheapest corner of the
/// space that still trains a meaningful model.
pub fn low_cost_config(kind: EstimatorKind) -> Params {
    param_space(kind)
        .into_iter()
        .map(|d| (d.name.to_string(), d.low_cost))
        .collect()
}

/// Uniform (log-uniform where declared) random configuration.
pub fn sample_config(kind: EstimatorKind, rng: &mut StdRng) -> Params {
    param_space(kind)
        .into_iter()
        .map(|d| {
            let v = sample_dim(&d, rng);
            (d.name.to_string(), v)
        })
        .collect()
}

fn sample_dim(d: &ParamDef, rng: &mut StdRng) -> f64 {
    let v = if d.log {
        let lo = d.lo.max(1e-300).ln();
        let hi = d.hi.ln();
        (lo + rng.gen::<f64>() * (hi - lo)).exp()
    } else {
        d.lo + rng.gen::<f64>() * (d.hi - d.lo)
    };
    clamp_dim(d, v)
}

fn clamp_dim(d: &ParamDef, v: f64) -> f64 {
    let v = v.clamp(d.lo, d.hi);
    if d.int {
        v.round()
    } else {
        v
    }
}

/// Moves a configuration along a random direction with relative step size
/// `step` in normalized space (FLAML-style randomized directional search).
pub fn neighbor(kind: EstimatorKind, params: &Params, step: f64, rng: &mut StdRng) -> Params {
    let space = param_space(kind);
    let mut out = params.clone();
    for d in &space {
        let current = params.get(d.name).copied().unwrap_or(d.default);
        // Direction component in [-1, 1].
        let dir: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v = if d.log {
            let span = (d.hi / d.lo.max(1e-300)).ln();
            (current.max(d.lo).ln() + dir * step * span).exp()
        } else {
            current + dir * step * (d.hi - d.lo)
        };
        out.insert(d.name.to_string(), clamp_dim(d, v));
    }
    out
}

/// Encodes a configuration as a normalized [0, 1] vector (for surrogate
/// models). Dimensions follow [`param_space`] order.
pub fn encode_config(kind: EstimatorKind, params: &Params) -> Vec<f64> {
    param_space(kind)
        .iter()
        .map(|d| {
            let v = params.get(d.name).copied().unwrap_or(d.default);
            if d.log {
                let lo = d.lo.max(1e-300).ln();
                let hi = d.hi.ln();
                ((v.max(d.lo).ln() - lo) / (hi - lo).max(1e-12)).clamp(0.0, 1.0)
            } else {
                ((v - d.lo) / (d.hi - d.lo).max(1e-12)).clamp(0.0, 1.0)
            }
        })
        .collect()
}

/// The JSON capability document of §3.6 — what an optimizer supports.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Capabilities {
    /// Name of the optimizer.
    pub optimizer: String,
    /// Supported estimator canonical names.
    pub estimators: Vec<String>,
    /// Supported preprocessor canonical names.
    pub preprocessors: Vec<String>,
}

/// Serializes the capability document for an optimizer supporting the
/// given estimators (all transformers are supported by both engines here).
pub fn capabilities_json(optimizer: &str, estimators: &[EstimatorKind]) -> String {
    let doc = Capabilities {
        optimizer: optimizer.to_string(),
        estimators: estimators.iter().map(|k| k.name().to_string()).collect(),
        preprocessors: TransformerKind::ALL
            .iter()
            .map(|k| k.name().to_string())
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("capability document serializes")
}

/// Parses a capability document back into kind sets. Unknown names are
/// ignored (forward compatibility).
pub fn parse_capabilities(json: &str) -> Option<(Vec<EstimatorKind>, Vec<TransformerKind>)> {
    let doc: Capabilities = serde_json::from_str(json).ok()?;
    let estimators = doc
        .estimators
        .iter()
        .filter_map(|n| EstimatorKind::from_name(n))
        .collect();
    let preprocessors = doc
        .preprocessors
        .iter()
        .filter_map(|n| TransformerKind::from_name(n))
        .collect();
    Some((estimators, preprocessors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_estimator_has_valid_space() {
        for kind in EstimatorKind::ALL {
            for d in param_space(kind) {
                assert!(d.lo <= d.hi, "{kind} {}", d.name);
                assert!(d.default >= d.lo && d.default <= d.hi, "{kind} {}", d.name);
                assert!(
                    d.low_cost >= d.lo && d.low_cost <= d.hi,
                    "{kind} {}",
                    d.name
                );
                if d.log {
                    assert!(d.lo > 0.0, "{kind} {} log scale requires lo > 0", d.name);
                }
            }
        }
    }

    #[test]
    fn samples_stay_in_bounds_and_build() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in EstimatorKind::ALL {
            for _ in 0..20 {
                let cfg = sample_config(kind, &mut rng);
                for d in param_space(kind) {
                    let v = cfg[d.name];
                    assert!(v >= d.lo && v <= d.hi, "{kind} {} = {v}", d.name);
                    if d.int {
                        assert_eq!(v, v.round());
                    }
                }
                kgpip_learners::build_estimator(kind, &cfg)
                    .unwrap_or_else(|e| panic!("{kind}: {e}"));
            }
        }
    }

    #[test]
    fn neighbor_moves_but_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let kind = EstimatorKind::XgBoost;
        let base = default_config(kind);
        let mut moved = false;
        for _ in 0..10 {
            let n = neighbor(kind, &base, 0.3, &mut rng);
            for d in param_space(kind) {
                let v = n[d.name];
                assert!(v >= d.lo && v <= d.hi);
            }
            if n != base {
                moved = true;
            }
        }
        assert!(moved);
    }

    #[test]
    fn encode_config_normalizes() {
        let kind = EstimatorKind::GradientBoosting;
        let lo: Params = param_space(kind)
            .iter()
            .map(|d| (d.name.to_string(), d.lo))
            .collect();
        let hi: Params = param_space(kind)
            .iter()
            .map(|d| (d.name.to_string(), d.hi))
            .collect();
        assert!(encode_config(kind, &lo).iter().all(|v| *v == 0.0));
        assert!(encode_config(kind, &hi)
            .iter()
            .all(|v| (*v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn capability_document_roundtrip() {
        let json = capabilities_json("flaml", &[EstimatorKind::XgBoost, EstimatorKind::Lgbm]);
        let (est, pre) = parse_capabilities(&json).unwrap();
        assert_eq!(est, vec![EstimatorKind::XgBoost, EstimatorKind::Lgbm]);
        assert_eq!(pre.len(), TransformerKind::ALL.len());
        assert!(parse_capabilities("not json").is_none());
    }

    #[test]
    fn low_cost_is_cheaper_than_default_for_ensembles() {
        for kind in [
            EstimatorKind::RandomForest,
            EstimatorKind::XgBoost,
            EstimatorKind::Lgbm,
            EstimatorKind::GradientBoosting,
        ] {
            let low = low_cost_config(kind);
            let def = default_config(kind);
            assert!(low["n_estimators"] < def["n_estimators"], "{kind}");
        }
    }
}
