//! Trial evaluation and the shared optimizer interface.
//!
//! The [`Evaluator`] is the parallel trial-evaluation engine shared by
//! every optimizer: it owns the holdout split, a thread-safe trial
//! history, and a [`BudgetGate`] that makes budget accounting exact under
//! concurrency. Optimizers *propose* batches of [`Candidate`]s and the
//! evaluator admits, evaluates (with `rayon` when `parallelism > 1`), and
//! records them — engines no longer hand-roll fit/score/budget
//! bookkeeping. With `parallelism == 1` the engine reproduces the
//! sequential evaluation order bit-for-bit, which keeps seeded runs
//! deterministic.

use crate::budget::{BudgetGate, TimeBudget};
use crate::space::Skeleton;
use crate::Result;
use kgpip_learners::pipeline::{Pipeline, PipelineSpec};
use kgpip_learners::{EncodedDataset, Params, TransformCache};
use kgpip_tabular::{effective_parallelism, train_test_split, Dataset};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fraction of training rows held out for trial validation.
pub const HOLDOUT_FRACTION: f64 = 0.2;

/// Holdout prediction block size for streamed trial scoring. Predictions
/// are scored block-by-block so a trial never materializes the full
/// holdout prediction matrix; every estimator predicts row-independently
/// and the score accumulator replays the unstreamed fold order, so the
/// block size changes peak memory, never the score.
pub const SCORE_BLOCK_ROWS: usize = 4096;

/// Cap on distinct failure messages kept in a [`SearchReport`].
pub const MAX_REPORT_ERRORS: usize = 8;

/// The outcome of one pipeline-spec evaluation.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The evaluated spec.
    pub spec: PipelineSpec,
    /// Validation score (macro-F1 / R²); `None` when the fit failed.
    pub score: Option<f64>,
    /// The learner error when the fit failed (set iff `score` is `None`),
    /// so degenerate configs and cache bugs leave a trace.
    pub error: Option<String>,
    /// Wall-clock cost of the trial.
    pub cost: Duration,
}

/// Aggregate diagnostics of a search run: trial and failure counts, a
/// capped sample of distinct failure messages, and the transform-cache
/// hit/miss counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchReport {
    /// Trials recorded in the history.
    pub trials: usize,
    /// Trials whose fit failed (`score == None`).
    pub failures: usize,
    /// Distinct failure messages, at most [`MAX_REPORT_ERRORS`].
    pub errors: Vec<String>,
    /// Transformer-prefix cache hits.
    pub cache_hits: u64,
    /// Transformer-prefix cache misses.
    pub cache_misses: u64,
    /// Trials that ran against the pre-encoded splits (the encode-once
    /// fast path). Skeleton-only searches with no transformers never
    /// consult the transform cache — this counter shows the caching that
    /// *did* happen there, instead of a misleading 0% hit rate.
    pub encoded_trials: u64,
}

impl SearchReport {
    /// Failure accounting from a trial history (cache counters stay 0; the
    /// [`Evaluator`] fills them in).
    pub fn from_history(history: &[TrialOutcome]) -> SearchReport {
        let mut report = SearchReport {
            trials: history.len(),
            ..SearchReport::default()
        };
        for outcome in history {
            if outcome.score.is_some() {
                continue;
            }
            report.failures += 1;
            if let Some(err) = &outcome.error {
                if report.errors.len() < MAX_REPORT_ERRORS && !report.errors.contains(err) {
                    report.errors.push(err.clone());
                }
            }
        }
        report
    }

    /// Total transform-cache lookups (hits + misses). Zero means the
    /// search never consulted the cache at all — a hit *rate* is
    /// meaningless then, not 0%.
    pub fn cache_lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// Transform-cache hit rate in `[0, 1]`; `None` when the cache was
    /// never looked up (e.g. skeleton-only searches with no transformer
    /// chains), so callers cannot mistake "unused" for "0% effective".
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_lookups();
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }
}

/// The result of a full optimization run.
#[derive(Debug, Clone)]
pub struct HpoResult {
    /// Best pipeline spec found.
    pub spec: PipelineSpec,
    /// Its validation score.
    pub valid_score: f64,
    /// Number of completed trials.
    pub trials: usize,
    /// Full trial history (for diagnostics and the Fig-8 logs).
    pub history: Vec<TrialOutcome>,
    /// Optional ensemble members (Auto-Sklearn-style greedy selection);
    /// empty means deploy `spec` alone. Members may repeat (weighting).
    pub ensemble: Vec<PipelineSpec>,
    /// Failure and cache diagnostics for the run.
    pub report: SearchReport,
}

impl HpoResult {
    /// A single-spec result.
    pub fn single(spec: PipelineSpec, valid_score: f64, history: Vec<TrialOutcome>) -> HpoResult {
        HpoResult {
            spec,
            valid_score,
            trials: history.len(),
            report: SearchReport::from_history(&history),
            history,
            ensemble: Vec::new(),
        }
    }

    /// Refits the deployed model (ensemble if present, else the best
    /// single spec) on the full training set and scores it on a held-out
    /// test set with the paper's metric. Member refits run in parallel
    /// (rayon) but predictions are combined — and the first error
    /// surfaced — in member order, so the result does not depend on
    /// completion order.
    pub fn refit_score(&self, train: &Dataset, test: &Dataset) -> Result<f64> {
        let members: Vec<&PipelineSpec> = if self.ensemble.is_empty() {
            vec![&self.spec]
        } else {
            self.ensemble.iter().collect()
        };
        // Encode once and share a transform cache across member refits;
        // fall back to the raw-dataset path if encoding itself fails.
        let encoded = EncodedDataset::from_dataset(train).ok().and_then(|tr| {
            EncodedDataset::with_encoder(tr.encoder(), test)
                .ok()
                .map(|te| (tr, te))
        });
        let cache = TransformCache::default();
        let refit = |spec: &&PipelineSpec| -> std::result::Result<Vec<f64>, String> {
            let mut pipeline = Pipeline::from_spec((*spec).clone()).map_err(|e| e.to_string())?;
            match &encoded {
                Some((tr, te)) => pipeline
                    .fit_predict_encoded(tr, te, Some(&cache))
                    .map_err(|e| e.to_string()),
                None => pipeline
                    .fit(train)
                    .and_then(|()| pipeline.predict(test))
                    .map_err(|e| e.to_string()),
            }
        };
        // Member refits ride the global rayon pool, gated on the clamp so
        // a 1-CPU host takes the sequential path outright.
        let results: Vec<std::result::Result<Vec<f64>, String>> =
            if effective_parallelism(members.len()) > 1 {
                members.par_iter().map(refit).collect()
            } else {
                members.iter().map(refit).collect()
            };
        let mut all_preds: Vec<Vec<f64>> = Vec::with_capacity(results.len());
        for result in results {
            all_preds.push(result.map_err(crate::HpoError::Learner)?);
        }
        let combined = combine_predictions(&all_preds, train.task.is_classification());
        Ok(kgpip_learners::pipeline::score_predictions(test, &combined))
    }
}

/// Combines member predictions: majority vote for classification, mean
/// for regression.
pub fn combine_predictions(preds: &[Vec<f64>], classification: bool) -> Vec<f64> {
    if preds.len() == 1 {
        return preds[0].clone();
    }
    let n = preds[0].len();
    (0..n)
        .map(|i| {
            if classification {
                let mut counts: std::collections::BTreeMap<u64, usize> = Default::default();
                for p in preds {
                    *counts.entry(p[i].to_bits()).or_insert(0) += 1;
                }
                counts
                    .into_iter()
                    .max_by_key(|(_, c)| *c)
                    .map(|(bits, _)| f64::from_bits(bits))
                    .unwrap_or(0.0)
            } else {
                preds.iter().map(|p| p[i]).sum::<f64>() / preds.len() as f64
            }
        })
        .collect()
}

/// The uniform optimizer interface shared by every engine.
pub trait Optimizer {
    /// Cold-start mode: full search over the engine's supported learners.
    fn optimize(&mut self, train: &Dataset, budget: &TimeBudget) -> Result<HpoResult>;

    /// Skeleton mode: hyperparameter search for a fixed skeleton — the
    /// entry point KGpip drives (§3.6).
    fn optimize_skeleton(
        &mut self,
        train: &Dataset,
        skeleton: &Skeleton,
        budget: &TimeBudget,
    ) -> Result<HpoResult>;

    /// The engine's §3.6 JSON capability document.
    fn capabilities(&self) -> String;

    /// Sets how many trials the engine's evaluator may run concurrently
    /// (1 = sequential, the default; engines without search may ignore
    /// it).
    fn set_parallelism(&mut self, _parallelism: usize) {}

    /// The engine's configured evaluation parallelism.
    fn parallelism(&self) -> usize {
        1
    }

    /// Enables or disables the trial caches (pre-encoded datasets +
    /// transformer-prefix memoization). On by default; caching changes
    /// trial cost, never trial values. Engines without an evaluator may
    /// ignore it.
    fn set_trial_cache(&mut self, _enabled: bool) {}

    /// An owned copy of this engine, for running skeletons on parallel
    /// lanes. Cloning copies configuration (seed, learner sets,
    /// parallelism), not search state — each lane starts fresh.
    fn clone_boxed(&self) -> Box<dyn Optimizer + Send>;
}

/// One proposed trial: a skeleton plus a hyperparameter configuration.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The pipeline skeleton to instantiate.
    pub skeleton: Skeleton,
    /// Hyperparameters for the skeleton's estimator.
    pub params: Params,
}

impl Candidate {
    /// Convenience constructor.
    pub fn new(skeleton: Skeleton, params: Params) -> Candidate {
        Candidate { skeleton, params }
    }
}

/// The shared trial-evaluation engine: a deterministic holdout split, a
/// thread-safe trial history, a [`BudgetGate`], and an evaluation worker
/// pool.
///
/// Optimizers call [`evaluate_batch`] with the candidates they want tried
/// this round. The evaluator admits candidates through the gate in
/// proposal order (stopping at the first rejection — budgets do not
/// un-expire), evaluates the admitted ones (concurrently when
/// `parallelism > 1`), and appends the outcomes to the history *in
/// proposal order* regardless of which finished first. Batch results are
/// therefore deterministic for a fixed seed at any parallelism; with
/// `parallelism == 1` the whole run is bit-for-bit identical to the
/// historical sequential engines.
///
/// [`evaluate_batch`]: Evaluator::evaluate_batch
pub struct Evaluator {
    train: Dataset,
    valid: Dataset,
    /// Train/holdout splits pre-encoded with the training split's encoder
    /// (`None` when encoding failed; trials then fall back to raw frames).
    encoded: Option<(Arc<EncodedDataset>, Arc<EncodedDataset>)>,
    /// Transformer-prefix memo shared by all trials of this evaluator.
    cache: Arc<TransformCache>,
    caching: bool,
    gate: BudgetGate,
    history: Mutex<Vec<TrialOutcome>>,
    parallelism: usize,
    /// Trials that took the pre-encoded fast path (see
    /// [`SearchReport::encoded_trials`]).
    encoded_trials: AtomicU64,
}

impl Evaluator {
    /// Builds an evaluator with a seeded holdout split, gated by the
    /// given budget. Starts sequential with trial caching on; see
    /// [`with_parallelism`] and [`with_cache`].
    ///
    /// [`with_parallelism`]: Evaluator::with_parallelism
    /// [`with_cache`]: Evaluator::with_cache
    pub fn new(train: &Dataset, seed: u64, budget: &TimeBudget) -> Result<Evaluator> {
        let (fit_part, valid) = train_test_split(train, HOLDOUT_FRACTION, seed)
            .map_err(|e| crate::HpoError::Learner(e.to_string()))?;
        let encoded = EncodedDataset::from_dataset(&fit_part).ok().and_then(|tr| {
            EncodedDataset::with_encoder(tr.encoder(), &valid)
                .ok()
                .map(|va| (Arc::new(tr), Arc::new(va)))
        });
        Ok(Evaluator {
            train: fit_part,
            valid,
            encoded,
            cache: Arc::new(TransformCache::default()),
            caching: true,
            gate: BudgetGate::new(budget),
            history: Mutex::new(Vec::new()),
            parallelism: 1,
            encoded_trials: AtomicU64::new(0),
        })
    }

    /// Sets the number of concurrent trial evaluations (clamped to ≥ 1).
    pub fn with_parallelism(mut self, parallelism: usize) -> Evaluator {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Enables or disables trial caching. Disabled, every trial runs the
    /// original raw-frame `fit_score` path — caching can only change what
    /// a trial *costs*, never what it scores (the cache-equivalence suite
    /// pins this down bit-for-bit).
    pub fn with_cache(mut self, enabled: bool) -> Evaluator {
        self.caching = enabled;
        self
    }

    /// Whether trial caching is enabled.
    pub fn caching(&self) -> bool {
        self.caching
    }

    /// The configured evaluation parallelism.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The budget gate.
    pub fn gate(&self) -> &BudgetGate {
        &self.gate
    }

    /// Whether the underlying budget is exhausted (loop condition for
    /// optimizers; admission itself is the gate's job).
    pub fn budget_expired(&self) -> bool {
        self.gate.expired()
    }

    /// The validation part (used by ensemble selection).
    pub fn validation(&self) -> &Dataset {
        &self.valid
    }

    /// The fitting part.
    pub fn fit_part(&self) -> &Dataset {
        &self.train
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> usize {
        self.history.lock().len()
    }

    /// A snapshot of the trial history, in admission order.
    pub fn history(&self) -> Vec<TrialOutcome> {
        self.history.lock().clone()
    }

    /// Failure accounting over the recorded history plus the live
    /// transform-cache counters.
    pub fn report(&self) -> SearchReport {
        let mut report = SearchReport::from_history(&self.history());
        report.cache_hits = self.cache.hits();
        report.cache_misses = self.cache.misses();
        report.encoded_trials = self.encoded_trials.load(Ordering::Relaxed);
        report
    }

    /// Admits and evaluates a batch of candidates. Admission happens in
    /// proposal order and stops at the first gate rejection; admitted
    /// candidates are evaluated (in parallel when configured) and their
    /// outcomes recorded and returned in proposal order. An empty return
    /// means the budget is exhausted.
    pub fn evaluate_batch(&self, batch: &[Candidate]) -> Vec<TrialOutcome> {
        let admitted: Vec<&Candidate> = batch.iter().take_while(|_| self.gate.admit()).collect();
        // Clamp to the CPUs actually present: on a 1-CPU host a
        // `parallelism = 2` config would pay pool construction and
        // contention for zero concurrency (outcomes are recorded in
        // proposal order either way, so only the cost changes).
        let workers = effective_parallelism(self.parallelism);
        let outcomes: Vec<TrialOutcome> = if workers > 1 && admitted.len() > 1 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .expect("thread pool construction");
            pool.install(|| {
                admitted
                    .par_iter()
                    .map(|c| self.evaluate(&c.skeleton, c.params.clone()))
                    .collect()
            })
        } else {
            admitted
                .iter()
                .map(|c| self.evaluate(&c.skeleton, c.params.clone()))
                .collect()
        };
        self.history.lock().extend(outcomes.iter().cloned());
        outcomes
    }

    /// Evaluates one spec *without* touching the gate or the history —
    /// the pure scoring primitive (also used by benchmarks and replay
    /// paths that account for budgets themselves). Learner errors become
    /// `score: None` with the message in `error` rather than aborting the
    /// search (an optimizer must survive bad configurations).
    ///
    /// With caching on, the trial runs against the pre-encoded splits and
    /// the shared transform cache — bit-for-bit the score of the raw
    /// `fit_score` path, minus the repeated encode/preprocess work.
    pub fn evaluate(&self, skeleton: &Skeleton, params: Params) -> TrialOutcome {
        let spec = PipelineSpec {
            transformers: skeleton
                .transformers
                .iter()
                .map(|k| (*k, Params::new()))
                .collect(),
            estimator: skeleton.estimator,
            params,
        };
        #[allow(clippy::disallowed_methods)]
        // xlint: allow(wall-clock-in-compute): trial duration is a reported statistic on the HPO result; the search never branches on it
        let started = std::time::Instant::now();
        let fit = Pipeline::from_spec(spec.clone()).and_then(|mut p| {
            match (self.caching, &self.encoded) {
                (true, Some((tr, va))) => {
                    self.encoded_trials.fetch_add(1, Ordering::Relaxed);
                    p.fit_score_encoded_streamed(tr, va, Some(&self.cache), SCORE_BLOCK_ROWS)
                }
                _ => p.fit_score(&self.train, &self.valid),
            }
        });
        let (score, error) = match fit {
            Ok(score) => (Some(score), None),
            Err(e) => (None, Some(e.to_string())),
        };
        TrialOutcome {
            spec,
            score,
            error,
            cost: started.elapsed(),
        }
    }

    /// Builds the run result from the recorded history: the earliest
    /// best-scoring trial wins (strict improvement, matching the
    /// sequential engines). Errors with `BudgetExhausted` when no trial
    /// scored.
    pub fn result(&self) -> Result<HpoResult> {
        let history = self.history();
        let mut best: Option<(usize, f64)> = None;
        for (idx, outcome) in history.iter().enumerate() {
            if let Some(score) = outcome.score {
                if best.is_none_or(|(_, b)| score > b) {
                    best = Some((idx, score));
                }
            }
        }
        let Some((idx, score)) = best else {
            return Err(crate::HpoError::BudgetExhausted);
        };
        let mut result = HpoResult::single(history[idx].spec.clone(), score, history);
        result.report = self.report();
        Ok(result)
    }

    /// Per-trial validation predictions for ensemble selection (same
    /// cached fast path as [`evaluate`]).
    ///
    /// [`evaluate`]: Evaluator::evaluate
    pub fn predictions(&self, spec: &PipelineSpec) -> Option<Vec<f64>> {
        let mut p = Pipeline::from_spec(spec.clone()).ok()?;
        match (self.caching, &self.encoded) {
            (true, Some((tr, va))) => p.fit_predict_encoded(tr, va, Some(&self.cache)).ok(),
            _ => {
                p.fit(&self.train).ok()?;
                p.predict(&self.valid).ok()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_learners::EstimatorKind;
    use kgpip_tabular::{Column, DataFrame, Task};

    fn toy(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 4.5)).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        Dataset::new("toy", f, y, Task::Binary).unwrap()
    }

    fn wide_budget() -> TimeBudget {
        TimeBudget::seconds(600.0).with_trial_cap(1_000)
    }

    #[test]
    fn evaluator_scores_good_and_bad_specs() {
        let ds = toy(200);
        let budget = wide_budget();
        let ev = Evaluator::new(&ds, 0, &budget).unwrap();
        let good = ev.evaluate(&Skeleton::bare(EstimatorKind::DecisionTree), Params::new());
        assert!(good.score.unwrap() > 0.9);
        // Regression-only learner on classification: survives as None.
        let bad = ev.evaluate(&Skeleton::bare(EstimatorKind::Ridge), Params::new());
        assert_eq!(bad.score, None);
        // Pure evaluate never touches the gate or history.
        assert_eq!(ev.trials(), 0);
        assert_eq!(budget.trials_used(), 0);
    }

    #[test]
    fn holdout_is_deterministic() {
        let ds = toy(100);
        let budget = wide_budget();
        let a = Evaluator::new(&ds, 7, &budget).unwrap();
        let b = Evaluator::new(&ds, 7, &budget).unwrap();
        assert_eq!(a.validation().target, b.validation().target);
        assert_eq!(a.fit_part().num_rows(), 80);
    }

    #[test]
    fn evaluate_batch_records_history_and_consumes_trials() {
        let ds = toy(200);
        let budget = TimeBudget::seconds(600.0).with_trial_cap(3);
        let ev = Evaluator::new(&ds, 0, &budget).unwrap();
        let batch: Vec<Candidate> = vec![
            Candidate::new(Skeleton::bare(EstimatorKind::DecisionTree), Params::new()),
            Candidate::new(Skeleton::bare(EstimatorKind::Knn), Params::new()),
            Candidate::new(Skeleton::bare(EstimatorKind::DecisionTree), Params::new()),
            Candidate::new(Skeleton::bare(EstimatorKind::Knn), Params::new()),
        ];
        // Cap is 3: the fourth candidate must be refused at the gate.
        let outcomes = ev.evaluate_batch(&batch);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(ev.trials(), 3);
        assert_eq!(budget.trials_used(), 3);
        // Exhausted: the next batch admits nothing.
        assert!(ev.evaluate_batch(&batch).is_empty());
        assert_eq!(ev.trials(), 3);
    }

    #[test]
    fn parallel_batch_preserves_proposal_order() {
        let ds = toy(200);
        let budget = wide_budget();
        let kinds = [
            EstimatorKind::DecisionTree,
            EstimatorKind::Knn,
            EstimatorKind::LogisticRegression,
            EstimatorKind::GradientBoosting,
        ];
        let batch: Vec<Candidate> = kinds
            .iter()
            .map(|k| Candidate::new(Skeleton::bare(*k), Params::new()))
            .collect();
        let seq = Evaluator::new(&ds, 0, &budget).unwrap();
        let par = Evaluator::new(&ds, 0, &budget).unwrap().with_parallelism(4);
        let a = seq.evaluate_batch(&batch);
        let b = par.evaluate_batch(&batch);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec.estimator, y.spec.estimator);
            assert_eq!(x.score, y.score);
        }
    }

    #[test]
    fn result_picks_earliest_best_or_errors_when_empty() {
        let ds = toy(200);
        let budget = wide_budget();
        let ev = Evaluator::new(&ds, 0, &budget).unwrap();
        assert!(matches!(ev.result(), Err(crate::HpoError::BudgetExhausted)));
        let batch = vec![
            Candidate::new(Skeleton::bare(EstimatorKind::DecisionTree), Params::new()),
            Candidate::new(Skeleton::bare(EstimatorKind::DecisionTree), Params::new()),
        ];
        ev.evaluate_batch(&batch);
        let result = ev.result().unwrap();
        assert_eq!(result.trials, 2);
        assert_eq!(result.history.len(), 2);
        // Equal scores: the earliest trial wins (strict improvement).
        assert_eq!(result.valid_score, result.history[0].score.unwrap());
    }

    #[test]
    fn refit_score_runs_end_to_end() {
        let ds = toy(200);
        let (train, test) = train_test_split(&ds, 0.3, 1).unwrap();
        let result =
            HpoResult::single(PipelineSpec::bare(EstimatorKind::DecisionTree), 1.0, vec![]);
        let score = result.refit_score(&train, &test).unwrap();
        assert!(score > 0.9);
    }

    #[test]
    fn ensemble_majority_vote_and_mean() {
        let votes = vec![
            vec![0.0, 1.0, 1.0],
            vec![0.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0],
        ];
        assert_eq!(combine_predictions(&votes, true), vec![0.0, 1.0, 0.0]);
        let values = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(combine_predictions(&values, false), vec![2.0, 3.0]);
    }

    #[test]
    fn ensemble_refit_runs() {
        let ds = toy(200);
        let (train, test) = train_test_split(&ds, 0.3, 1).unwrap();
        let result = HpoResult {
            spec: PipelineSpec::bare(EstimatorKind::DecisionTree),
            valid_score: 1.0,
            trials: 2,
            history: vec![],
            ensemble: vec![
                PipelineSpec::bare(EstimatorKind::DecisionTree),
                PipelineSpec::bare(EstimatorKind::Knn),
            ],
            report: SearchReport::default(),
        };
        let score = result.refit_score(&train, &test).unwrap();
        assert!(score > 0.8);
    }

    #[test]
    fn failed_trials_record_errors_and_report_counts() {
        let ds = toy(200);
        let budget = wide_budget();
        let ev = Evaluator::new(&ds, 0, &budget).unwrap();
        let batch = vec![
            Candidate::new(Skeleton::bare(EstimatorKind::DecisionTree), Params::new()),
            // Regression-only learner on a binary task: must fail visibly.
            Candidate::new(Skeleton::bare(EstimatorKind::Ridge), Params::new()),
            Candidate::new(Skeleton::bare(EstimatorKind::Ridge), Params::new()),
        ];
        let outcomes = ev.evaluate_batch(&batch);
        assert!(outcomes[0].error.is_none());
        let err = outcomes[1].error.as_ref().expect("failure recorded");
        assert!(err.contains("ridge"), "unexpected error: {err}");
        let report = ev.report();
        assert_eq!(report.trials, 3);
        assert_eq!(report.failures, 2);
        // The duplicate failure message is deduplicated.
        assert_eq!(report.errors.len(), 1);
    }

    #[test]
    fn report_surfaces_cache_counters() {
        let ds = toy(200);
        let budget = wide_budget();
        let ev = Evaluator::new(&ds, 0, &budget).unwrap();
        let skel = Skeleton {
            transformers: vec![kgpip_learners::TransformerKind::StandardScaler],
            estimator: EstimatorKind::DecisionTree,
        };
        ev.evaluate_batch(&[
            Candidate::new(skel.clone(), Params::new()),
            Candidate::new(skel, Params::new()),
        ]);
        let report = ev.report();
        // Same chain prefix twice: first trial misses, second hits.
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.encoded_trials, 2, "both trials took the fast path");
        let rate = report.cache_hit_rate().expect("cache was consulted");
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn streamed_holdout_scoring_matches_the_unstreamed_score() {
        let ds = toy(200);
        let budget = wide_budget();
        let ev = Evaluator::new(&ds, 0, &budget).unwrap();
        let skel = Skeleton {
            transformers: vec![kgpip_learners::TransformerKind::StandardScaler],
            estimator: EstimatorKind::DecisionTree,
        };
        for skeleton in [Skeleton::bare(EstimatorKind::DecisionTree), skel] {
            let streamed = ev
                .evaluate(&skeleton, Params::new())
                .score
                .expect("trial scores");
            let spec = PipelineSpec {
                transformers: skeleton
                    .transformers
                    .iter()
                    .map(|k| (*k, Params::new()))
                    .collect(),
                estimator: skeleton.estimator,
                params: Params::new(),
            };
            let (tr, va) = ev.encoded.as_ref().expect("toy data encodes");
            let unstreamed = Pipeline::from_spec(spec)
                .unwrap()
                .fit_score_encoded(tr, va, None)
                .unwrap();
            assert_eq!(streamed.to_bits(), unstreamed.to_bits());
        }
    }

    #[test]
    fn unused_cache_reports_no_hit_rate() {
        let report = SearchReport::default();
        assert_eq!(report.cache_lookups(), 0);
        assert_eq!(
            report.cache_hit_rate(),
            None,
            "an unconsulted cache has no hit rate, not a 0% one"
        );
    }
}
