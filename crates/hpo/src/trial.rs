//! Trial evaluation and the shared optimizer interface.

use crate::budget::TimeBudget;
use crate::space::Skeleton;
use crate::Result;
use kgpip_learners::pipeline::{Pipeline, PipelineSpec};
use kgpip_learners::Params;
use kgpip_tabular::{train_test_split, Dataset};
use std::time::Duration;

/// Fraction of training rows held out for trial validation.
pub const HOLDOUT_FRACTION: f64 = 0.2;

/// The outcome of one pipeline-spec evaluation.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The evaluated spec.
    pub spec: PipelineSpec,
    /// Validation score (macro-F1 / R²); `None` when the fit failed.
    pub score: Option<f64>,
    /// Wall-clock cost of the trial.
    pub cost: Duration,
}

/// The result of a full optimization run.
#[derive(Debug, Clone)]
pub struct HpoResult {
    /// Best pipeline spec found.
    pub spec: PipelineSpec,
    /// Its validation score.
    pub valid_score: f64,
    /// Number of completed trials.
    pub trials: usize,
    /// Full trial history (for diagnostics and the Fig-8 logs).
    pub history: Vec<TrialOutcome>,
    /// Optional ensemble members (Auto-Sklearn-style greedy selection);
    /// empty means deploy `spec` alone. Members may repeat (weighting).
    pub ensemble: Vec<PipelineSpec>,
}

impl HpoResult {
    /// A single-spec result.
    pub fn single(spec: PipelineSpec, valid_score: f64, history: Vec<TrialOutcome>) -> HpoResult {
        HpoResult {
            spec,
            valid_score,
            trials: history.len(),
            history,
            ensemble: Vec::new(),
        }
    }

    /// Refits the deployed model (ensemble if present, else the best
    /// single spec) on the full training set and scores it on a held-out
    /// test set with the paper's metric.
    pub fn refit_score(&self, train: &Dataset, test: &Dataset) -> Result<f64> {
        let members: Vec<&PipelineSpec> = if self.ensemble.is_empty() {
            vec![&self.spec]
        } else {
            self.ensemble.iter().collect()
        };
        let mut all_preds: Vec<Vec<f64>> = Vec::new();
        for spec in members {
            let mut pipeline = Pipeline::from_spec(spec.clone())
                .map_err(|e| crate::HpoError::Learner(e.to_string()))?;
            pipeline
                .fit(train)
                .map_err(|e| crate::HpoError::Learner(e.to_string()))?;
            all_preds.push(
                pipeline
                    .predict(test)
                    .map_err(|e| crate::HpoError::Learner(e.to_string()))?,
            );
        }
        let combined = combine_predictions(&all_preds, train.task.is_classification());
        Ok(kgpip_learners::pipeline::score_predictions(test, &combined))
    }
}

/// Combines member predictions: majority vote for classification, mean
/// for regression.
pub fn combine_predictions(preds: &[Vec<f64>], classification: bool) -> Vec<f64> {
    if preds.len() == 1 {
        return preds[0].clone();
    }
    let n = preds[0].len();
    (0..n)
        .map(|i| {
            if classification {
                let mut counts: std::collections::BTreeMap<u64, usize> = Default::default();
                for p in preds {
                    *counts.entry(p[i].to_bits()).or_insert(0) += 1;
                }
                counts
                    .into_iter()
                    .max_by_key(|(_, c)| *c)
                    .map(|(bits, _)| f64::from_bits(bits))
                    .unwrap_or(0.0)
            } else {
                preds.iter().map(|p| p[i]).sum::<f64>() / preds.len() as f64
            }
        })
        .collect()
}

/// The uniform optimizer interface shared by both engines.
pub trait Optimizer {
    /// Cold-start mode: full search over the engine's supported learners.
    fn optimize(&mut self, train: &Dataset, budget: &TimeBudget) -> Result<HpoResult>;

    /// Skeleton mode: hyperparameter search for a fixed skeleton — the
    /// entry point KGpip drives (§3.6).
    fn optimize_skeleton(
        &mut self,
        train: &Dataset,
        skeleton: &Skeleton,
        budget: &TimeBudget,
    ) -> Result<HpoResult>;

    /// The engine's §3.6 JSON capability document.
    fn capabilities(&self) -> String;
}

/// A deterministic holdout evaluator: splits the training set once and
/// scores every trial spec on the same validation part.
pub struct Evaluator {
    train: Dataset,
    valid: Dataset,
}

impl Evaluator {
    /// Builds an evaluator with a seeded holdout split.
    pub fn new(train: &Dataset, seed: u64) -> Result<Evaluator> {
        let (fit_part, valid) = train_test_split(train, HOLDOUT_FRACTION, seed)
            .map_err(|e| crate::HpoError::Learner(e.to_string()))?;
        Ok(Evaluator {
            train: fit_part,
            valid,
        })
    }

    /// The validation part (used by ensemble selection).
    pub fn validation(&self) -> &Dataset {
        &self.valid
    }

    /// The fitting part.
    pub fn fit_part(&self) -> &Dataset {
        &self.train
    }

    /// Evaluates one spec, returning its outcome. Learner errors become
    /// `score: None` rather than aborting the search (an optimizer must
    /// survive bad configurations).
    pub fn evaluate(&self, skeleton: &Skeleton, params: Params) -> TrialOutcome {
        let spec = PipelineSpec {
            transformers: skeleton
                .transformers
                .iter()
                .map(|k| (*k, Params::new()))
                .collect(),
            estimator: skeleton.estimator,
            params,
        };
        let started = std::time::Instant::now();
        let score = Pipeline::from_spec(spec.clone())
            .and_then(|mut p| p.fit_score(&self.train, &self.valid))
            .ok();
        TrialOutcome {
            spec,
            score,
            cost: started.elapsed(),
        }
    }

    /// Per-trial validation predictions for ensemble selection.
    pub fn predictions(&self, spec: &PipelineSpec) -> Option<Vec<f64>> {
        let mut p = Pipeline::from_spec(spec.clone()).ok()?;
        p.fit(&self.train).ok()?;
        p.predict(&self.valid).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_learners::EstimatorKind;
    use kgpip_tabular::{Column, DataFrame, Task};

    fn toy(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 4.5)).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        Dataset::new("toy", f, y, Task::Binary).unwrap()
    }

    #[test]
    fn evaluator_scores_good_and_bad_specs() {
        let ds = toy(200);
        let ev = Evaluator::new(&ds, 0).unwrap();
        let good = ev.evaluate(
            &Skeleton::bare(EstimatorKind::DecisionTree),
            Params::new(),
        );
        assert!(good.score.unwrap() > 0.9);
        // Regression-only learner on classification: survives as None.
        let bad = ev.evaluate(&Skeleton::bare(EstimatorKind::Ridge), Params::new());
        assert_eq!(bad.score, None);
    }

    #[test]
    fn holdout_is_deterministic() {
        let ds = toy(100);
        let a = Evaluator::new(&ds, 7).unwrap();
        let b = Evaluator::new(&ds, 7).unwrap();
        assert_eq!(a.validation().target, b.validation().target);
        assert_eq!(a.fit_part().num_rows(), 80);
    }

    #[test]
    fn refit_score_runs_end_to_end() {
        let ds = toy(200);
        let (train, test) = train_test_split(&ds, 0.3, 1).unwrap();
        let result = HpoResult::single(
            PipelineSpec::bare(EstimatorKind::DecisionTree),
            1.0,
            vec![],
        );
        let score = result.refit_score(&train, &test).unwrap();
        assert!(score > 0.9);
    }

    #[test]
    fn ensemble_majority_vote_and_mean() {
        let votes = vec![
            vec![0.0, 1.0, 1.0],
            vec![0.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0],
        ];
        assert_eq!(combine_predictions(&votes, true), vec![0.0, 1.0, 0.0]);
        let values = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(combine_predictions(&values, false), vec![2.0, 3.0]);
    }

    #[test]
    fn ensemble_refit_runs() {
        let ds = toy(200);
        let (train, test) = train_test_split(&ds, 0.3, 1).unwrap();
        let result = HpoResult {
            spec: PipelineSpec::bare(EstimatorKind::DecisionTree),
            valid_score: 1.0,
            trials: 2,
            history: vec![],
            ensemble: vec![
                PipelineSpec::bare(EstimatorKind::DecisionTree),
                PipelineSpec::bare(EstimatorKind::Knn),
            ],
        };
        let score = result.refit_score(&train, &test).unwrap();
        assert!(score > 0.8);
    }
}
