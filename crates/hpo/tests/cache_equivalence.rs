//! Cached-vs-uncached equivalence: the trial caches (dataset-level encode
//! cache + transformer-prefix cache) may only change what a trial *costs*,
//! never what it computes. With caching disabled the evaluator runs the
//! literal pre-cache raw-frame `fit_score` path, so every comparison here
//! is against the historical behaviour — and every score is compared
//! through `f64::to_bits`, not a tolerance.
//!
//! This is valid run-to-run because engine scheduling is wall-clock-free:
//! FLAML prioritizes learners by a static cost model and both engines stop
//! on a trial cap, so cache-on and cache-off runs propose identical trial
//! sequences.

use kgpip_hpo::{
    AutoSklearn, Candidate, Evaluator, Flaml, HpoResult, Optimizer, Skeleton, TimeBudget,
    TrialOutcome,
};
use kgpip_learners::pipeline::{score_predictions, PipelineSpec};
use kgpip_learners::{EstimatorKind, Params, Pipeline, TransformerKind};
use kgpip_tabular::{Column, DataFrame, Dataset, Task};

/// Binary dataset with numeric, categorical, and NaN-bearing columns —
/// exercises the feature encoder, the implicit imputer prepend, and any
/// user transformer chain on top.
fn messy_dataset(n: usize) -> Dataset {
    let a: Vec<f64> = (0..n)
        .map(|i| {
            if i % 11 == 3 {
                f64::NAN
            } else {
                ((i * 13 % 29) as f64) / 29.0
            }
        })
        .collect();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 23) as f64) - 11.0).collect();
    let cat: Vec<Option<&str>> = (0..n)
        .map(|i| Some(["red", "green", "blue"][i % 3]))
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from((i * 13 % 29) as f64 / 29.0 + ((i * 7 % 23) as f64 - 11.0) * 0.05 > 0.4))
        .collect();
    let f = DataFrame::from_columns(vec![
        ("a".to_string(), Column::from_f64(a)),
        ("b".to_string(), Column::from_f64(b)),
        ("color".to_string(), Column::categorical(cat)),
    ])
    .unwrap();
    Dataset::new("messy", f, y, Task::Binary).unwrap()
}

/// Clean regression dataset (no NaN, numeric only).
fn regression_dataset(n: usize) -> Dataset {
    let x1: Vec<f64> = (0..n).map(|i| ((i * 17 % 31) as f64) / 31.0).collect();
    let x2: Vec<f64> = (0..n).map(|i| ((i * 5 % 19) as f64) / 19.0).collect();
    let y: Vec<f64> = x1
        .iter()
        .zip(&x2)
        .map(|(a, b)| 3.0 * a - 2.0 * b + (a * b))
        .collect();
    let f = DataFrame::from_columns(vec![
        ("x1".to_string(), Column::from_f64(x1)),
        ("x2".to_string(), Column::from_f64(x2)),
    ])
    .unwrap();
    Dataset::new("reg", f, y, Task::Regression).unwrap()
}

/// Trial-capped budget with slack wall clock so expiry is deterministic.
fn capped(trials: usize) -> TimeBudget {
    TimeBudget::seconds(3600.0).with_trial_cap(trials)
}

fn assert_same_history(cached: &[TrialOutcome], uncached: &[TrialOutcome], ctx: &str) {
    assert_eq!(cached.len(), uncached.len(), "{ctx}: trial counts differ");
    for (i, (c, u)) in cached.iter().zip(uncached).enumerate() {
        assert_eq!(c.spec, u.spec, "{ctx}: trial {i} spec");
        assert_eq!(
            c.score.map(f64::to_bits),
            u.score.map(f64::to_bits),
            "{ctx}: trial {i} score"
        );
        assert_eq!(c.error, u.error, "{ctx}: trial {i} error");
    }
}

fn assert_same_result(cached: &HpoResult, uncached: &HpoResult, ctx: &str) {
    assert_same_history(&cached.history, &uncached.history, ctx);
    assert_eq!(cached.spec, uncached.spec, "{ctx}: best spec");
    assert_eq!(
        cached.valid_score.to_bits(),
        uncached.valid_score.to_bits(),
        "{ctx}: valid score"
    );
    assert_eq!(cached.ensemble, uncached.ensemble, "{ctx}: ensemble");
    assert_eq!(cached.report.trials, uncached.report.trials, "{ctx}");
    assert_eq!(cached.report.failures, uncached.report.failures, "{ctx}");
}

#[test]
fn flaml_skeleton_search_is_bit_identical_with_and_without_caching() {
    let ds = messy_dataset(160);
    let skeleton = Skeleton {
        transformers: vec![TransformerKind::StandardScaler],
        estimator: EstimatorKind::Lgbm,
    };
    let cached = Flaml::new(11)
        .optimize_skeleton(&ds, &skeleton, &capped(14))
        .unwrap();
    let uncached = Flaml::new(11)
        .with_trial_cache(false)
        .optimize_skeleton(&ds, &skeleton, &capped(14))
        .unwrap();
    assert_same_result(&cached, &uncached, "flaml skeleton");
    // The chain skeleton re-fits the same scaler prefix across trials, so
    // the cached run must actually have exercised the transform cache...
    assert!(
        cached.report.cache_hits > 0,
        "expected transform-cache hits, got {:?}",
        cached.report
    );
    // ...while the uncached run never touched it.
    assert_eq!(uncached.report.cache_hits, 0);
    assert_eq!(uncached.report.cache_misses, 0);
}

#[test]
fn flaml_cold_search_is_bit_identical_with_and_without_caching() {
    let ds = messy_dataset(140);
    let cached = Flaml::new(3).optimize(&ds, &capped(12)).unwrap();
    let uncached = Flaml::new(3)
        .with_trial_cache(false)
        .optimize(&ds, &capped(12))
        .unwrap();
    assert_same_result(&cached, &uncached, "flaml cold");
}

#[test]
fn flaml_regression_search_is_bit_identical_with_and_without_caching() {
    let ds = regression_dataset(150);
    let skeleton = Skeleton {
        transformers: vec![TransformerKind::MinMaxScaler],
        estimator: EstimatorKind::XgBoost,
    };
    let cached = Flaml::new(5)
        .optimize_skeleton(&ds, &skeleton, &capped(10))
        .unwrap();
    let uncached = Flaml::new(5)
        .with_trial_cache(false)
        .optimize_skeleton(&ds, &skeleton, &capped(10))
        .unwrap();
    assert_same_result(&cached, &uncached, "flaml regression skeleton");
}

#[test]
fn autosklearn_search_is_bit_identical_with_and_without_caching() {
    let ds = messy_dataset(150);
    let cached = AutoSklearn::new(7).optimize(&ds, &capped(10)).unwrap();
    let uncached = AutoSklearn::new(7)
        .with_trial_cache(false)
        .optimize(&ds, &capped(10))
        .unwrap();
    assert_same_result(&cached, &uncached, "autosklearn cold");
}

#[test]
fn evaluator_outcomes_match_the_manual_pipeline_path() {
    // The cached evaluator must score a candidate exactly as a
    // hand-constructed `Pipeline::fit_score` over the same split does.
    let ds = messy_dataset(160);
    let budget = capped(100);
    let eval = Evaluator::new(&ds, 9, &budget).unwrap();
    let chain = Skeleton {
        transformers: vec![TransformerKind::StandardScaler, TransformerKind::Pca],
        estimator: EstimatorKind::DecisionTree,
    };
    let bare = Skeleton::bare(EstimatorKind::Lgbm);
    for skeleton in [&chain, &bare, &chain] {
        let outcome = eval.evaluate(skeleton, Params::new());
        let mut manual = Pipeline::from_spec(PipelineSpec {
            transformers: skeleton
                .transformers
                .iter()
                .map(|t| (*t, Params::new()))
                .collect(),
            estimator: skeleton.estimator,
            params: Params::new(),
        })
        .unwrap();
        let expected = manual
            .fit_score(eval.fit_part(), eval.validation())
            .unwrap();
        assert_eq!(
            outcome.score.map(f64::to_bits),
            Some(expected.to_bits()),
            "{}",
            skeleton.estimator.name()
        );
        assert_eq!(outcome.error, None);
    }
    // Third pass over `chain` hit the prefix cache.
    let report = eval.report();
    assert!(report.cache_hits > 0, "{report:?}");
}

#[test]
fn evaluator_batches_agree_bit_for_bit_with_and_without_caching() {
    let ds = messy_dataset(140);
    let budget_a = capped(100);
    let budget_b = capped(100);
    let cached = Evaluator::new(&ds, 4, &budget_a).unwrap();
    let uncached = Evaluator::new(&ds, 4, &budget_b).unwrap().with_cache(false);
    let chain = Skeleton {
        transformers: vec![TransformerKind::RobustScaler],
        estimator: EstimatorKind::RandomForest,
    };
    let batch: Vec<Candidate> = vec![
        Candidate::new(chain.clone(), Params::new()),
        Candidate::new(Skeleton::bare(EstimatorKind::Lgbm), Params::new()),
        Candidate::new(chain, Params::new()),
        // Ridge on a binary task fails: the error string must be
        // identical on both paths, not just the failure itself.
        Candidate::new(Skeleton::bare(EstimatorKind::Ridge), Params::new()),
    ];
    let a = cached.evaluate_batch(&batch);
    let b = uncached.evaluate_batch(&batch);
    assert_same_history(&a, &b, "evaluator batch");
    assert_eq!(cached.report().failures, 1);
    assert_eq!(uncached.report().failures, 1);
}

#[test]
fn ensemble_refit_matches_a_sequential_uncached_refit() {
    let ds = messy_dataset(160);
    let test = messy_dataset(90);
    let members = vec![
        PipelineSpec::bare(EstimatorKind::DecisionTree),
        PipelineSpec {
            transformers: vec![(TransformerKind::StandardScaler, Params::new())],
            estimator: EstimatorKind::Lgbm,
            params: Params::new(),
        },
        PipelineSpec::bare(EstimatorKind::DecisionTree),
    ];
    let mut result = HpoResult::single(members[0].clone(), 0.0, Vec::new());
    result.ensemble = members.clone();

    // Hand-rolled pre-cache reference: sequential raw-frame fit + predict
    // per member, then the same vote/mean combination.
    let preds: Vec<Vec<f64>> = members
        .iter()
        .map(|spec| {
            let mut p = Pipeline::from_spec(spec.clone()).unwrap();
            p.fit(&ds).unwrap();
            p.predict(&test).unwrap()
        })
        .collect();
    let combined = kgpip_hpo::trial::combine_predictions(&preds, true);
    let expected = score_predictions(&test, &combined);

    let actual = result.refit_score(&ds, &test).unwrap();
    assert_eq!(actual.to_bits(), expected.to_bits());
}

#[test]
fn single_spec_refit_matches_the_raw_pipeline_score() {
    let ds = regression_dataset(150);
    let test = regression_dataset(80);
    let spec = PipelineSpec {
        transformers: vec![(TransformerKind::StandardScaler, Params::new())],
        estimator: EstimatorKind::XgBoost,
        params: Params::new(),
    };
    let result = HpoResult::single(spec.clone(), 0.0, Vec::new());

    let mut p = Pipeline::from_spec(spec).unwrap();
    p.fit(&ds).unwrap();
    let pred = p.predict(&test).unwrap();
    let expected = score_predictions(&test, &pred);

    let actual = result.refit_score(&ds, &test).unwrap();
    assert_eq!(actual.to_bits(), expected.to_bits());
}
