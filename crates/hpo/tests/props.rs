//! Property-based tests for the HPO layer.

use kgpip_hpo::space::{self, Skeleton};
use kgpip_hpo::{Flaml, Optimizer, TimeBudget};
use kgpip_learners::EstimatorKind;
use kgpip_tabular::{Column, DataFrame, Dataset, Task};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_dataset(n: usize, seed: u64) -> Dataset {
    let x: Vec<f64> = (0..n)
        .map(|i| ((i as u64 * 7 + seed) % 10) as f64)
        .collect();
    let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 4.5)).collect();
    let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
    Dataset::new("prop", f, y, Task::Binary).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Repeated neighbour moves never escape the declared bounds, for any
    /// estimator, step size, and seed.
    #[test]
    fn neighbour_chains_stay_in_bounds(
        kind_idx in 0usize..EstimatorKind::ALL.len(),
        step in 0.01f64..1.0,
        seed in 0u64..100,
        hops in 1usize..10,
    ) {
        let kind = EstimatorKind::ALL[kind_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = space::low_cost_config(kind);
        for _ in 0..hops {
            config = space::neighbor(kind, &config, step, &mut rng);
            for d in space::param_space(kind) {
                let v = config[d.name];
                prop_assert!(v >= d.lo && v <= d.hi, "{}: {} = {v}", kind.name(), d.name);
                if d.int {
                    prop_assert_eq!(v, v.round());
                }
            }
            // The configuration must always build.
            prop_assert!(kgpip_learners::build_estimator(kind, &config).is_ok());
        }
    }

    /// encode_config is a [0,1] embedding for any sampled configuration.
    #[test]
    fn encode_config_is_normalized(kind_idx in 0usize..EstimatorKind::ALL.len(), seed in 0u64..100) {
        let kind = EstimatorKind::ALL[kind_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space::sample_config(kind, &mut rng);
        for v in space::encode_config(kind, &cfg) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Trial caps are exact: the engine runs at most `cap` trials (and at
    /// least one).
    #[test]
    fn flaml_respects_trial_caps(cap in 1usize..12, seed in 0u64..20) {
        let ds = toy_dataset(80, seed);
        let mut engine = Flaml::new(seed);
        let budget = TimeBudget::seconds(30.0).with_trial_cap(cap);
        let result = engine.optimize(&ds, &budget).unwrap();
        prop_assert!(result.trials >= 1);
        prop_assert!(result.trials <= cap, "{} trials for cap {cap}", result.trials);
        prop_assert_eq!(budget.trials_used(), result.trials);
    }

    /// Skeleton-mode results always deploy the requested skeleton.
    #[test]
    fn skeleton_mode_is_faithful(seed in 0u64..20, kind_idx in 0usize..EstimatorKind::ALL.len()) {
        let kind = EstimatorKind::ALL[kind_idx];
        prop_assume!(kind.supports(Task::Binary));
        let ds = toy_dataset(80, seed);
        let mut engine = Flaml::new(seed);
        let budget = TimeBudget::seconds(10.0).with_trial_cap(4);
        let result = engine
            .optimize_skeleton(&ds, &Skeleton::bare(kind), &budget)
            .unwrap();
        prop_assert_eq!(result.spec.estimator, kind);
        for t in &result.history {
            prop_assert_eq!(t.spec.estimator, kind);
        }
    }

    /// Capability documents round-trip any subset of learners.
    #[test]
    fn capabilities_roundtrip_subsets(mask in 1u16..(1 << 13)) {
        let subset: Vec<EstimatorKind> = EstimatorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .collect();
        let json = space::capabilities_json("prop", &subset);
        let (parsed, _) = space::parse_capabilities(&json).unwrap();
        prop_assert_eq!(parsed, subset);
    }
}
