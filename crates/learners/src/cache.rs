//! Transformer-prefix memoization for the trial hot path.
//!
//! HPO engines evaluate many pipeline specs that share a skeleton and
//! differ only in estimator hyperparameters — for those trials the entire
//! preprocessing chain is recomputed on identical input. The
//! [`TransformCache`] memoizes fitted-transformer *outputs*, keyed on the
//! chain prefix applied so far (transformer kinds plus exact parameter
//! bits) and the content fingerprints of the encoded train/valid matrices.
//! A hit replaces fit + transform of the whole prefix with three `Arc`
//! clones; a miss computes and stores the prefix so later trials (and
//! longer chains sharing the prefix) reuse it.
//!
//! The cache can only change *cost*, never *values*: entries are keyed by
//! every input that influences a deterministic transformer fit, so a hit
//! returns bit-for-bit the matrices a recomputation would produce. The
//! cache-equivalence suite in `kgpip-hpo` asserts exactly that. Capacity is
//! bounded (LRU eviction) and hit/miss counters feed `SearchReport`.

use crate::matrix::Matrix;
use crate::preprocess::TransformerKind;
use crate::{encode::FeatureRole, Params};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of cached chain prefixes.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// One applied transformer step: its kind and exact parameter bits
/// (`BTreeMap` iteration gives a canonical order).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StepId {
    kind: TransformerKind,
    params: Vec<(String, u64)>,
}

impl StepId {
    /// Canonical identity of a `(kind, params)` chain step.
    pub fn new(kind: TransformerKind, params: &Params) -> StepId {
        StepId {
            kind,
            params: params
                .iter()
                .map(|(k, v)| (k.clone(), v.to_bits()))
                .collect(),
        }
    }
}

/// Cache key: the chain prefix applied so far plus the fingerprints of the
/// two input matrices it was applied to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChainKey {
    /// Fingerprint of the encoded training matrix (+ target + task).
    pub train_fingerprint: u64,
    /// Fingerprint of the encoded validation/test matrix.
    pub valid_fingerprint: u64,
    /// The steps applied, in order (including any implicit imputers the
    /// pipeline inserts, so the key names the *effective* chain).
    pub steps: Vec<StepId>,
}

/// The memoized output of one chain prefix: transformed train and valid
/// matrices plus the feature roles after the prefix.
#[derive(Debug, Clone)]
pub struct ChainState {
    /// Transformed training matrix.
    pub x_train: Arc<Matrix>,
    /// Transformed validation matrix (raw transformer output; predict-time
    /// NaN filling happens at use, matching the uncached path).
    pub x_valid: Arc<Matrix>,
    /// Feature roles after the prefix.
    pub roles: Arc<Vec<FeatureRole>>,
}

struct Inner {
    map: HashMap<ChainKey, (u64, ChainState)>,
    stamp: u64,
}

/// A thread-safe, bounded (LRU) memo of transformer-chain prefix outputs.
pub struct TransformCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TransformCache {
    /// Creates a cache holding up to `capacity` chain prefixes.
    pub fn new(capacity: usize) -> TransformCache {
        TransformCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                stamp: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a chain prefix, counting a hit or miss.
    pub fn get(&self, key: &ChainKey) -> Option<ChainState> {
        let mut inner = self.inner.lock().expect("transform cache poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.map.get_mut(key) {
            Some((used, state)) => {
                *used = stamp;
                let state = state.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(state)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a chain prefix, evicting the least-recently-used entry when
    /// over capacity.
    pub fn insert(&self, key: ChainKey, state: ChainState) {
        let mut inner = self.inner.lock().expect("transform cache poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.map.insert(key, (stamp, state));
        while inner.map.len() > self.capacity {
            // xlint: allow(nondeterministic-iteration): stamps are unique, so min_by_key has one well-defined answer regardless of visit order; eviction changes cost only, never answers
            let oldest = inner.map.iter().min_by_key(|(_, (used, _))| *used);
            let oldest = oldest.map(|(k, _)| k.clone());
            let Some(oldest) = oldest else { break };
            inner.map.remove(&oldest);
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("transform cache poisoned")
            .map
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TransformCache {
    fn default() -> TransformCache {
        TransformCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for TransformCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(rows: usize) -> ChainState {
        ChainState {
            x_train: Arc::new(Matrix::zeros(rows, 2)),
            x_valid: Arc::new(Matrix::zeros(rows / 2, 2)),
            roles: Arc::new(vec![FeatureRole::Numeric, FeatureRole::Numeric]),
        }
    }

    fn key(tag: u64) -> ChainKey {
        ChainKey {
            train_fingerprint: tag,
            valid_fingerprint: tag.wrapping_add(1),
            steps: vec![StepId::new(TransformerKind::StandardScaler, &Params::new())],
        }
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = TransformCache::new(4);
        assert!(cache.get(&key(0)).is_none());
        cache.insert(key(0), state(10));
        assert!(cache.get(&key(0)).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn params_are_part_of_the_key() {
        let cache = TransformCache::new(4);
        let mut params = Params::new();
        params.insert("k".into(), 3.0);
        let with_params = ChainKey {
            steps: vec![StepId::new(TransformerKind::SelectKBest, &params)],
            ..key(7)
        };
        cache.insert(key(7), state(10));
        assert!(
            cache.get(&with_params).is_none(),
            "params must disambiguate"
        );
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let cache = TransformCache::new(2);
        cache.insert(key(1), state(4));
        cache.insert(key(2), state(4));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), state(4));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
    }
}
