//! `DataFrame` → `Matrix` feature encoding.
//!
//! Mirrors KGpip's preprocessing contract (paper §3.6): numeric columns pass
//! through, categorical columns become ordinal codes (one-hot expansion is a
//! separate [`crate::preprocess`] transformer so HPO can toggle it), textual
//! columns are "vectorized using word embeddings" — substituted here by a
//! feature-hashing bag-of-words projection, which is the same contract
//! (fixed-size dense vector per text cell computed from content). Missing
//! values encode as NaN and are handled by the imputer transformer.

use crate::matrix::Matrix;
use crate::{LearnError, Result};
use kgpip_tabular::{fnv1a, Column, ColumnKind, DataFrame, Dataset, Task};
use std::sync::Arc;

/// Number of hashed dimensions each text column expands to.
pub const TEXT_HASH_DIMS: usize = 16;

/// Role of an output matrix column, used by downstream transformers (e.g.
/// one-hot applies only to categorical-coded columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureRole {
    /// Raw numeric feature.
    Numeric,
    /// Ordinal code of a categorical feature, with the source cardinality.
    CategoricalCode {
        /// Dictionary size of the source column.
        cardinality: usize,
    },
    /// One dimension of a hashed text projection.
    TextHash,
}

/// A fitted encoder mapping frames with a fixed schema into matrices.
#[derive(Debug, Clone)]
pub struct FeatureEncoder {
    schema: Vec<(String, ColumnKind)>,
    roles: Vec<FeatureRole>,
}

impl FeatureEncoder {
    /// Fits an encoder to a frame's schema.
    pub fn fit(frame: &DataFrame) -> FeatureEncoder {
        let mut schema = Vec::new();
        let mut roles = Vec::new();
        for (name, col) in frame.names().iter().zip(frame.columns()) {
            schema.push((name.clone(), col.kind()));
            match col.kind() {
                ColumnKind::Numeric => roles.push(FeatureRole::Numeric),
                ColumnKind::Categorical => roles.push(FeatureRole::CategoricalCode {
                    cardinality: col.dictionary().map_or(0, <[String]>::len),
                }),
                ColumnKind::Text => {
                    roles.extend(std::iter::repeat_n(FeatureRole::TextHash, TEXT_HASH_DIMS))
                }
            }
        }
        FeatureEncoder { schema, roles }
    }

    /// Roles of the output matrix columns, in order.
    pub fn roles(&self) -> &[FeatureRole] {
        &self.roles
    }

    /// Number of output matrix columns.
    pub fn output_dims(&self) -> usize {
        self.roles.len()
    }

    /// Encodes a frame with the fitted schema into a matrix.
    pub fn transform(&self, frame: &DataFrame) -> Result<Matrix> {
        if frame.num_columns() != self.schema.len() {
            return Err(LearnError::Shape(format!(
                "frame has {} columns, encoder expects {}",
                frame.num_columns(),
                self.schema.len()
            )));
        }
        let n = frame.num_rows();
        let d = self.output_dims();
        let mut out = Matrix::zeros(n, d);
        let mut c_out = 0usize;
        for (ci, (name, kind)) in self.schema.iter().enumerate() {
            let col = frame.column_at(ci);
            if col.kind() != *kind {
                return Err(LearnError::Shape(format!(
                    "column `{name}` changed kind: fitted {kind}, got {}",
                    col.kind()
                )));
            }
            match kind {
                ColumnKind::Numeric | ColumnKind::Categorical => {
                    for r in 0..n {
                        out.set(r, c_out, col.as_f64(r).unwrap_or(f64::NAN));
                    }
                    c_out += 1;
                }
                ColumnKind::Text => {
                    for r in 0..n {
                        let dims = hash_text(col, r);
                        for (k, v) in dims.iter().enumerate() {
                            out.set(r, c_out + k, *v);
                        }
                    }
                    c_out += TEXT_HASH_DIMS;
                }
            }
        }
        Ok(out)
    }
}

/// A dataset pre-encoded into matrix form: the trial hot path's unit of
/// caching. Built once per evaluator (or refit) and shared via [`Arc`], it
/// lets every trial skip `FeatureEncoder::fit`/`transform` on the raw frame
/// and start at the transformer chain instead.
///
/// Encoding is *schema-driven* ([`FeatureEncoder`] records column kinds,
/// not values; categorical codes come from each column's own shared
/// dictionary), so encoding a holdout split with the training split's
/// encoder is bit-for-bit identical to the per-trial path that fits a fresh
/// encoder on the training split and transforms both — the invariant the
/// cache-equivalence suite pins down.
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    encoder: Arc<FeatureEncoder>,
    x: Arc<Matrix>,
    roles: Arc<Vec<FeatureRole>>,
    target: Arc<Vec<f64>>,
    task: Task,
    fingerprint: u64,
    has_nan: bool,
}

impl EncodedDataset {
    /// Encodes a dataset with an encoder fitted to its own schema (the
    /// training-split form).
    pub fn from_dataset(ds: &Dataset) -> Result<EncodedDataset> {
        let encoder = Arc::new(FeatureEncoder::fit(&ds.features));
        Self::build(encoder, ds)
    }

    /// Encodes a dataset with an *existing* encoder — the holdout/test
    /// form, so both splits share the training split's schema exactly as
    /// `Pipeline::fit` + `predict` would.
    pub fn with_encoder(encoder: &Arc<FeatureEncoder>, ds: &Dataset) -> Result<EncodedDataset> {
        Self::build(Arc::clone(encoder), ds)
    }

    fn build(encoder: Arc<FeatureEncoder>, ds: &Dataset) -> Result<EncodedDataset> {
        let x = encoder.transform(&ds.features)?;
        let fingerprint = content_fingerprint(&x, &ds.target, ds.task);
        let has_nan = x.has_nan();
        Ok(EncodedDataset {
            roles: Arc::new(encoder.roles().to_vec()),
            encoder,
            x: Arc::new(x),
            target: Arc::new(ds.target.clone()),
            task: ds.task,
            fingerprint,
            has_nan,
        })
    }

    /// The encoder that produced this matrix.
    pub fn encoder(&self) -> &Arc<FeatureEncoder> {
        &self.encoder
    }

    /// The encoded feature matrix.
    pub fn x(&self) -> &Arc<Matrix> {
        &self.x
    }

    /// Roles of the matrix columns.
    pub fn roles(&self) -> &Arc<Vec<FeatureRole>> {
        &self.roles
    }

    /// The target vector.
    pub fn target(&self) -> &[f64] {
        &self.target
    }

    /// The dataset's task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Content fingerprint over the encoded matrix bits, target bits and
    /// task — the cache-key component identifying this input.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether the encoded matrix contains NaN (missing values), computed
    /// once at encode time. The trial hot path consults this instead of
    /// rescanning the matrix per trial: for bare-estimator specs on
    /// NaN-free data it lets the whole transformer-chain bookkeeping be
    /// skipped.
    pub fn has_nan(&self) -> bool {
        self.has_nan
    }
}

/// FNV-1a over the matrix dimensions and raw `f64` bit patterns (NaN cells
/// hash by their bit pattern, so missing values are covered too).
fn content_fingerprint(x: &Matrix, target: &[f64], task: Task) -> u64 {
    let mut h = fnv1a(b"encoded-dataset");
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(x.rows() as u64);
    mix(x.cols() as u64);
    for v in x.as_slice() {
        mix(v.to_bits());
    }
    for v in target {
        mix(v.to_bits());
    }
    mix(match task {
        Task::Regression => 1,
        Task::Binary => 2,
        Task::MultiClass(k) => 3 + k as u64,
    });
    h
}

/// Hashes a text cell into `TEXT_HASH_DIMS` signed token counts, normalized
/// by token count. Missing text encodes as all-zero (an empty document).
fn hash_text(col: &Column, row: usize) -> [f64; TEXT_HASH_DIMS] {
    let mut dims = [0.0f64; TEXT_HASH_DIMS];
    let Some(text) = col.as_string(row) else {
        return dims;
    };
    let mut count = 0usize;
    for token in text.split_whitespace() {
        let h = fnv1a(token.as_bytes());
        let bucket = (h % TEXT_HASH_DIMS as u64) as usize;
        // Sign hashing reduces collision bias (as in sklearn's
        // HashingVectorizer with alternate_sign=True).
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        dims[bucket] += sign;
        count += 1;
    }
    if count > 0 {
        let norm = (count as f64).sqrt();
        for d in &mut dims {
            *d /= norm;
        }
    }
    dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_tabular::Column;

    fn mixed_frame() -> DataFrame {
        DataFrame::from_columns(vec![
            ("n".to_string(), Column::numeric(vec![Some(1.0), None])),
            (
                "c".to_string(),
                Column::categorical(vec![Some("a"), Some("b")]),
            ),
            (
                "t".to_string(),
                Column::text(vec![Some("hello world"), None]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn output_layout() {
        let f = mixed_frame();
        let enc = FeatureEncoder::fit(&f);
        assert_eq!(enc.output_dims(), 2 + TEXT_HASH_DIMS);
        assert_eq!(enc.roles()[0], FeatureRole::Numeric);
        assert_eq!(
            enc.roles()[1],
            FeatureRole::CategoricalCode { cardinality: 2 }
        );
        assert_eq!(enc.roles()[2], FeatureRole::TextHash);
    }

    #[test]
    fn transform_encodes_missing_as_nan() {
        let f = mixed_frame();
        let enc = FeatureEncoder::fit(&f);
        let m = enc.transform(&f).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert!(m.get(1, 0).is_nan());
        assert_eq!(m.get(0, 1), 0.0); // code for "a"
        assert_eq!(m.get(1, 1), 1.0); // code for "b"
    }

    #[test]
    fn text_hash_is_deterministic_and_zero_for_missing() {
        let f = mixed_frame();
        let enc = FeatureEncoder::fit(&f);
        let m1 = enc.transform(&f).unwrap();
        let m2 = enc.transform(&f).unwrap();
        // Bitwise comparison: NaN cells (missing numerics) must also match.
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&m1), bits(&m2));
        // Missing text row: all hash dims zero.
        assert!((0..TEXT_HASH_DIMS).all(|k| m1.get(1, 2 + k) == 0.0));
        // Present text row: at least one nonzero dim.
        assert!((0..TEXT_HASH_DIMS).any(|k| m1.get(0, 2 + k) != 0.0));
    }

    #[test]
    fn transform_rejects_schema_drift() {
        let f = mixed_frame();
        let enc = FeatureEncoder::fit(&f);
        let other =
            DataFrame::from_columns(vec![("n".to_string(), Column::from_f64(vec![1.0]))]).unwrap();
        assert!(enc.transform(&other).is_err());
    }

    #[test]
    fn different_texts_hash_differently() {
        let f = DataFrame::from_columns(vec![(
            "t".to_string(),
            Column::text(vec![Some("alpha beta gamma"), Some("delta epsilon zeta")]),
        )])
        .unwrap();
        let enc = FeatureEncoder::fit(&f);
        let m = enc.transform(&f).unwrap();
        assert_ne!(m.row(0), m.row(1));
    }
}
